//! Heterogeneous-fleet root placement: whatever order A100 / H100 /
//! V100 servers appear in, the synthesizer must root rooted
//! collectives on the instance with the fattest profiled NIC ingress
//! (the H100's 400 Gbps port), because the root's ingress bounds the
//! final aggregation hop.

use adapcc_profile::profiler::{LinkProfile, Profiler};
use adapcc_simnet::cluster::{Cluster, ClusterBuilder, InstanceId, Rank};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;
use adapcc_topo::logical::LogicalTopology;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    A100,
    H100,
    V100,
}

fn spec(kind: Kind) -> InstanceSpec {
    match kind {
        Kind::A100 => InstanceSpec::a100_server(),
        Kind::H100 => InstanceSpec::h100_server(),
        Kind::V100 => InstanceSpec::v100_server(),
    }
}

/// All six orderings of the three server generations.
fn permutations() -> Vec<[Kind; 3]> {
    use Kind::{A100, H100, V100};
    vec![
        [A100, H100, V100],
        [A100, V100, H100],
        [H100, A100, V100],
        [H100, V100, A100],
        [V100, A100, H100],
        [V100, H100, A100],
    ]
}

/// Builds the fleet in the given order and returns the cluster plus
/// the rank range occupied by the H100 server.
fn fleet(order: &[Kind; 3]) -> (Cluster, std::ops::Range<usize>) {
    let mut b = ClusterBuilder::new();
    for kind in order {
        b.add_instance(spec(*kind));
    }
    let cluster = b.build();
    let h100_inst = order
        .iter()
        .position(|k| *k == Kind::H100)
        .expect("every permutation has an H100");
    let first = cluster.rank_of(InstanceId(h100_inst), 0).0;
    let range = first..first + cluster.gpus_on(InstanceId(h100_inst));
    (cluster, range)
}

fn profiled(cluster: &Cluster) -> (LogicalTopology, LinkProfile) {
    let topo = Detector::new(cluster, 1).run().logical_topology(cluster);
    let profile = Profiler::new(cluster, &topo, 1).run().links;
    (topo, profile)
}

fn synthesize(
    topo: &LogicalTopology,
    profile: &LinkProfile,
    cluster: &Cluster,
    primitive: Primitive,
) -> adapcc_synth::strategy::Strategy {
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let req = SynthRequest::new(primitive, ByteSize::from_mib(64), 2, ranks);
    Synthesizer::new(topo, profile)
        .with_config(SynthConfig {
            anneal_iters: 32,
            ..Default::default()
        })
        .synthesize(&req)
}

#[test]
fn rooted_collectives_land_on_the_h100_in_every_fleet_order() {
    for order in permutations() {
        let (cluster, h100_ranks) = fleet(&order);
        let (topo, profile) = profiled(&cluster);
        for primitive in [Primitive::Reduce, Primitive::Broadcast] {
            let strategy = synthesize(&topo, &profile, &cluster, primitive);
            assert!(strategy.validate(&topo).is_ok());
            for sub in &strategy.subs {
                let root = sub.root.expect("rooted primitive");
                assert!(
                    h100_ranks.contains(&root.0),
                    "{primitive} in fleet {order:?}: root {root:?} not in \
                     H100 ranks {h100_ranks:?}"
                );
            }
        }
    }
}

#[test]
fn alltoall_is_rootless_and_valid_on_a_mixed_fleet() {
    // AllToAll has no aggregation point, so no root preference applies;
    // the strategy must still validate against the detected topology.
    let (cluster, _) = fleet(&[Kind::V100, Kind::A100, Kind::H100]);
    let (topo, profile) = profiled(&cluster);
    let strategy = synthesize(&topo, &profile, &cluster, Primitive::AllToAll);
    assert!(strategy.validate(&topo).is_ok());
    for sub in &strategy.subs {
        assert!(sub.root.is_none(), "alltoall must not pick a root");
    }
}

#[test]
fn requested_root_is_honored_even_off_the_h100() {
    // An explicit root overrides the bandwidth preference — callers
    // with semantic roots (e.g. parameter servers) keep control.
    let (cluster, h100_ranks) = fleet(&[Kind::A100, Kind::H100, Kind::V100]);
    let (topo, profile) = profiled(&cluster);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let mut req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(64), 2, ranks);
    req.root = Some(Rank(0));
    let strategy = Synthesizer::new(&topo, &profile)
        .with_config(SynthConfig {
            anneal_iters: 32,
            ..Default::default()
        })
        .synthesize(&req);
    assert!(!h100_ranks.contains(&0));
    assert_eq!(strategy.subs[0].root, Some(Rank(0)));
}
