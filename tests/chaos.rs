//! Chaos sweep (tentpole acceptance): ≥200 seeded random fault
//! schedules against the full recovery path. Every run must either
//! complete numerically correct over the surviving workers or return a
//! classified [`adapcc::AdapCCError`] — never hang, never panic.
//!
//! The per-seed machinery lives in [`adapcc_bench::chaos`] and is also
//! runnable interactively:
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin adapcc_sim -- chaos --seeds 500 --verbose
//! ```

use adapcc_bench::chaos::{run_sweep, ChaosConfig, SeedOutcome};

#[test]
fn two_hundred_random_fault_schedules_never_break_the_session() {
    let cfg = ChaosConfig::default();
    let summary = run_sweep(&cfg, 0, 200, |_| {});
    assert_eq!(summary.total, 200);
    // The one rejected outcome: a run that "succeeded" with wrong
    // numbers on a surviving rank.
    assert!(
        summary.mismatches.is_empty(),
        "numeric mismatches: {:?}",
        summary.mismatches
    );
    // The sweep must actually exercise recovery, not dodge every fault:
    // with 1-3 faults per seed in a 2 ms horizon, a healthy fraction of
    // runs sees crashes / NIC failures and must exclude-and-continue.
    assert!(
        summary.recovered >= 40,
        "only {} of {} runs recovered — the schedules are not biting",
        summary.recovered,
        summary.total
    );
    // And fault-free completion must still be the common case for the
    // survivors' side of the fleet.
    assert!(summary.clean >= 20, "only {} clean runs", summary.clean);
}

#[test]
fn a_crash_dense_window_still_classifies_every_outcome() {
    // Tighter horizon: every fault lands almost immediately, so nearly
    // every seed hits the recovery machinery head-on.
    let cfg = ChaosConfig {
        horizon: adapcc_simnet::time::SimDuration::from_millis(0.5),
        ..Default::default()
    };
    let summary = run_sweep(&cfg, 1000, 30, |r| {
        if let SeedOutcome::NumericMismatch { .. } = r.outcome {
            panic!("seed {} mismatched: {:?}", r.seed, r.outcome);
        }
    });
    assert_eq!(summary.total, 30);
    assert!(summary.mismatches.is_empty());
}
