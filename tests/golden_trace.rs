//! Telemetry determinism and flow-conservation guarantees.
//!
//! The whole pipeline is driven by the simulated clock, so two runs of
//! the same configuration with the same seed must export *byte
//! identical* telemetry — the Chrome trace and the metrics summary are
//! golden. On top of that, the executor's per-link flow records must
//! respect flow conservation (paper eq. 1): a NIC is a pure forwarder,
//! so per sub-collective the bytes entering it equal the bytes leaving
//! it, and the sum of all recorded flows is exactly the executor's
//! bytes-on-wire tally.

use std::collections::BTreeMap;

use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::harness::profiled_with_telemetry;
use adapcc_simnet::cluster::{ClusterBuilder, Rank};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;
use adapcc_telemetry::Telemetry;

/// One full instrumented run: detect → profile → synthesize → execute
/// on a fixed fleet, returning the sink holding every span, flow and
/// counter.
fn instrumented_run(primitive: Primitive, tensor: ByteSize, parallelism: usize) -> Telemetry {
    let mut b = ClusterBuilder::new();
    b.add_instances(InstanceSpec::dgx_a100(), 2);
    let cluster = b.build();
    let telemetry = Telemetry::enabled();
    let (topo, profile, control_secs) = profiled_with_telemetry(&cluster, 1, telemetry.clone());
    let runner = Runner::new(&cluster, &topo, &profile)
        .with_parallelism(parallelism)
        .with_telemetry(telemetry.at_offset(control_secs));
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    runner.run(
        System::AdapCc,
        primitive,
        tensor,
        &ranks,
        &Default::default(),
    );
    telemetry
}

#[test]
fn same_seed_runs_export_byte_identical_telemetry() {
    let a = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    let b = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    assert_eq!(a.chrome_trace(), b.chrome_trace(), "trace must be golden");
    assert_eq!(
        a.metrics_summary(),
        b.metrics_summary(),
        "metrics must be golden"
    );
}

#[test]
fn trace_covers_every_pipeline_phase_and_the_links() {
    let t = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    let spans = t.spans();
    for phase in [
        "detect",
        "profile.intra",
        "profile.inter",
        "profile.fanin",
        "synthesize",
        "execute",
    ] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "missing {phase} span; have {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
    // Phases are stitched onto one timeline: each starts no earlier
    // than the previous one on the same track.
    let order: Vec<f64> = ["detect", "profile.intra", "profile.inter", "profile.fanin"]
        .iter()
        .map(|n| spans.iter().find(|s| s.name == *n).unwrap().start_secs)
        .collect();
    assert!(order.windows(2).all(|w| w[0] <= w[1]), "{order:?}");
    assert!(!t.flows().is_empty(), "executor must record per-link flows");
    let trace = t.chrome_trace();
    assert!(trace.matches("\"cat\":\"flow\"").count() == t.flows().len());
    assert!(trace.contains("\"displayTimeUnit\""));
}

#[test]
fn reduce_flows_conserve_bytes_through_every_nic() {
    // Paper eq. 1 on recorded data: sweep tensor sizes and parallelism
    // degrees; in every Reduce run each NIC forwards exactly what it
    // receives (per sub-collective), every flow has sane timestamps,
    // and the flow total equals the executor's bytes-on-wire counter.
    for (mib, parallelism) in [(16, 1), (64, 2), (64, 4), (256, 4)] {
        let t = instrumented_run(Primitive::Reduce, ByteSize::from_mib(mib), parallelism);
        let flows = t.flows();
        assert!(!flows.is_empty());
        let mut total = 0u64;
        // (sub, nic-node) -> (bytes in, bytes out)
        let mut nic_io: BTreeMap<(usize, String), (u64, u64)> = BTreeMap::new();
        for f in &flows {
            assert!(
                f.enqueued_secs <= f.start_secs && f.start_secs <= f.end_secs,
                "flow timestamps out of order: {f:?}"
            );
            total += f.bytes;
            let (from, to) = f.link.split_once("->").expect("link label is from->to");
            if from.starts_with("nic") {
                nic_io.entry((f.sub, from.to_string())).or_default().1 += f.bytes;
            }
            if to.starts_with("nic") {
                nic_io.entry((f.sub, to.to_string())).or_default().0 += f.bytes;
            }
        }
        for ((sub, nic), (inb, outb)) in &nic_io {
            assert_eq!(
                inb, outb,
                "{mib} MiB x{parallelism}: sub {sub} {nic} received {inb} but \
                 forwarded {outb} bytes"
            );
        }
        assert_eq!(
            total,
            t.counter("exec.bytes_on_wire") as u64,
            "{mib} MiB x{parallelism}: flow records disagree with bytes-on-wire"
        );
    }
}
