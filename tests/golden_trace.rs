//! Telemetry determinism and flow-conservation guarantees.
//!
//! The whole pipeline is driven by the simulated clock, so two runs of
//! the same configuration with the same seed must export *byte
//! identical* telemetry — the Chrome trace and the metrics summary are
//! golden. On top of that, the executor's per-link flow records must
//! respect flow conservation (paper eq. 1): a NIC is a pure forwarder,
//! so per sub-collective the bytes entering it equal the bytes leaving
//! it, and the sum of all recorded flows is exactly the executor's
//! bytes-on-wire tally.

use std::collections::BTreeMap;

use adapcc::session::{AdapCC, InitOptions};
use adapcc::{Decision, RelayConfig};
use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::harness::profiled_with_telemetry;
use adapcc_simnet::cluster::{Cluster, ClusterBuilder, Rank};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::SynthConfig;
use adapcc_synth::Primitive;
use adapcc_telemetry::Telemetry;

/// One full instrumented run: detect → profile → synthesize → execute
/// on a fixed fleet, returning the sink holding every span, flow and
/// counter.
fn instrumented_run(primitive: Primitive, tensor: ByteSize, parallelism: usize) -> Telemetry {
    let mut b = ClusterBuilder::new();
    b.add_instances(InstanceSpec::dgx_a100(), 2);
    let cluster = b.build();
    let telemetry = Telemetry::enabled();
    let (topo, profile, control_secs) = profiled_with_telemetry(&cluster, 1, telemetry.clone());
    let runner = Runner::new(&cluster, &topo, &profile)
        .with_parallelism(parallelism)
        .with_telemetry(telemetry.at_offset(control_secs));
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    runner.run(
        System::AdapCc,
        primitive,
        tensor,
        &ranks,
        &Default::default(),
    );
    telemetry
}

#[test]
fn same_seed_runs_export_byte_identical_telemetry() {
    let a = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    let b = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    assert_eq!(a.chrome_trace(), b.chrome_trace(), "trace must be golden");
    assert_eq!(
        a.metrics_summary(),
        b.metrics_summary(),
        "metrics must be golden"
    );
}

#[test]
fn trace_covers_every_pipeline_phase_and_the_links() {
    let t = instrumented_run(Primitive::AllReduce, ByteSize::from_mib(64), 4);
    let spans = t.spans();
    for phase in [
        "detect",
        "profile.intra",
        "profile.inter",
        "profile.fanin",
        "synthesize",
        "execute",
    ] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "missing {phase} span; have {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
    // Phases are stitched onto one timeline: each starts no earlier
    // than the previous one on the same track.
    let order: Vec<f64> = ["detect", "profile.intra", "profile.inter", "profile.fanin"]
        .iter()
        .map(|n| spans.iter().find(|s| s.name == *n).unwrap().start_secs)
        .collect();
    assert!(order.windows(2).all(|w| w[0] <= w[1]), "{order:?}");
    assert!(!t.flows().is_empty(), "executor must record per-link flows");
    let trace = t.chrome_trace();
    assert!(trace.matches("\"cat\":\"flow\"").count() == t.flows().len());
    assert!(trace.contains("\"displayTimeUnit\""));
}

#[test]
fn reduce_flows_conserve_bytes_through_every_nic() {
    // Paper eq. 1 on recorded data: sweep tensor sizes and parallelism
    // degrees; in every Reduce run each NIC forwards exactly what it
    // receives (per sub-collective), every flow has sane timestamps,
    // and the flow total equals the executor's bytes-on-wire counter.
    for (mib, parallelism) in [(16, 1), (64, 2), (64, 4), (256, 4)] {
        let t = instrumented_run(Primitive::Reduce, ByteSize::from_mib(mib), parallelism);
        let flows = t.flows();
        assert!(!flows.is_empty());
        let mut total = 0u64;
        // (sub, nic-node) -> (bytes in, bytes out)
        let mut nic_io: BTreeMap<(usize, String), (u64, u64)> = BTreeMap::new();
        for f in &flows {
            assert!(
                f.enqueued_secs <= f.start_secs && f.start_secs <= f.end_secs,
                "flow timestamps out of order: {f:?}"
            );
            total += f.bytes;
            let (from, to) = f.link.split_once("->").expect("link label is from->to");
            if from.starts_with("nic") {
                nic_io.entry((f.sub, from.to_string())).or_default().1 += f.bytes;
            }
            if to.starts_with("nic") {
                nic_io.entry((f.sub, to.to_string())).or_default().0 += f.bytes;
            }
        }
        for ((sub, nic), (inb, outb)) in &nic_io {
            assert_eq!(
                inb, outb,
                "{mib} MiB x{parallelism}: sub {sub} {nic} received {inb} but \
                 forwarded {outb} bytes"
            );
        }
        assert_eq!(
            total,
            t.counter("exec.bytes_on_wire") as u64,
            "{mib} MiB x{parallelism}: flow records disagree with bytes-on-wire"
        );
    }
}

#[test]
fn hierarchical_64_gpu_trace_is_deterministic() {
    // 64 GPUs on 16 servers: the Auto threshold engages the two-tier
    // synthesis, and the fleet sits below both the executor's
    // completion-coalescing and incremental-allocator thresholds, so
    // this pins the exact engine's event ordering at the largest scale
    // that still runs it. Two identical runs must export
    // byte-identical telemetry — every flow record, span and counter
    // in the same order at the same instants.
    let run = || {
        let cluster = Cluster::homogeneous_a100(16);
        let telemetry = Telemetry::enabled();
        let (topo, profile, control_secs) = profiled_with_telemetry(&cluster, 1, telemetry.clone());
        let runner = Runner::new(&cluster, &topo, &profile)
            .with_parallelism(2)
            .with_telemetry(telemetry.at_offset(control_secs));
        let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
        runner.run(
            System::AdapCc,
            Primitive::AllReduce,
            ByteSize::from_mib(4),
            &ranks,
            &Default::default(),
        );
        telemetry
    };
    let a = run();
    let b = run();
    assert!(
        a.counter("synth.hierarchical") >= 1.0,
        "64 GPUs must take the hierarchical path"
    );
    assert_eq!(
        a.chrome_trace(),
        b.chrome_trace(),
        "64-GPU trace must be golden"
    );
    assert_eq!(
        a.metrics_summary(),
        b.metrics_summary(),
        "64-GPU metrics must be golden"
    );
}

#[test]
fn engine_storm_at_256_servers_is_deterministic_and_mode_consistent() {
    // The determinism cases above top out at 64 GPUs, below the
    // executor's incremental-allocator gate — so they never run the
    // dirty-frontier path. This pins the incremental engine at a scale
    // where it actually engages: 256 servers of staggered, contending
    // cross-server transfers. Two incremental runs must produce
    // bit-identical event streams, and the stream must agree with the
    // exact (fleet-wide filling) engine event-for-event, with
    // completion instants within f64-rounding distance (the two modes
    // fold link shares in different orders by design, see DESIGN.md
    // §15).
    use adapcc_simnet::cluster::InstanceId;
    use adapcc_simnet::engine::{NetSim, SimEvent};

    let cluster = Cluster::homogeneous_a100(256);
    let n = cluster.instance_count();
    const TIMER_BASE: u64 = 1 << 32;
    let run = |incremental: bool| -> Vec<(u64, u64)> {
        let mut sim = NetSim::new(&cluster).with_incremental_allocator(incremental);
        for i in 0..n {
            // Staggered arrivals so completions interleave with later
            // submissions instead of forming one synchronized wave.
            sim.schedule_timer(
                SimDuration::from_micros(1.0 + i as f64 * 0.7),
                TIMER_BASE + i as u64,
            );
        }
        let mut out = Vec::new();
        while let Some(ev) = sim.step() {
            if let SimEvent::Timer { token, .. } = ev {
                let i = (token - TIMER_BASE) as usize;
                let stride = 1 + i % (n - 1);
                let path = cluster.net_path(InstanceId(i), InstanceId((i + stride) % n));
                sim.submit_transfer(
                    &path,
                    ByteSize::from_kib(64 + (i as u64 * 37) % 192),
                    i as u64,
                );
            } else {
                out.push((ev.token(), ev.at().as_secs().to_bits()));
            }
        }
        out
    };

    let a = run(true);
    let b = run(true);
    assert_eq!(a.len(), n, "every transfer completes");
    assert_eq!(a, b, "256-server incremental stream must be golden");

    let exact = run(false);
    assert_eq!(exact.len(), n);
    // Per-transfer completion instants agree within rounding; the
    // global order may swap near-ties whose times differ only in ulps,
    // but each stream must be monotone in time.
    let times = |evs: &[(u64, u64)]| {
        evs.iter()
            .map(|&(t, bits)| (t, f64::from_bits(bits)))
            .collect::<BTreeMap<_, _>>()
    };
    let (ta, te) = (times(&a), times(&exact));
    assert_eq!(
        ta.keys().collect::<Vec<_>>(),
        te.keys().collect::<Vec<_>>(),
        "both modes must complete the same transfers"
    );
    for (token, e) in &te {
        let i = ta[token];
        let tol = 1e-9_f64.max(e.abs() * 1e-9);
        assert!(
            (i - e).abs() <= tol,
            "transfer {token}: incremental t={i} exact t={e}"
        );
    }
    for stream in [&a, &exact] {
        assert!(
            stream
                .windows(2)
                .all(|w| f64::from_bits(w[0].1) <= f64::from_bits(w[1].1)),
            "event stream must be monotone in time"
        );
    }
}

// ---------------------------------------------------------------------------
// Golden equivalence through the staged CollectiveSpec pipeline.
//
// The constants below were captured on the pre-refactor session code
// (bespoke per-entry-point orchestration). The staged pipeline must
// reproduce the same finish instants and output tensors bit for bit:
// finish times are compared as `f64::to_bits`, outputs as an FNV-1a
// hash over every `(rank, f32::to_bits)` pair in rank order.
// ---------------------------------------------------------------------------

fn inputs_for(workers: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
    workers
        .iter()
        .map(|r| {
            let buf = (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect();
            (*r, buf)
        })
        .collect()
}

fn quick_options() -> InitOptions {
    InitOptions {
        synth: SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn patient_options() -> InitOptions {
    InitOptions {
        relay: RelayConfig {
            fault_floor: SimDuration::from_millis(500.0),
            ..Default::default()
        },
        ..quick_options()
    }
}

fn fnv(outputs: &BTreeMap<Rank, Vec<f32>>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (r, buf) in outputs {
        for b in (r.0 as u64).to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        for v in buf {
            for b in v.to_bits().to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

#[test]
fn pipeline_matches_pre_refactor_goldens_for_wait_all_collectives() {
    let c = Cluster::homogeneous_a100(2);
    let kib64 = ByteSize::from_kib(64);
    let elems = 64 * 1024 / 4;

    // AllReduce: a data run, then a 16 MiB timing-only run in the same
    // session (exercises the zero-skew execution cache).
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let inputs = inputs_for(cc.workers(), elems);
        let r = cc.allreduce(kib64, &BTreeMap::new(), Some(inputs)).unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3f07bd06a2e303d3,
            "allreduce finish"
        );
        assert_eq!(fnv(&r.outputs), 0x5495bb624097e475, "allreduce outputs");
        let r2 = cc
            .allreduce(ByteSize::from_mib(16), &BTreeMap::new(), None)
            .unwrap();
        assert_eq!(
            r2.finish.as_secs().to_bits(),
            0x3f572b49cb1b2da2,
            "allreduce timing"
        );
    }
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let inputs = inputs_for(cc.workers(), elems);
        let r = cc.reduce(kib64, &BTreeMap::new(), Some(inputs)).unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3f01896331389d4a,
            "reduce finish"
        );
        assert_eq!(fnv(&r.outputs), 0xc772b8272d6b4de9, "reduce outputs");
    }
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let inputs = inputs_for(cc.workers(), elems);
        let r = cc
            .broadcast(Rank(1), kib64, &BTreeMap::new(), Some(inputs))
            .unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3ef6c485e00d1e31,
            "broadcast finish"
        );
        assert_eq!(fnv(&r.outputs), 0xb1980c0e8d51c74e, "broadcast outputs");
    }
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let inputs = inputs_for(cc.workers(), elems);
        let r = cc.alltoall(kib64, &BTreeMap::new(), Some(inputs)).unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3eff89efedb823a2,
            "alltoall finish"
        );
        assert_eq!(fnv(&r.outputs), 0x33a8e6ab7f22fc2d, "alltoall outputs");
    }
}

#[test]
fn pipeline_matches_pre_refactor_goldens_for_composites() {
    let c = Cluster::homogeneous_a100(2);
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let t16 = ByteSize::from_kib(16);
        let inputs = inputs_for(cc.workers(), 16 * 1024 / 4);
        let r = cc.allgather(t16, &BTreeMap::new(), Some(inputs)).unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3ef661d6167c73f7,
            "allgather finish"
        );
        assert_eq!(fnv(&r.outputs), 0xff85e564b16ea5f5, "allgather outputs");
        let r2 = cc.allgather(t16, &BTreeMap::new(), None).unwrap();
        assert_eq!(
            r2.finish.as_secs().to_bits(),
            0x3ef661d6167c73f7,
            "allgather timing"
        );
    }
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let n = cc.workers().len();
        let shard_elems = 1024usize;
        let tensor = ByteSize::from_bytes((n * shard_elems * 4) as u64);
        let inputs = inputs_for(cc.workers(), n * shard_elems);
        let r = cc
            .reduce_scatter(tensor, &BTreeMap::new(), Some(inputs))
            .unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3efc0a33bd3b8e82,
            "reduce_scatter finish"
        );
        assert_eq!(
            fnv(&r.outputs),
            0x573fc57d0de0ac80,
            "reduce_scatter outputs"
        );
    }
}

#[test]
fn pipeline_matches_pre_refactor_goldens_for_adaptive_allreduce() {
    let c = Cluster::homogeneous_a100(2);
    let kib64 = ByteSize::from_kib(64);

    // Small skew: the ski-rental rule says wait, and the decision start
    // instant (which embeds the seeded RPC jitter draw) must match.
    {
        let mut cc = AdapCC::init(&c, quick_options());
        cc.setup();
        let mut ready = BTreeMap::new();
        for r in cc.workers().to_vec() {
            ready.insert(r, SimTime::from_secs(r.0 as f64 * 1e-5));
        }
        let r = cc
            .allreduce_adaptive(ByteSize::from_mib(16), &ready, None)
            .unwrap();
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3f5f899be97b8c7d,
            "adaptive wait-all finish"
        );
        match r.decision {
            Decision::WaitAll { start } => {
                assert_eq!(start.as_secs(), 0.0005107690753955371, "decision start");
            }
            other => panic!("expected WaitAll, got {other:?}"),
        }
    }

    // Heavy straggler (not the strategy root): phase-1 partial plus the
    // phase-2 completion broadcast, with full data fidelity.
    {
        let mut cc = AdapCC::init(&c, patient_options());
        cc.setup();
        let workers = cc.workers().to_vec();
        let inputs = inputs_for(&workers, 64 * 1024 / 4);
        let mut ready: BTreeMap<Rank, SimTime> =
            workers.iter().map(|r| (*r, SimTime::ZERO)).collect();
        let strategy_root = cc.strategy_for(Primitive::AllReduce, kib64).subs[0]
            .root
            .unwrap();
        let straggler = workers
            .iter()
            .copied()
            .find(|r| *r != strategy_root)
            .unwrap();
        ready.insert(straggler, SimTime::from_secs(0.04));
        let r = cc.allreduce_adaptive(kib64, &ready, Some(inputs)).unwrap();
        assert!(
            matches!(r.decision, Decision::Partial { .. }),
            "{:?}",
            r.decision
        );
        assert_eq!(
            r.finish.as_secs().to_bits(),
            0x3fa47e86503c75b4,
            "adaptive partial finish"
        );
        assert_eq!(
            fnv(&r.outputs),
            0x5495bb624097e475,
            "adaptive partial outputs"
        );
    }
}

#[test]
fn every_pipeline_stage_emits_one_span_per_collective() {
    // Six entry points through the shared pipeline: each stage must
    // emit exactly one span per collective on the `collective` track.
    let c = Cluster::homogeneous_a100(2);
    let telemetry = Telemetry::enabled();
    let mut options = quick_options();
    options.telemetry = telemetry.clone();
    let mut cc = AdapCC::init(&c, options);
    cc.setup();
    let idle = BTreeMap::new();
    let kib64 = ByteSize::from_kib(64);
    cc.allreduce(kib64, &idle, None).unwrap();
    cc.reduce(kib64, &idle, None).unwrap();
    cc.broadcast(Rank(0), kib64, &idle, None).unwrap();
    cc.alltoall(kib64, &idle, None).unwrap();
    cc.allgather(ByteSize::from_kib(16), &idle, None).unwrap();
    cc.reduce_scatter(ByteSize::from_bytes(8 * 1024 * 4), &idle, None)
        .unwrap();
    let spans = telemetry.spans();
    for stage in [
        "collective.plan",
        "collective.relay",
        "collective.execute",
        "collective.assemble",
    ] {
        let n = spans.iter().filter(|s| s.name == stage).count();
        assert_eq!(n, 6, "expected one {stage} span per collective, got {n}");
    }
    for s in spans.iter().filter(|s| s.name.starts_with("collective.")) {
        assert_eq!(s.track, "collective");
    }
}
