//! Churn chaos harness (tentpole acceptance): 200 seeded dense
//! leave→rejoin schedules against the elastic membership lifecycle.
//! Every run must finish without a hang or panic, absorb typed errors
//! without wedging, converge membership to the schedule's final alive
//! set, and bill each rejoin below the NCCL-style restart it replaces.
//!
//! The per-seed machinery lives in [`adapcc_bench::churn`] and is
//! also runnable interactively:
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin adapcc_sim -- churn --seeds 500 --verbose
//! ```
//!
//! The sweep is split into two 100-seed shards so CI can run them as
//! separate test threads (and so one shard failing still reports the
//! other's summary).

use std::collections::BTreeMap;

use adapcc::{AdapCC, InitOptions, RankHealth, RecoveryEvent};
use adapcc_bench::churn::{run_sweep, ChurnConfig, ChurnSummary};
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::faults::{Fault, FaultSchedule};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::SynthConfig;
use adapcc_telemetry::Telemetry;

fn shard(base: u64) -> ChurnSummary {
    let cfg = ChurnConfig::default();
    let summary = run_sweep(&cfg, base, 100, |_| {});
    assert_eq!(summary.total, 100);
    // The rejected outcomes: wrong membership, wrong numbers, or a
    // rejoin that cost as much as the restart it is meant to beat.
    assert!(
        summary.violations.is_empty(),
        "invariant violations: {:?}",
        summary.violations
    );
    // Churn must be survivable, not merely classifiable: the common
    // case is a run that rides out the schedule and converges.
    assert!(
        summary.converged >= 60,
        "only {} of {} runs converged",
        summary.converged,
        summary.total
    );
    summary
}

#[test]
fn churn_shard_a_converges_without_violations() {
    let summary = shard(0);
    // Dense schedules are biased toward leave→rejoin pairs, so the
    // shard must actually exercise the rejoin path.
    assert!(
        summary.rejoins >= 5,
        "only {} rejoins across the shard — churn is not churning",
        summary.rejoins
    );
}

#[test]
fn churn_shard_b_converges_without_violations() {
    shard(100);
}

/// Deterministic crash→restart→rejoin walk through the public API:
/// the restarted worker is probed back in, participates in a real
/// collective, and the rejoin is visible in telemetry.
#[test]
fn restarted_worker_rejoins_with_telemetry_evidence() {
    let cluster = Cluster::homogeneous_a100(2);
    let telemetry = Telemetry::enabled();
    let mut cc = AdapCC::init(
        &cluster,
        InitOptions {
            telemetry: telemetry.clone(),
            synth: SynthConfig {
                anneal_iters: 24,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    cc.setup();
    cc.inject_faults(
        FaultSchedule::new()
            .with(Fault::WorkerCrash {
                rank: Rank(2),
                at: SimTime::ZERO,
            })
            .with(Fault::WorkerRestart {
                rank: Rank(2),
                at: SimTime::from_secs(0.25),
            }),
    );
    let tensor = ByteSize::from_kib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    cc.allreduce(tensor, &BTreeMap::new(), None)
        .expect("one crash is recoverable");
    assert_eq!(cc.workers().len(), 7, "crashed worker excluded");
    assert_eq!(cc.rank_health(Rank(2)), RankHealth::Excluded);
    let mut participated = false;
    for _ in 0..4 {
        let inputs: BTreeMap<Rank, Vec<f32>> = cc
            .workers()
            .iter()
            .map(|r| (*r, vec![1.0; elems]))
            .collect();
        let rep = cc
            .allreduce(tensor, &BTreeMap::new(), Some(inputs))
            .expect("healed fabric");
        if rep.outputs.contains_key(&Rank(2)) {
            participated = true;
            break;
        }
    }
    assert!(participated, "rejoined rank never appeared in a report");
    assert_eq!(cc.workers().len(), 8, "full fleet restored");
    assert!(
        telemetry.counter("health.rejoins") >= 1.0,
        "rejoin must be counted"
    );
    assert!(
        cc.recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Rejoined { ranks, .. } if ranks == &[Rank(2)])),
        "recovery log must record the rejoin: {:?}",
        cc.recovery_log()
    );
}
