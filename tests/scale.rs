//! Cluster-scale regression suite pinning the hierarchical synthesis
//! path (see `crates/synth/src/hierarchy.rs`):
//!
//! - at small scale, where the flat annealer is tractable, the
//!   hierarchical decomposition must land within a bounded cost ratio
//!   of the flat search;
//! - at 512 GPUs the composed strategy must conserve flows and compute
//!   the exact allreduce sum (the fleet is far past the coalescing
//!   threshold, so this also exercises the engine's coalesced drain);
//! - the synthesized strategy must be bit-identical however many
//!   worker threads the solver's chains are scheduled onto.

use std::collections::BTreeMap;

use adapcc::executor::{ExecutionRequest, Executor};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::{Hierarchical, Primitive};
use adapcc_topo::detect::Detector;

fn ctx(
    cluster: &Cluster,
) -> (
    adapcc_topo::logical::LogicalTopology,
    adapcc_profile::profiler::LinkProfile,
) {
    let topo = Detector::new(cluster, 1).run().logical_topology(cluster);
    let profile = Profiler::new(cluster, &topo, 1).run().links;
    (topo, profile)
}

/// Hierarchical synthesis trades search breadth for scale; at 8 and 32
/// GPUs — where the flat annealer still explores the full space — the
/// executed time of the composed strategy must stay within 2x of flat
/// (and cannot be mysteriously faster than half of it: both walk the
/// same physical cluster).
#[test]
fn hierarchical_matches_flat_cost_at_small_scale() {
    for servers in [2usize, 8] {
        let cluster = Cluster::homogeneous_a100(servers);
        let (topo, profile) = ctx(&cluster);
        let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
        let tensor = ByteSize::from_mib(16);
        let exec = Executor::new(&cluster, &topo);
        let time_with = |mode: Hierarchical| {
            let config = SynthConfig {
                anneal_iters: 48,
                hierarchical: mode,
                ..Default::default()
            };
            let req = SynthRequest::new(Primitive::AllReduce, tensor, 4, ranks.clone());
            let strategy = Synthesizer::new(&topo, &profile)
                .with_config(config)
                .synthesize(&req);
            assert!(strategy.validate(&topo).is_ok(), "{mode:?} invalid");
            exec.execute(&[ExecutionRequest::timing(&strategy, tensor)])
                .finish
                .as_secs()
        };
        let flat = time_with(Hierarchical::Off);
        let hier = time_with(Hierarchical::On);
        let ratio = hier / flat;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{servers} servers: hier {hier}s vs flat {flat}s (ratio {ratio:.3})"
        );
    }
}

/// 512-GPU allreduce through the full hierarchical path: the composed
/// strategy passes the flow-conservation validator, and the data plane
/// delivers every rank's contribution exactly once — each output
/// element is the sum over all 512 inputs, nothing dropped, nothing
/// double-counted.
#[test]
fn allreduce_512_gpus_conserves_flows_and_sums_exactly() {
    let cluster = Cluster::homogeneous_a100(128);
    assert_eq!(cluster.gpu_count(), 512);
    let (topo, profile) = ctx(&cluster);
    let ranks: Vec<Rank> = (0..512).map(Rank).collect();
    assert!(Hierarchical::Auto.enabled_for(512, 128));
    let elems = 256usize;
    let tensor = ByteSize::from_bytes((elems * 4) as u64);
    let config = SynthConfig {
        anneal_iters: 0, // composition only; polish is covered at small scale
        ..Default::default()
    };
    let req = SynthRequest::new(Primitive::AllReduce, tensor, 2, ranks.clone());
    let strategy = Synthesizer::new(&topo, &profile)
        .with_config(config)
        .synthesize(&req);
    strategy
        .validate(&topo)
        .expect("512-GPU strategy conserves flows");

    // Rank r contributes (r % 11 + i % 5) at element i; the closed-form
    // total makes the digest check O(1) per element.
    let inputs: BTreeMap<Rank, Vec<f32>> = ranks
        .iter()
        .map(|r| (*r, (0..elems).map(|i| (r.0 % 11 + i % 5) as f32).collect()))
        .collect();
    let exec = Executor::new(&cluster, &topo);
    let report =
        exec.execute(&[ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())]);
    let outputs = &report.requests[0].outputs;
    assert_eq!(outputs.len(), 512);
    let mod11_total: f32 = (0..512).map(|r| (r % 11) as f32).sum();
    for r in [Rank(0), Rank(17), Rank(255), Rank(511)] {
        let out = &outputs[&r];
        assert_eq!(out.len(), elems);
        for i in [0usize, elems / 2, elems - 1] {
            let expect = mod11_total + 512.0 * (i % 5) as f32;
            assert!(
                (out[i] - expect).abs() < 1e-1,
                "rank {:?} elem {}: {} != {}",
                r,
                i,
                out[i],
                expect
            );
        }
    }
}

/// `solver_threads` is a pure execution knob: scheduling the annealing
/// chains onto 1 or 4 workers must synthesize bit-identical strategies,
/// flat and hierarchical alike.
#[test]
fn solver_thread_count_never_changes_the_strategy() {
    let cluster = Cluster::homogeneous_a100(16); // 64 GPUs: Auto decomposes
    let (topo, profile) = ctx(&cluster);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    for mode in [Hierarchical::Off, Hierarchical::On] {
        let strategy_with = |threads: usize| {
            let config = SynthConfig {
                anneal_iters: 48,
                anneal_chains: 4,
                solver_threads: threads,
                hierarchical: mode,
                ..Default::default()
            };
            let req = SynthRequest::new(
                Primitive::AllReduce,
                ByteSize::from_mib(16),
                2,
                ranks.clone(),
            );
            Synthesizer::new(&topo, &profile)
                .with_config(config)
                .synthesize(&req)
        };
        assert_eq!(
            strategy_with(1),
            strategy_with(4),
            "{mode:?}: solver_threads leaked into the search"
        );
    }
}
