//! Integration tests for the adaptivity machinery: fault recovery
//! without restart, and in-place graph reconstruction under volatile
//! bandwidth.

use std::collections::BTreeMap;

use adapcc::session::{AdapCC, InitOptions};
use adapcc::{nccl_restart_cost, Decision, RecoveryEvent};
use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::faults::{Fault, FaultSchedule};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::trace::CloudTrace;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::SynthConfig;
use adapcc_synth::Primitive;

fn quick_options() -> InitOptions {
    InitOptions {
        synth: SynthConfig {
            anneal_iters: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn training_survives_a_dead_worker_without_restart() {
    let cluster = Cluster::homogeneous_a100(3);
    let mut cc = AdapCC::init(&cluster, quick_options());
    cc.setup();
    let tensor = ByteSize::from_mib(16);
    let mut ready: BTreeMap<Rank, SimTime> = cc
        .workers()
        .iter()
        .map(|r| (*r, SimTime::from_secs(0.01)))
        .collect();
    // Rank 5 crashes: no ready report, ever.
    ready.remove(&Rank(5));
    let rep = cc
        .allreduce_adaptive(tensor, &ready, None)
        .expect("healthy fabric");
    assert!(matches!(rep.decision, Decision::Partial { .. }));
    assert_eq!(rep.faults, vec![Rank(5)]);
    // Exclusion re-synthesizes over the 11 survivors; later iterations
    // run clean.
    cc.exclude_workers(&rep.faults);
    assert_eq!(cc.workers().len(), 11);
    let mut ready2 = BTreeMap::new();
    for r in cc.workers() {
        ready2.insert(*r, SimTime::from_secs(0.01));
    }
    let rep2 = cc
        .allreduce_adaptive(tensor, &ready2, None)
        .expect("healthy fabric");
    assert!(rep2.faults.is_empty());
    assert!(rep2.finish.as_secs() > 0.0);
    // Recovery this way costs a re-synthesis, not the paper-reported
    // tens of seconds of checkpoint + relaunch.
    let restart = nccl_restart_cost(tensor, cluster.gpu_count());
    assert!(restart.total().as_secs() > 5.0);
}

#[test]
fn reconstruction_tracks_a_bandwidth_trace() {
    let cluster = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&cluster, quick_options());
    cc.setup();
    let tensor = ByteSize::from_mib(64);
    let _ = cc.strategy_for(Primitive::AllReduce, tensor);
    let trace = CloudTrace::synthesize(5, 3600.0, 60.0).amplified(0.8);
    let eg = cluster.nic_egress_link(InstanceId(0));
    let ing = cluster.nic_ingress_link(InstanceId(0));

    let mut reconstructions = 0;
    let mut comm_under_dip = None;
    let mut comm_nominal = None;
    for minutes in [0u64, 10, 20, 30] {
        let f = trace
            .sample(SimTime::from_secs(minutes as f64 * 60.0))
            .bandwidth_factor;
        cc.set_fabric_factors(vec![(eg, f), (ing, f)]);
        let recon = cc.reprofile();
        if recon.changed {
            reconstructions += 1;
        }
        let rep = cc
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        if f < 0.7 {
            comm_under_dip.get_or_insert(rep.comm_time.as_secs());
        } else if f > 0.95 {
            comm_nominal.get_or_insert(rep.comm_time.as_secs());
        }
    }
    // The profiler observed the dips; whether re-synthesis triggered
    // depends on the trace, but the collectives always ran.
    if let (Some(dip), Some(nominal)) = (comm_under_dip, comm_nominal) {
        assert!(dip > nominal, "degraded fabric must be slower");
    }
    let _ = reconstructions;
}

#[test]
fn reconstruction_is_cheaper_than_restart_at_every_scale() {
    for servers in [2usize, 4] {
        let cluster = Cluster::homogeneous_a100(servers);
        let mut cc = AdapCC::init(&cluster, quick_options());
        cc.setup();
        let tensor = ByteSize::from_mib(128);
        let _ = cc.strategy_for(Primitive::AllReduce, tensor);
        cc.set_fabric_factors(vec![(cluster.nic_egress_link(InstanceId(0)), 0.4)]);
        let recon = cc.reprofile();
        assert!(recon.changed);
        let restart = nccl_restart_cost(ByteSize::from_mib(528), cluster.gpu_count());
        let saved = 1.0 - recon.total().as_secs() / restart.total().as_secs();
        assert!(
            saved > 0.70,
            "{servers} servers: saved only {:.0}% ({} vs {})",
            saved * 100.0,
            recon.total(),
            restart.total()
        );
    }
}

#[test]
fn fig19c_recovery_reconstruction_stays_in_the_paper_band() {
    // Fig. 19(c): across 8–48 GPUs, recovering from a permanent fault
    // by in-place reconstruction costs 74–91% less than the NCCL-style
    // checkpoint + relaunch + process-group rebuild + restore. Here the
    // reconstruction is the one the *recovery path itself* performs
    // after confirming a crashed worker dead — not a hand-invoked
    // reprofile.
    for servers in [2usize, 4, 6, 8, 12] {
        let cluster = Cluster::homogeneous_a100(servers);
        let gpus = cluster.gpu_count();
        let mut cc = AdapCC::init(&cluster, quick_options());
        cc.setup();
        cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
            rank: Rank(1),
            at: SimTime::ZERO,
        }));
        let rep = cc
            .allreduce(ByteSize::from_mib(16), &BTreeMap::new(), None)
            .expect("a single crash must be recoverable");
        assert_eq!(
            rep.faults,
            vec![Rank(1)],
            "{gpus} GPUs: exactly the crashed rank"
        );
        assert_eq!(cc.workers().len(), gpus - 1);
        let recon = cc
            .recovery_log()
            .iter()
            .find_map(|e| match e {
                RecoveryEvent::Excluded { reconstruction, .. } => Some(*reconstruction),
                _ => None,
            })
            .expect("recovery must have reconstructed the graph");
        assert!(recon.changed, "exclusion always re-synthesizes");
        let restart = nccl_restart_cost(ByteSize::from_mib(528), gpus);
        let saved = 1.0 - recon.total().as_secs() / restart.total().as_secs();
        assert!(
            (0.74..=0.91).contains(&saved),
            "{gpus} GPUs: saved {:.1}% outside the paper's 74-91% band ({} vs {})",
            saved * 100.0,
            recon.total(),
            restart.total()
        );
    }
}

#[test]
fn set_workers_scopes_collectives_to_the_subset() {
    let cluster = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&cluster, quick_options());
    cc.setup();
    cc.set_workers(vec![Rank(0), Rank(1), Rank(4), Rank(5)]);
    let tensor = ByteSize::from_kib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| (*r, vec![1.0f32; elems]))
        .collect();
    let rep = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    assert_eq!(rep.outputs.len(), 4);
    for out in rep.outputs.values() {
        assert_eq!(out[0], 4.0, "sum over exactly the subset");
    }
}

#[test]
fn reduce_scatter_surfaces_divisibility_after_exclusion_then_resharding_succeeds() {
    use adapcc::AdapCCError;

    // Eight workers, a 8192-element tensor: divisible by 8, not by 7.
    let cluster = Cluster::homogeneous_a100(2);
    let mut cc = AdapCC::init(&cluster, quick_options());
    cc.setup();
    cc.inject_faults(FaultSchedule::new().with(Fault::WorkerCrash {
        rank: Rank(5),
        at: SimTime::ZERO,
    }));
    let elems = 8192usize;
    let tensor = ByteSize::from_bytes((elems * 4) as u64);
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| {
            let buf = (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect();
            (*r, buf)
        })
        .collect();

    // The crash is recovered by exclusion, but the retry then plans
    // over 7 survivors — and 8192 elements do not shard evenly, so the
    // pipeline must refuse with a typed error instead of truncating.
    let err = cc
        .reduce_scatter(tensor, &BTreeMap::new(), Some(inputs))
        .expect_err("8192 elements cannot shard over 7 survivors");
    match &err {
        AdapCCError::InvalidRequest(msg) => {
            assert!(msg.contains("7 worker(s)"), "unhelpful message: {msg}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // Recovery did its half of the job before the planner balked: the
    // crashed rank is gone and the exclusion is on the log.
    assert_eq!(cc.workers().len(), 7);
    assert!(!cc.workers().contains(&Rank(5)));
    assert!(cc
        .recovery_log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Excluded { ranks, .. } if ranks.contains(&Rank(5)))));

    // The caller re-shards its buffers to the survivor count and the
    // same call now lands: each survivor holds its aggregated shard.
    let survivors = cc.workers().to_vec();
    let shard = 1024usize;
    let elems2 = survivors.len() * shard;
    let tensor2 = ByteSize::from_bytes((elems2 * 4) as u64);
    let inputs2: BTreeMap<Rank, Vec<f32>> = survivors
        .iter()
        .map(|r| {
            let buf = (0..elems2).map(|i| ((r.0 * 13 + i) % 11) as f32).collect();
            (*r, buf)
        })
        .collect();
    let rep = cc
        .reduce_scatter(tensor2, &BTreeMap::new(), Some(inputs2.clone()))
        .expect("re-sharded request must succeed");
    assert!(rep.faults.is_empty());
    assert_eq!(rep.outputs.len(), survivors.len());
    for (slot, r) in survivors.iter().enumerate() {
        let got = &rep.outputs[r];
        assert_eq!(got.len(), shard);
        for i in 0..shard {
            let want: f32 = survivors.iter().map(|s| inputs2[s][slot * shard + i]).sum();
            assert_eq!(got[i], want, "rank {} elem {i}", r.0);
        }
    }
}
