//! Process-group scope properties (PR 9): a group spanning the full
//! worker set is bit-identical to the unscoped path, and concurrent
//! per-group strategies conserve bytes on the shared fabric no matter
//! how execution interleaves them.

use std::collections::BTreeMap;

use proptest::prelude::*;

use adapcc::session::{AdapCC, InitOptions};
use adapcc::{ExecutionRequest, Executor};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::strategy::Strategy;
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;

fn quick_options() -> InitOptions {
    InitOptions {
        synth: SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A group over the full worker set normalizes to the unscoped
    /// path: same strategy, bit-identical finish time, for any tensor.
    #[test]
    fn full_worker_set_group_is_bit_identical_to_unscoped(size_kib in 16u64..512) {
        let cluster = Cluster::homogeneous_a100(2);
        let tensor = ByteSize::from_kib(size_kib);

        let mut plain = AdapCC::init(&cluster, quick_options());
        plain.setup();
        let direct = plain
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        let direct_strategy = plain.strategy_for(Primitive::AllReduce, tensor).clone();

        let mut scoped = AdapCC::init(&cluster, quick_options());
        scoped.setup();
        let all = scoped.workers().to_vec();
        let via_group = scoped
            .group(&all)
            .expect("full set is valid")
            .allreduce(tensor, &BTreeMap::new(), None)
            .expect("healthy fabric");
        let group_strategy = scoped.strategy_for(Primitive::AllReduce, tensor).clone();

        prop_assert_eq!(group_strategy, direct_strategy);
        prop_assert_eq!(
            via_group.finish.as_secs().to_bits(),
            direct.finish.as_secs().to_bits()
        );
    }
}

/// Concurrent per-group strategies on shared links conserve flow:
/// executing every group in one batch puts exactly the same bytes on
/// the wire as executing the groups one at a time, and contention can
/// only delay the batch past the slowest solo run, never reorder or
/// drop traffic.
#[test]
fn concurrent_groups_conserve_bytes_on_shared_links() {
    let cluster = Cluster::fat_tree(2, 4);
    let topo = Detector::new(&cluster, 7).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 7).run().links;
    // One cross-server ring per local GPU slot: four groups sharing
    // both server NICs.
    let synth = Synthesizer::new(&topo, &profile).with_config(SynthConfig {
        anneal_iters: 32,
        ..Default::default()
    });
    let tensor = ByteSize::from_mib(16);
    let strategies: Vec<Strategy> = (0..4)
        .map(|slot| {
            let members = vec![Rank(slot), Rank(slot + 4)];
            let mut req = SynthRequest::new(Primitive::AllReduce, tensor, 2, members);
            req.seed = slot as u64;
            synth.synthesize(&req)
        })
        .collect();
    let executor = Executor::new(&cluster, &topo);
    let solo: Vec<_> = strategies
        .iter()
        .map(|s| {
            executor
                .try_execute(&[ExecutionRequest::timing(s, tensor)])
                .expect("solo run is valid")
        })
        .collect();
    let batch: Vec<ExecutionRequest<'_>> = strategies
        .iter()
        .map(|s| ExecutionRequest::timing(s, tensor))
        .collect();
    let together = executor.try_execute(&batch).expect("batch is valid");
    let solo_bytes: u64 = solo.iter().map(|r| r.bytes_on_wire).sum();
    assert_eq!(
        together.bytes_on_wire, solo_bytes,
        "contention shifts time, never bytes"
    );
    let slowest_solo = solo
        .iter()
        .map(|r| r.finish.as_secs())
        .fold(0.0f64, f64::max);
    assert!(
        together.finish.as_secs() >= slowest_solo,
        "sharing links cannot beat running alone"
    );
    assert_eq!(together.requests.len(), 4);
    for (r, s) in together.requests.iter().zip(&solo) {
        assert!(r.finish >= s.finish, "each group only slows under load");
    }
}
