//! Property-based tests (proptest) over the workspace's core
//! invariants: conservation of bytes, exactness of the data plane,
//! validity of synthesized strategies, and boundedness of traces.

use std::collections::BTreeMap;

use proptest::prelude::*;

use adapcc::executor::{ExecutionRequest, Executor};
use adapcc_profile::alphabeta::AlphaBeta;
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::trace::CloudTrace;
use adapcc_simnet::units::{Bandwidth, ByteSize};
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::{Hierarchical, Primitive};
use adapcc_topo::detect::Detector;

/// Shared slow-path fixtures, built once.
struct Env {
    cluster: Cluster,
    topo: adapcc_topo::logical::LogicalTopology,
    profile: adapcc_profile::profiler::LinkProfile,
}

fn env() -> &'static Env {
    use std::sync::OnceLock;
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let cluster = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 1).run().links;
        Env {
            cluster,
            topo,
            profile,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ByteSize::split` preserves the total and stays near-equal.
    #[test]
    fn bytesize_split_conserves(total in 0u64..10_000_000, parts in 1usize..64) {
        let sizes = ByteSize::from_bytes(total).split(parts);
        prop_assert_eq!(sizes.len(), parts);
        let sum: u64 = sizes.iter().map(|s| s.as_u64()).sum();
        prop_assert_eq!(sum, total);
        let max = sizes.iter().max().unwrap().as_u64();
        let min = sizes.iter().min().unwrap().as_u64();
        prop_assert!(max - min <= 1);
    }

    /// Strategy partitions cover the tensor exactly for any fractions.
    #[test]
    fn strategy_partition_conserves(
        weights in proptest::collection::vec(1u32..100, 1..8),
        total in 4u64..50_000_000,
    ) {
        use adapcc_synth::strategy::{Strategy, SubCollective};
        let sum: u32 = weights.iter().sum();
        let subs: Vec<SubCollective> = weights
            .iter()
            .map(|w| SubCollective {
                fraction: f64::from(*w) / f64::from(sum),
                chunk: ByteSize::from_kib(64),
                root: None,
                flows: vec![],
                aggregate: Default::default(),
            })
            .collect();
        let s = Strategy { primitive: Primitive::AllToAll, subs };
        let t = ByteSize::from_bytes(total);
        let covered: u64 = (0..weights.len()).map(|m| s.partition(t, m).as_u64()).sum();
        prop_assert_eq!(covered, total);
    }

    /// The α–β fit recovers any physical line exactly from noiseless
    /// measurements.
    #[test]
    fn alphabeta_fit_recovers_line(
        alpha_us in 0.0f64..500.0,
        gbps in 1.0f64..400.0,
    ) {
        let truth = AlphaBeta::new(
            SimDuration::from_micros(alpha_us),
            Bandwidth::from_gbps(gbps),
        );
        let meas: Vec<_> = [64u64, 256, 1024, 8192]
            .iter()
            .map(|kib| {
                let s = ByteSize::from_kib(*kib);
                (s, truth.transfer_time(s))
            })
            .collect();
        let fit = AlphaBeta::fit(&meas).expect("noiseless fit");
        prop_assert!((fit.bandwidth().as_gbps() - gbps).abs() / gbps < 1e-6);
        prop_assert!((fit.alpha_secs - truth.alpha_secs).abs() < 1e-9);
    }

    /// Synthetic traces stay inside physical bounds under any
    /// amplification.
    #[test]
    fn traces_stay_bounded(seed in 0u64..500, x in 0.0f64..2.0) {
        let t = CloudTrace::synthesize(seed, 3600.0, 60.0).amplified(x);
        for p in t.points() {
            prop_assert!(p.bandwidth_factor > 0.0);
            prop_assert!(p.bandwidth_factor <= 1.5);
            prop_assert!(p.latency_factor >= 1.0);
        }
    }

    /// Any synthesized AllReduce both validates and computes the exact
    /// sum for arbitrary worker subsets and parallelism.
    #[test]
    fn synthesized_allreduce_is_exact(
        mask in 2u8..=255,
        m in 1usize..5,
        elems_k in 1usize..8,
    ) {
        let e = env();
        let participants: Vec<Rank> = (0..8)
            .filter(|r| mask & (1 << r) != 0)
            .map(Rank)
            .collect();
        prop_assume!(participants.len() >= 2);
        let elems = elems_k * 256;
        let tensor = ByteSize::from_bytes((elems * 4) as u64);
        let req = SynthRequest::new(Primitive::AllReduce, tensor, m, participants.clone());
        let strategy = Synthesizer::new(&e.topo, &e.profile)
            .with_config(SynthConfig { anneal_iters: 0, ..Default::default() })
            .synthesize(&req);
        prop_assert!(strategy.validate(&e.topo).is_ok());
        let inputs: BTreeMap<Rank, Vec<f32>> = participants
            .iter()
            .map(|r| (*r, (0..elems).map(|i| ((r.0 * 3 + i) % 7) as f32).collect()))
            .collect();
        let exec = Executor::new(&e.cluster, &e.topo);
        let report = exec.execute(&[
            ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())
        ]);
        let outputs = &report.requests[0].outputs;
        prop_assert_eq!(outputs.len(), participants.len());
        for r in &participants {
            let out = &outputs[r];
            for i in [0usize, elems / 2, elems - 1] {
                let expect: f32 = participants.iter().map(|p| inputs[p][i]).sum();
                prop_assert!((out[i] - expect).abs() < 1e-2,
                    "rank {:?} elem {}: {} != {}", r, i, out[i], expect);
            }
        }
    }

    /// Executor timing is monotone in tensor size (more bytes never
    /// finish sooner) for a fixed strategy shape.
    #[test]
    fn completion_monotone_in_size(mib_a in 1u64..32, mib_b in 1u64..32) {
        prop_assume!(mib_a < mib_b);
        let e = env();
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let exec = Executor::new(&e.cluster, &e.topo);
        let time_for = |mib: u64| {
            let tensor = ByteSize::from_mib(mib);
            let req = SynthRequest::new(Primitive::AllReduce, tensor, 2, ranks.clone());
            let s = Synthesizer::new(&e.topo, &e.profile)
                .with_config(SynthConfig { anneal_iters: 0, ..Default::default() })
                .synthesize(&req);
            exec.execute(&[ExecutionRequest::timing(&s, tensor)]).finish.as_secs()
        };
        prop_assert!(time_for(mib_b) > time_for(mib_a) * 0.9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Behaviour tuples are internally consistent on any synthesized
    /// graph under any active subset: idle workers never send, senders
    /// either own data or receive it, and kernels imply receipt.
    #[test]
    fn behavior_tuples_are_consistent(mask in 1u8..=255, active_mask in 1u8..=255) {
        let e = env();
        let participants: Vec<Rank> = (0..8)
            .filter(|r| mask & (1 << r) != 0)
            .map(Rank)
            .collect();
        prop_assume!(participants.len() >= 2);
        let req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(4),
            2,
            participants.clone(),
        );
        let strategy = Synthesizer::new(&e.topo, &e.profile)
            .with_config(SynthConfig { anneal_iters: 0, ..Default::default() })
            .synthesize(&req);
        let active: Vec<Rank> = participants
            .iter()
            .copied()
            .filter(|r| active_mask & (1 << r.0) != 0)
            .collect();
        for sub in &strategy.subs {
            let tuples = adapcc::derive_behaviors(&e.topo, sub, &active);
            for (rank, t) in &tuples {
                // A kernel without input makes no sense.
                prop_assert!(!t.has_kernel || t.has_recv, "{rank}: {t}");
                // Sending requires something to send.
                prop_assert!(!t.has_send || t.is_active || t.has_recv, "{rank}: {t}");
                // Inactive ranks report active=false.
                if !active.contains(rank) {
                    prop_assert!(!t.is_active);
                }
            }
        }
    }

    /// The XML interchange round-trips any synthesized strategy.
    #[test]
    fn xml_roundtrips_synthesized_strategies(m in 1usize..5, mib in 1u64..64) {
        let e = env();
        let req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(mib),
            m,
            (0..8).map(Rank).collect(),
        );
        let strategy = Synthesizer::new(&e.topo, &e.profile)
            .with_config(SynthConfig { anneal_iters: 8, ..Default::default() })
            .synthesize(&req);
        let xml = adapcc_synth::xml::to_xml(&strategy);
        let back = adapcc_synth::xml::from_xml(&xml).expect("round-trips");
        prop_assert_eq!(back, strategy);
    }

    /// Solver worker threads schedule annealing chains but never
    /// change the search: the synthesized strategy is identical for
    /// 1/2/4/8 threads at any seed, chain split, and primitive.
    #[test]
    fn solver_threads_never_change_the_strategy(
        seed in 0u64..1000,
        chains in 1usize..=4,
        prim_idx in 0usize..4,
    ) {
        let prim = [
            Primitive::Reduce,
            Primitive::Broadcast,
            Primitive::AllReduce,
            Primitive::AllToAll,
        ][prim_idx];
        let e = env();
        let mut req = SynthRequest::new(
            prim,
            ByteSize::from_mib(16),
            2,
            (0..8).map(Rank).collect(),
        );
        req.seed = seed;
        let run = |threads: usize| {
            Synthesizer::new(&e.topo, &e.profile)
                .with_config(SynthConfig {
                    anneal_iters: 24,
                    anneal_chains: chains,
                    solver_threads: threads,
                    ..Default::default()
                })
                .synthesize(&req)
        };
        let base = run(1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&run(threads), &base, "diverged at {} threads", threads);
        }
    }

    /// DDP bucket layouts cover the model for any cap.
    #[test]
    fn ddp_layout_conserves(model_kib in 1u64..200_000, cap_kib in 1u64..50_000) {
        use adapcc::ddp::BucketLayout;
        let model = ByteSize::from_kib(model_kib);
        let cap = ByteSize::from_kib(cap_kib);
        let layout = BucketLayout::from_model(model, cap);
        prop_assert_eq!(layout.total(), model);
        for s in layout.sizes() {
            prop_assert!(s.as_u64() <= cap.as_u64());
            prop_assert!(!s.is_zero());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault recovery never changes arithmetic: for any single injected
    /// fault, a recovered AllReduce's outputs over the surviving
    /// workers are bitwise identical to a clean executor run of the
    /// same post-recovery strategy on the same inputs.
    #[test]
    fn recovered_allreduce_is_bitwise_exact_over_survivors(seed in 0u64..300) {
        use adapcc::session::{AdapCC, InitOptions};
        use adapcc_simnet::faults::FaultSchedule;

        let cluster = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(&cluster, InitOptions {
            synth: SynthConfig { anneal_iters: 24, ..Default::default() },
            seed,
            ..Default::default()
        });
        cc.setup();
        // A short horizon puts the fault inside (or just after) the
        // collective, so crashes and NIC failures bite mid-transfer.
        let horizon = SimDuration::from_millis(0.5);
        cc.inject_faults(FaultSchedule::single_random(&cluster, seed, horizon));
        let tensor = ByteSize::from_kib(256);
        let elems = (tensor.as_u64() / 4) as usize;
        let inputs: BTreeMap<Rank, Vec<f32>> = cc
            .workers()
            .iter()
            .map(|r| (*r, (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32 * 0.25).collect()))
            .collect();
        let Ok(rep) = cc.allreduce(tensor, &BTreeMap::new(), Some(inputs.clone())) else {
            // Classified terminal errors (e.g. too few survivors) are a
            // legitimate outcome — nothing to compare.
            return Ok(());
        };
        let survivors = cc.workers().to_vec();
        prop_assert_eq!(rep.outputs.len(), survivors.len());
        // Clean reference: the post-recovery strategy executed on a
        // fault-free fabric with the survivors' inputs.
        let strategy = cc.strategy_for(Primitive::AllReduce, tensor).clone();
        let survivor_inputs: BTreeMap<Rank, Vec<f32>> = survivors
            .iter()
            .map(|r| (*r, inputs[r].clone()))
            .collect();
        let clean = Executor::new(&cluster, cc.topology()).execute(&[
            ExecutionRequest::timing(&strategy, tensor).with_inputs(survivor_inputs)
        ]);
        for r in &survivors {
            let recovered = &rep.outputs[r];
            let reference = &clean.requests[0].outputs[r];
            for i in 0..elems {
                prop_assert!(
                    recovered[i].to_bits() == reference[i].to_bits(),
                    "seed {}: rank {:?} elem {} differs: {} vs {}",
                    seed, r, i, recovered[i], reference[i]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hierarchical composition over random two-level topologies:
    /// whatever the (servers x GPUs-per-server) shape, parallelism, or
    /// seed, the intra+inter composition passes the same
    /// flow-conservation validator as flat strategies and the executed
    /// allreduce delivers every rank's contribution exactly once —
    /// each output element equals the sum over all inputs, nothing
    /// dropped, nothing double-counted.
    #[test]
    fn hierarchical_composition_is_exact(
        servers in 2usize..6,
        gpus_per in 2usize..5,
        m in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cluster = Cluster::fat_tree(servers, gpus_per);
        let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 1).run().links;
        let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
        let elems = 128usize;
        let tensor = ByteSize::from_bytes((elems * 4) as u64);
        let mut req = SynthRequest::new(Primitive::AllReduce, tensor, m, ranks.clone());
        req.seed = seed;
        let strategy = Synthesizer::new(&topo, &profile)
            .with_config(SynthConfig {
                anneal_iters: 8,
                hierarchical: Hierarchical::On,
                ..Default::default()
            })
            .synthesize(&req);
        prop_assert!(strategy.validate(&topo).is_ok());
        let inputs: BTreeMap<Rank, Vec<f32>> = ranks
            .iter()
            .map(|r| (*r, (0..elems).map(|i| ((r.0 * 7 + i) % 13) as f32).collect()))
            .collect();
        let exec = Executor::new(&cluster, &topo);
        let report = exec.execute(&[
            ExecutionRequest::timing(&strategy, tensor).with_inputs(inputs.clone())
        ]);
        let outputs = &report.requests[0].outputs;
        prop_assert_eq!(outputs.len(), ranks.len());
        for r in &ranks {
            let out = &outputs[r];
            for i in [0usize, elems / 2, elems - 1] {
                let expect: f32 = ranks.iter().map(|p| inputs[p][i]).sum();
                prop_assert!(
                    (out[i] - expect).abs() < 1e-2,
                    "{}x{} m={} seed={}: rank {:?} elem {}: {} != {}",
                    servers, gpus_per, m, seed, r, i, out[i], expect
                );
            }
        }
    }
}
