//! Integration tests for the plan-cache subsystem: exact hits replay
//! cold synthesis verbatim, worker exclusion structurally invalidates
//! cached plans, and warm-started re-synthesis meets the Fig. 19(c)
//! cost bar.

use proptest::prelude::*;

use adapcc::session::{AdapCC, InitOptions};
use adapcc_plancache::{
    fingerprint, CachedPlan, Fingerprint, FingerprintInputs, Lookup, PlanCache, PlanCacheConfig,
};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::cost::CostModel;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;

/// Shared slow-path fixtures, built once.
struct Env {
    topo: adapcc_topo::logical::LogicalTopology,
    profile: adapcc_profile::profiler::LinkProfile,
    ranks: Vec<Rank>,
}

fn env() -> &'static Env {
    use std::sync::OnceLock;
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let cluster = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 1).run().links;
        let ranks = (0..cluster.gpu_count()).map(Rank).collect();
        Env {
            topo,
            profile,
            ranks,
        }
    })
}

fn fp_for(env: &Env, req: &SynthRequest, participants: &[Rank]) -> Fingerprint {
    fingerprint(&FingerprintInputs {
        topo: &env.topo,
        profile: &env.profile,
        participants,
        relays: &[],
        primitive: req.primitive,
        parallelism: req.parallelism,
        tensor: req.tensor,
        root: req.root,
        quantization: 0.15,
        hierarchical: false, // 8-GPU fixtures stay below the auto tier
        concurrency: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An exact cache hit yields a strategy structurally identical to a
    /// cold synthesis of the same fingerprint.
    #[test]
    fn exact_hit_replays_cold_synthesis(
        mib in 8u64..256,
        m in 1usize..4,
        seed in 0u64..100,
    ) {
        let env = env();
        let mut req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(mib),
            m,
            env.ranks.clone(),
        );
        req.seed = seed;
        let synth = || {
            Synthesizer::new(&env.topo, &env.profile)
                .with_config(SynthConfig { anneal_iters: 24, ..Default::default() })
        };
        let (cold, plan_seed) = synth().synthesize_with_seed(&req);
        let fp = fp_for(env, &req, &env.ranks);
        let mut cache = PlanCache::new(PlanCacheConfig::default());
        cache.insert(fp, CachedPlan { strategy: cold.clone(), seed: plan_seed });
        match cache.lookup(&fp) {
            Lookup::Hit(plan) => prop_assert_eq!(plan.strategy, cold.clone()),
            other => prop_assert!(false, "expected exact hit, got {:?}", other),
        }
        // Cold synthesis of the same fingerprint is deterministic, so
        // the cached strategy also equals a from-scratch re-solve.
        let resolved = synth().synthesize(&req);
        prop_assert_eq!(resolved, cold);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The exclude -> rejoin round-trip: while the worker set differs
    /// the cache must not serve the pre-exclusion plan (the shape half
    /// of the fingerprint changed); once the fleet returns to the
    /// previously-seen set, the lookup is an exact hit that returns a
    /// bit-identical strategy without touching the solver.
    #[test]
    fn exclude_rejoin_roundtrip_exact_hits(
        mib in 4u64..64,
        victim in 0usize..8,
        seed in 0u64..50,
    ) {
        let cluster = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(
            &cluster,
            InitOptions {
                seed,
                synth: SynthConfig { anneal_iters: 24, ..Default::default() },
                ..Default::default()
            },
        );
        cc.setup();
        let tensor = ByteSize::from_mib(mib);
        let before = cc.strategy_for(Primitive::AllReduce, tensor).clone();
        let hits_baseline = cc.plan_cache_stats().hits;
        cc.exclude_workers(&[Rank(victim)]);
        let shrunk = cc.strategy_for(Primitive::AllReduce, tensor).clone();
        prop_assert!(
            !shrunk.participants().contains(&Rank(victim)),
            "post-exclusion strategy routes only over survivors"
        );
        prop_assert_eq!(
            cc.plan_cache_stats().hits, hits_baseline,
            "no exact hit while the worker set differs"
        );
        // Rejoin through the elastic scale-out path.
        cc.add_workers(&[Rank(victim)]).expect("rejoin is valid");
        let hits_prior = cc.plan_cache_stats().hits;
        let again = cc.strategy_for(Primitive::AllReduce, tensor).clone();
        prop_assert_eq!(
            cc.plan_cache_stats().hits, hits_prior + 1,
            "rejoin to a previously-seen worker set must exact-hit"
        );
        prop_assert_eq!(again, before, "served strategy must be bit-identical");
    }
}

/// Removing a participant flips the shape half of the fingerprint, so
/// a pre-exclusion entry can never exact-hit or warm-start a
/// post-exclusion lookup.
#[test]
fn exclusion_changes_the_shape_fingerprint() {
    let env = env();
    let req = SynthRequest::new(
        Primitive::AllReduce,
        ByteSize::from_mib(64),
        2,
        env.ranks.clone(),
    );
    let before = fp_for(env, &req, &env.ranks);
    let survivors: Vec<Rank> = env
        .ranks
        .iter()
        .copied()
        .filter(|r| *r != Rank(3))
        .collect();
    let after = fp_for(env, &req, &survivors);
    assert_ne!(
        before.shape, after.shape,
        "participant loss must flip the shape hash"
    );
    assert_eq!(before.profile, after.profile, "links did not drift");
    let mut cache = PlanCache::new(PlanCacheConfig::default());
    let (strategy, seed) = Synthesizer::new(&env.topo, &env.profile)
        .with_config(SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        })
        .synthesize_with_seed(&req);
    cache.insert(before, CachedPlan { strategy, seed });
    assert_eq!(
        cache.lookup(&after),
        Lookup::Miss,
        "pre-exclusion plan must not be served"
    );
}

/// A live session never serves a pre-exclusion plan after a worker
/// dies: the re-synthesized strategy routes only over survivors and the
/// cache records no exact hit for the shrunken fleet.
#[test]
fn session_never_serves_a_pre_exclusion_plan() {
    let cluster = Cluster::homogeneous_a100(3);
    let mut cc = AdapCC::init(
        &cluster,
        InitOptions {
            synth: SynthConfig {
                anneal_iters: 32,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    cc.setup();
    let tensor = ByteSize::from_mib(16);
    let before = cc.strategy_for(Primitive::AllReduce, tensor).clone();
    assert!(before.participants().contains(&Rank(5)));
    cc.exclude_workers(&[Rank(5)]);
    let after = cc.strategy_for(Primitive::AllReduce, tensor).clone();
    assert!(
        !after.participants().contains(&Rank(5)),
        "post-exclusion strategy must route only over survivors"
    );
    assert_ne!(before, after);
    let stats = cc.plan_cache_stats();
    assert_eq!(
        stats.hits, 0,
        "the shrunken fleet has a new shape: no exact hit, {stats:?}"
    );
    assert!(
        stats.misses >= 2,
        "init and post-exclusion solves are both cold, {stats:?}"
    );
}

/// The Fig. 19(c) warm-cache bar: over an unchanged fleet with a
/// drifted profile, the warm-started re-synthesis bills at least 5x
/// less modeled solver time than the cache-disabled cold solve while
/// arriving at a strategy of identical evaluated cost.
#[test]
fn warm_start_is_5x_cheaper_with_identical_evaluated_cost() {
    let tensor = ByteSize::from_mib(128);
    let run = |plan_cache: PlanCacheConfig| {
        let cluster = Cluster::homogeneous_a100(2);
        let mut cc = AdapCC::init(
            &cluster,
            InitOptions {
                synth: SynthConfig {
                    anneal_iters: 120,
                    ..Default::default()
                },
                plan_cache,
                ..Default::default()
            },
        );
        cc.setup();
        let _ = cc.strategy_for(Primitive::AllReduce, tensor);
        cc.set_fabric_factors(vec![(cluster.nic_egress_link(InstanceId(0)), 0.5)]);
        let recon = cc.reprofile();
        assert!(recon.changed, "degraded NIC must trigger re-synthesis");
        let strategy = cc.strategy_for(Primitive::AllReduce, tensor).clone();
        let cost = CostModel::new(cc.topology(), cc.link_profile())
            .evaluate(&strategy, tensor)
            .completion
            .as_secs();
        (recon.solving.as_secs(), cost, cc.plan_cache_stats())
    };
    let (cold_solving, cold_cost, _) = run(PlanCacheConfig::disabled());
    let (warm_solving, warm_cost, stats) = run(PlanCacheConfig::default());
    assert!(
        stats.warm_starts > 0,
        "drifted profile over unchanged fleet warm-starts: {stats:?}"
    );
    assert!(
        cold_solving >= 5.0 * warm_solving,
        "warm solve must be >=5x cheaper: cold {cold_solving}s vs warm {warm_solving}s"
    );
    // "Identical" up to the chunk sweep's final polish: the warm start
    // re-runs the sweep against the drifted profile, so it may land a
    // hair under the cold solve but must never be worse.
    assert!(
        warm_cost <= cold_cost * (1.0 + 1e-9),
        "warm re-synthesis must not be worse than cold: {warm_cost} vs {cold_cost}"
    );
    assert!(
        (warm_cost - cold_cost).abs() <= 1e-3 * cold_cost,
        "warm and cold re-syntheses must agree on evaluated cost: {warm_cost} vs {cold_cost}"
    );
}
