//! Integration tests for the shared plan service: single-flight
//! admission under a many-thread herd (exactly one solve per distinct
//! cold fingerprint, bit-identical strategies for every waiter), the
//! byte budget holding under concurrent eviction pressure, and the
//! equivalence guarantee that a service-served strategy is
//! bit-identical to what a cold single-session synthesis produces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;

use adapcc::session::{AdapCC, InitOptions};
use adapcc_plancache::{fingerprint, CachedPlan, Fingerprint, FingerprintInputs};
use adapcc_planserve::{approx_plan_bytes, PlanService, Served, ServiceConfig};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::strategy::Strategy;
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;

/// Shared slow-path fixtures, built once.
struct Env {
    topo: adapcc_topo::logical::LogicalTopology,
    profile: adapcc_profile::profiler::LinkProfile,
    ranks: Vec<Rank>,
}

fn env() -> &'static Env {
    use std::sync::OnceLock;
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let cluster = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 1).run().links;
        let ranks = (0..cluster.gpu_count()).map(Rank).collect();
        Env {
            topo,
            profile,
            ranks,
        }
    })
}

fn synth(env: &Env) -> Synthesizer<'_> {
    Synthesizer::new(&env.topo, &env.profile).with_config(SynthConfig {
        anneal_iters: 24,
        ..Default::default()
    })
}

/// Ten distinct workloads: tensor size classes 1..=512 MiB by powers
/// of two, each a distinct shape half, so every key is a cold solve
/// with no cross-key warm starts muddying the solve count.
fn workloads(env: &Env) -> Vec<(Fingerprint, SynthRequest)> {
    (0..10u64)
        .map(|i| {
            let req = SynthRequest::new(
                Primitive::AllReduce,
                ByteSize::from_mib(1 << i),
                2,
                env.ranks.clone(),
            );
            let fp = fingerprint(&FingerprintInputs {
                topo: &env.topo,
                profile: &env.profile,
                participants: &env.ranks,
                relays: &[],
                primitive: req.primitive,
                parallelism: req.parallelism,
                tensor: req.tensor,
                root: req.root,
                quantization: 0.15,
                hierarchical: false,
                concurrency: 0,
            });
            (fp, req)
        })
        .collect()
}

/// The headline admission guarantee: 8 threads x 120 requests hammering
/// 10 distinct fingerprints cost exactly one solve per fingerprint, and
/// every requester — leader, store hit, or coalesced waiter — receives
/// a strategy bit-identical to the cold synthesis of that key.
#[test]
fn herd_pays_exactly_one_solve_per_distinct_key() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 120;
    let env = env();
    let keys = workloads(env);
    let expected: Vec<Strategy> = keys
        .iter()
        .map(|(_, req)| synth(env).synthesize(req))
        .collect();
    let solves: Vec<AtomicU64> = (0..keys.len()).map(|_| AtomicU64::new(0)).collect();
    let service = PlanService::new(ServiceConfig::default());
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (service, keys, expected, solves, barrier) =
                (&service, &keys, &expected, &solves, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..REQUESTS {
                    // Every thread walks the key set in a different
                    // order, so each fingerprint sees concurrent first
                    // arrivals from several threads.
                    let k = (i * 7 + t * 3) % keys.len();
                    let (fp, req) = &keys[k];
                    let resolved = service.resolve(*fp, |_seed| {
                        solves[k].fetch_add(1, Ordering::SeqCst);
                        let (strategy, seed) = synth(env).synthesize_with_seed(req);
                        (CachedPlan { strategy, seed }, false)
                    });
                    assert_eq!(
                        resolved.plan.strategy, expected[k],
                        "served strategy must be bit-identical to cold synthesis"
                    );
                    assert!(
                        service.bytes() <= service.config().byte_budget,
                        "byte budget exceeded mid-run"
                    );
                }
            });
        }
    });

    for (k, count) in solves.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "key {k} must be solved exactly once"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.cold, keys.len() as u64, "one cold solve per key");
    assert_eq!(stats.warm, 0, "distinct shapes offer no warm seeds");
    assert_eq!(
        stats.hits + stats.coalesced + stats.cold,
        (THREADS * REQUESTS) as u64,
        "every request is accounted for exactly once"
    );
}

/// Under a budget that holds only a few entries, concurrent inserts
/// evict LRU-first but the store never exceeds the budget at any
/// observation point, and evicted keys are transparently re-solved.
#[test]
fn byte_budget_holds_under_concurrent_eviction_pressure() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 100;
    let env = env();
    let keys = workloads(env);
    let plans: Vec<CachedPlan> = keys
        .iter()
        .map(|(_, req)| {
            let (strategy, seed) = synth(env).synthesize_with_seed(req);
            CachedPlan { strategy, seed }
        })
        .collect();
    let budget = plans.iter().map(approx_plan_bytes).max().unwrap() * 3;
    // One shard makes the global budget the exact per-shard bound, so
    // the assertion below is strict rather than probabilistic.
    let service = PlanService::new(ServiceConfig {
        shards: 1,
        byte_budget: budget,
        warm_start: false,
    });
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (service, keys, plans, barrier) = (&service, &keys, &plans, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..REQUESTS {
                    let k = (i * 3 + t) % keys.len();
                    let resolved = service.resolve(keys[k].0, |_seed| (plans[k].clone(), false));
                    assert_eq!(resolved.plan.strategy, plans[k].strategy);
                    assert!(
                        service.bytes() <= budget,
                        "store bytes {} exceed budget {budget}",
                        service.bytes()
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert!(
        stats.evictions > 0,
        "ten keys against a three-entry budget must evict: {stats:?}"
    );
    assert!(service.bytes() <= budget);
    assert!(service.len() as u64 == stats.entries);
}

/// Two sessions sharing one service: the second session's first
/// strategy is served from the store (no second solve) and is
/// bit-identical to what the first session synthesized.
#[test]
fn second_session_is_served_the_first_sessions_plan() {
    let cluster = Cluster::homogeneous_a100(2);
    let service = Arc::new(PlanService::default());
    let options = || InitOptions {
        synth: SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        },
        plan_service: Some(Arc::clone(&service)),
        ..Default::default()
    };
    let tensor = ByteSize::from_mib(32);
    let mut a = AdapCC::init(&cluster, options());
    a.setup();
    let first = a.strategy_for(Primitive::AllReduce, tensor).clone();
    assert_eq!(service.stats().cold, 1, "session A pays the cold solve");
    let mut b = AdapCC::init(&cluster, options());
    b.setup();
    let second = b.strategy_for(Primitive::AllReduce, tensor).clone();
    let stats = service.stats();
    assert_eq!(stats.cold, 1, "session B must not re-solve");
    assert!(
        stats.hits >= 1,
        "session B is an exact store hit: {stats:?}"
    );
    assert_eq!(second, first, "shared plan must be bit-identical");
}

/// `Served::Coalesced` is reachable from the public API: two threads
/// racing the same cold key through one service see one leader and one
/// waiter (or, if the leader already published, a store hit — never two
/// cold solves).
#[test]
fn racing_requesters_never_both_solve() {
    let env = env();
    let (fp, req) = workloads(env).remove(0);
    let service = PlanService::new(ServiceConfig::default());
    let solves = AtomicU64::new(0);
    let barrier = Barrier::new(2);
    let outcomes: Vec<Served> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (service, req, solves, barrier) = (&service, &req, &solves, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    service
                        .resolve(fp, |_seed| {
                            solves.fetch_add(1, Ordering::SeqCst);
                            let (strategy, seed) = synth(env).synthesize_with_seed(req);
                            (CachedPlan { strategy, seed }, false)
                        })
                        .served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(solves.load(Ordering::SeqCst), 1, "exactly one leader");
    assert_eq!(
        outcomes.iter().filter(|s| **s == Served::Cold).count(),
        1,
        "one cold, the other hit or coalesced: {outcomes:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The correctness contract of the whole subsystem: routing a
    /// session's synthesis through the shared service changes *where*
    /// the strategy comes from, never *what* it is — the served
    /// strategy is bit-identical to a cold single-session synthesis
    /// with the same seed.
    #[test]
    fn service_served_strategy_equals_cold_synthesis(
        mib in 4u64..128,
        seed in 0u64..20,
    ) {
        let cluster = Cluster::homogeneous_a100(2);
        let options = |plan_service| InitOptions {
            seed,
            synth: SynthConfig { anneal_iters: 24, ..Default::default() },
            plan_service,
            ..Default::default()
        };
        let tensor = ByteSize::from_mib(mib);
        let service = Arc::new(PlanService::default());
        let mut with = AdapCC::init(&cluster, options(Some(Arc::clone(&service))));
        with.setup();
        let served = with.strategy_for(Primitive::AllReduce, tensor).clone();
        let mut without = AdapCC::init(&cluster, options(None));
        without.setup();
        let cold = without.strategy_for(Primitive::AllReduce, tensor).clone();
        prop_assert_eq!(served, cold, "service must be invisible to the result");
        prop_assert!(service.stats().cold >= 1, "the service did the solving");
    }
}
