//! The relay coordinator's ski-rental accounting, observed through
//! telemetry counters: waiting time accumulates only while below the
//! break-even point, and the estimated transmit (buy) cost is charged
//! exactly once per proceed decision.

use std::collections::BTreeMap;

use adapcc::relay::{BuyEstimate, Coordinator, Decision, RelayConfig};
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;
use adapcc_telemetry::Telemetry;

fn workers(n: usize) -> Vec<Rank> {
    (0..n).map(Rank).collect()
}

fn ready_at(times_ms: &[(usize, f64)]) -> BTreeMap<Rank, SimTime> {
    times_ms
        .iter()
        .map(|(r, ms)| (Rank(*r), SimTime::from_secs(ms * 1e-3)))
        .collect()
}

/// A buy estimate whose cost for (4 ready, 1 late) is about `buy_ms`.
fn est(buy_ms: f64) -> BuyEstimate {
    let t = ByteSize::from_mib(1);
    let vol = 7.0 * t.as_f64();
    BuyEstimate::from_parts(t, Primitive::AllReduce, vol / (buy_ms * 1e-3))
}

fn coordinator(telemetry: &Telemetry) -> Coordinator {
    Coordinator::new(1).with_telemetry(telemetry.clone())
}

#[test]
fn wait_all_charges_waiting_but_never_transmit() {
    let telemetry = Telemetry::enabled();
    let mut c = coordinator(&telemetry);
    // Everyone within 2 ms; buying would cost 50 ms — wait.
    let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.5), (3, 2.0), (4, 2.0)]);
    let d = c.decide(&workers(5), Rank(0), &ready, &est(50.0));
    assert!(matches!(d, Decision::WaitAll { .. }));
    assert_eq!(telemetry.counter("relay.decisions"), 1.0);
    assert_eq!(telemetry.counter("relay.wait_all"), 1.0);
    assert_eq!(telemetry.counter("relay.buys"), 0.0);
    assert_eq!(telemetry.counter("relay.transmit_secs"), 0.0);
    // Waited exactly until the last worker arrived (2 ms after the
    // first), never past it.
    let wait = telemetry.counter("relay.wait_secs");
    assert!((wait - 0.002).abs() < 1e-9, "wait {wait}");
}

#[test]
fn buy_stops_waiting_at_the_break_even_point() {
    let telemetry = Telemetry::enabled();
    let mut c = coordinator(&telemetry);
    let buy = est(20.0);
    // Rank 4 is 200 ms late: the coordinator must proceed, and its
    // accumulated wait must sit within one decision cycle (5 ms) past
    // the buy estimate — the 2-competitive break-even rule.
    let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.0), (3, 2.0), (4, 200.0)]);
    let d = c.decide(&workers(5), Rank(0), &ready, &buy);
    assert!(matches!(d, Decision::Partial { .. }));
    assert_eq!(telemetry.counter("relay.buys"), 1.0);
    let wait = telemetry.counter("relay.wait_secs");
    let transmit = telemetry.counter("relay.transmit_secs");
    let expected_buy = buy
        .cost_for(&[Rank(0), Rank(1), Rank(2), Rank(3)], &[Rank(4)])
        .as_secs();
    assert!(
        (transmit - expected_buy).abs() < 1e-12,
        "transmit {transmit} vs {expected_buy}"
    );
    assert!(
        wait >= transmit,
        "proceeded before break-even: {wait} < {transmit}"
    );
    assert!(
        wait <= transmit + 0.005 + 1e-9,
        "kept waiting past break-even: {wait} vs buy {transmit}"
    );
    // Far below the straggler's 200 ms lateness: waiting stopped.
    assert!(wait < 0.05, "wait {wait}");
}

#[test]
fn counters_accumulate_across_iterations() {
    let telemetry = Telemetry::enabled();
    let mut c = coordinator(&telemetry);
    let ready = ready_at(&[(0, 0.0), (1, 1.0), (2, 1.0), (3, 2.0), (4, 200.0)]);
    for _ in 0..3 {
        let d = c.decide(&workers(5), Rank(0), &ready, &est(20.0));
        assert!(matches!(d, Decision::Partial { .. }));
    }
    assert_eq!(telemetry.counter("relay.decisions"), 3.0);
    assert_eq!(telemetry.counter("relay.buys"), 3.0);
    let wait = telemetry.counter("relay.wait_secs");
    let transmit = telemetry.counter("relay.transmit_secs");
    assert!(
        (wait / 3.0) >= (transmit / 3.0),
        "per-iteration break-even holds"
    );
    assert!(transmit > 0.0);
}

#[test]
fn disabled_relay_reports_pure_waiting() {
    let telemetry = Telemetry::enabled();
    let mut c = Coordinator::new(1)
        .with_config(RelayConfig {
            enabled: false,
            ..Default::default()
        })
        .with_telemetry(telemetry.clone());
    let ready = ready_at(&[(0, 0.0), (1, 500.0)]);
    let d = c.decide(&workers(2), Rank(0), &ready, &est(1.0));
    assert!(matches!(d, Decision::WaitAll { .. }));
    // An always-wait library eats the full straggler delay and never
    // transmits early.
    assert_eq!(telemetry.counter("relay.wait_all"), 1.0);
    assert!((telemetry.counter("relay.wait_secs") - 0.5).abs() < 1e-9);
    assert_eq!(telemetry.counter("relay.transmit_secs"), 0.0);
}

// ---------------------------------------------------------------------------
// Composite collectives consult the coordinator (the pre-refactor
// session never did: AllGather / ReduceScatter ran wait-all
// unconditionally, so a straggler stalled every broadcast).
// ---------------------------------------------------------------------------

#[test]
fn allgather_with_a_straggler_goes_partial_and_charges_the_relay_counters() {
    use adapcc::session::{AdapCC, InitOptions};
    use adapcc_simnet::cluster::Cluster;
    use adapcc_simnet::time::SimDuration;

    let cluster = Cluster::homogeneous_a100(2);
    let telemetry = Telemetry::enabled();
    let options = InitOptions {
        relay: RelayConfig {
            // High fault floor: an 80 ms straggler is slow, not dead.
            fault_floor: SimDuration::from_millis(500.0),
            ..Default::default()
        },
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let mut cc = AdapCC::init(&cluster, options);
    cc.setup();
    let workers = cc.workers().to_vec();
    let straggler = *workers.last().unwrap();
    let mut ready: BTreeMap<Rank, SimTime> = workers.iter().map(|r| (*r, SimTime::ZERO)).collect();
    ready.insert(straggler, SimTime::from_secs(0.08));

    let report = cc
        .allgather(ByteSize::from_kib(64), &ready, None)
        .expect("straggler is slow, not faulty");

    // The ski-rental rule buys: 80 ms dwarfs the modeled transmit cost
    // of seven 64 KiB broadcasts, so phase 1 runs without the straggler
    // and its own broadcast completes in phase 2.
    match &report.decision {
        Decision::Partial { ready, relays, .. } => {
            assert!(relays.contains(&straggler), "straggler must be relayed");
            assert!(!ready.contains(&straggler));
            assert_eq!(ready.len(), workers.len() - 1);
        }
        other => panic!("expected Partial, got {other:?}"),
    }
    // Slow, not dead — nobody is excluded, and the straggler's shard
    // still lands (its phase-2 broadcast starts at its ready time).
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    assert!(report.finish.as_secs() > 0.08, "finish {}", report.finish);
    assert!(telemetry.counter("relay.decisions") >= 1.0);
    assert!(telemetry.counter("relay.buys") >= 1.0, "must buy, not wait");
    assert!(telemetry.counter("relay.wait_secs") > 0.0);
    assert!(telemetry.counter("relay.transmit_secs") > 0.0);
}
