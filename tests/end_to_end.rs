//! Workspace integration tests: the full AdapCC pipeline — detect →
//! profile → synthesize → execute — across crates, plus the baseline
//! comparisons the paper's headline numbers rest on.

use std::collections::BTreeMap;

use adapcc::session::{AdapCC, InitOptions};
use adapcc::Decision;
use adapcc_baselines::runner::{Runner, System};
use adapcc_profile::profiler::Profiler;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::time::SimTime;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;
use adapcc_topo::detect::Detector;

fn quick_options() -> InitOptions {
    InitOptions {
        synth: SynthConfig {
            anneal_iters: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn full_pipeline_on_the_paper_testbed() {
    let cluster = Cluster::paper_testbed();
    // Control path, exactly as a training script would drive it.
    let mut cc = AdapCC::init(&cluster, quick_options());
    let setup = cc.setup();
    assert!(setup.elapsed.as_millis() > 0.0);
    // Detection found the real structure without reading ground truth.
    let det = cc.detection();
    assert_eq!(det.instances.len(), 6);
    for inst in &det.instances {
        assert_eq!(inst.nvlink_pairs.len(), 6, "full-mesh NVLink per server");
    }
    // Data plane: a real AllReduce sums exactly.
    let tensor = ByteSize::from_kib(128);
    let elems = (tensor.as_u64() / 4) as usize;
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| (*r, vec![r.0 as f32 + 0.5; elems]))
        .collect();
    let report = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    let expect: f32 = (0..24).map(|r| r as f32 + 0.5).sum();
    for (rank, out) in &report.outputs {
        assert!(
            (out[elems / 2] - expect).abs() < 1e-2,
            "rank {rank} got {} want {expect}",
            out[elems / 2]
        );
    }
    assert_eq!(report.outputs.len(), 24);
}

#[test]
fn adapcc_strategy_beats_every_baseline_on_the_testbed() {
    let cluster = Cluster::paper_testbed();
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let runner = Runner::new(&cluster, &topo, &profile);
    let ranks: Vec<Rank> = (0..24).map(Rank).collect();
    let tensor = ByteSize::from_mib(128);
    let mut bw = BTreeMap::new();
    for sys in System::all() {
        let r = runner.run(
            sys,
            Primitive::AllReduce,
            tensor,
            &ranks,
            &Default::default(),
        );
        bw.insert(sys.name(), r.algo_bw_gbytes);
    }
    assert!(bw["AdapCC"] > bw["NCCL"], "{bw:?}");
    assert!(bw["AdapCC"] > bw["MSCCL"], "{bw:?}");
    assert!(bw["AdapCC"] > bw["Blink"], "{bw:?}");
}

#[test]
fn tcp_single_stream_penalty_matches_paper_observation() {
    // Paper Sec. VI-D: a single TCP channel peaks around 20 Gbps on a
    // 100 Gbps NIC; AdapCC's parallel sub-collectives recover most of
    // the line rate while NCCL's single channel cannot.
    let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
    b.add_instances(
        adapcc_simnet::hardware::InstanceSpec::a100_server().with_tcp(),
        2,
    );
    let cluster = b.build();
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let runner = Runner::new(&cluster, &topo, &profile);
    let ranks: Vec<Rank> = (0..8).map(Rank).collect();
    let tensor = ByteSize::from_mib(64);
    let ours = runner.run(
        System::AdapCc,
        Primitive::AllReduce,
        tensor,
        &ranks,
        &Default::default(),
    );
    let nccl = runner.run(
        System::Nccl,
        Primitive::AllReduce,
        tensor,
        &ranks,
        &Default::default(),
    );
    assert!(
        ours.algo_bw_gbytes > nccl.algo_bw_gbytes * 1.3,
        "ours {} vs nccl {}",
        ours.algo_bw_gbytes,
        nccl.algo_bw_gbytes
    );
}

#[test]
fn adaptive_two_phase_equals_full_collective_numerically() {
    let cluster = Cluster::homogeneous_a100(2);
    let mut options = quick_options();
    options.relay.fault_floor = adapcc_simnet::time::SimDuration::from_millis(1000.0);
    let mut cc = AdapCC::init(&cluster, options);
    cc.setup();
    let tensor = ByteSize::from_kib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| {
            (
                *r,
                (0..elems).map(|i| ((r.0 * 7 + i) % 13) as f32).collect(),
            )
        })
        .collect();
    // Straggler way past the break-even point.
    let mut ready: BTreeMap<Rank, SimTime> =
        cc.workers().iter().map(|r| (*r, SimTime::ZERO)).collect();
    let strategy_root = cc.strategy_for(Primitive::AllReduce, tensor).subs[0]
        .root
        .unwrap();
    let straggler = cc
        .workers()
        .iter()
        .copied()
        .find(|r| *r != strategy_root)
        .unwrap();
    ready.insert(straggler, SimTime::from_secs(0.05));

    let adaptive = cc
        .allreduce_adaptive(tensor, &ready, Some(inputs.clone()))
        .expect("healthy fabric");
    assert!(matches!(adaptive.decision, Decision::Partial { .. }));
    let full = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    for rank in cc.workers() {
        let a = &adaptive.outputs[rank];
        let f = &full.outputs[rank];
        for i in (0..elems).step_by(997) {
            assert!(
                (a[i] - f[i]).abs() < 1e-3,
                "rank {rank} elem {i}: partial {} vs full {}",
                a[i],
                f[i]
            );
        }
    }
}

#[test]
fn synthesized_strategies_serialize_to_xml_and_back() {
    let cluster = Cluster::heterogeneous_2a100_2v100();
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let req = SynthRequest::new(
        Primitive::Reduce,
        ByteSize::from_mib(64),
        4,
        (0..16).map(Rank).collect(),
    );
    let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
    let xml = adapcc_synth::xml::to_xml(&strategy);
    let parsed = adapcc_synth::xml::from_xml(&xml).expect("round-trips");
    assert_eq!(parsed, strategy);
    assert!(parsed.validate(&topo).is_ok());
}

#[test]
fn behavior_tuples_match_executor_roles() {
    // The behaviour abstraction and the executor must agree: a relay
    // with one active upstream forwards without a kernel.
    let cluster = Cluster::homogeneous_a100(1);
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let mut req = SynthRequest::new(
        Primitive::Reduce,
        ByteSize::from_mib(4),
        1,
        vec![Rank(0), Rank(2), Rank(3)],
    );
    req.relays = vec![Rank(1)];
    let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
    let active = [Rank(0), Rank(2), Rank(3)];
    for sub in &strategy.subs {
        let tuples = adapcc::derive_behaviors(&topo, sub, &active);
        if let Some(t) = tuples.get(&Rank(1)) {
            assert!(!t.is_active, "rank 1 is a relay");
            // If it receives anything it must forward it onward.
            if t.has_recv {
                assert!(t.has_send);
            }
        }
    }
}

#[test]
fn eight_gpu_servers_work_end_to_end() {
    // DGX-style 8-GPU servers: two PCIe switches of four GPUs each,
    // full-mesh NVLink, 200 Gbps NICs — exercises detection, synthesis
    // and execution beyond the paper's 4-GPU shapes.
    let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
    b.add_instances(adapcc_simnet::hardware::InstanceSpec::dgx_a100(), 2);
    let cluster = b.build();
    assert_eq!(cluster.gpu_count(), 16);
    let mut cc = AdapCC::init(&cluster, quick_options());
    cc.setup();
    // Detection still splits the switch groups correctly.
    let det = &cc.detection().instances[0];
    assert_eq!(det.switch_groups.len(), 2);
    assert_eq!(det.switch_groups[0].len(), 4);
    assert_eq!(det.nvlink_pairs.len(), 28, "8 choose 2 NVLinks");
    // And the collective still sums exactly.
    let tensor = ByteSize::from_kib(64);
    let elems = (tensor.as_u64() / 4) as usize;
    let inputs: BTreeMap<Rank, Vec<f32>> = cc
        .workers()
        .iter()
        .map(|r| (*r, vec![(r.0 + 1) as f32; elems]))
        .collect();
    let report = cc
        .allreduce(tensor, &BTreeMap::new(), Some(inputs))
        .expect("healthy fabric");
    let expect: f32 = (1..=16).map(|v| v as f32).sum();
    assert_eq!(report.outputs[&Rank(3)][0], expect);
}

#[test]
fn mixed_generation_fleet_synthesizes() {
    // A100 + H100 + V100 all in one job: the profiler sees three NIC
    // speeds (100/400/50 Gbps) and the synthesizer roots on the H100.
    let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
    b.add_instance(adapcc_simnet::hardware::InstanceSpec::a100_server());
    b.add_instance(adapcc_simnet::hardware::InstanceSpec::h100_server());
    b.add_instance(adapcc_simnet::hardware::InstanceSpec::v100_server());
    let cluster = b.build();
    let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
    let profile = Profiler::new(&cluster, &topo, 1).run().links;
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(64), 2, ranks);
    let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
    assert!(strategy.validate(&topo).is_ok());
    let root = strategy.subs[0].root.unwrap();
    // Ranks 4..12 are the H100 server's.
    assert!(
        (4..12).contains(&root.0),
        "root {root:?} should sit on the H100 server"
    );
}
