//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the *exact* API subset it consumes: the
//! [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`, over
//! any [`RngCore`] source. Distributions are deterministic and uniform
//! (modulo reduction for integers, 53-bit mantissa scaling for floats);
//! statistical perfection is not a goal — reproducibility is.
#![allow(clippy::all, clippy::pedantic)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 step: well mixed, deterministic.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
            let u: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
