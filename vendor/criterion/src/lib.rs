//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, bencher
//! iteration) but replaces statistical sampling with a single timed
//! burst per benchmark, so `cargo test` (which executes
//! `harness = false` bench binaries) stays fast. Numbers printed are
//! indicative wall-clock only.
#![allow(clippy::all, clippy::pedantic)]

use std::fmt;
use std::time::{Duration, Instant};

/// Iterations run per benchmark in this stand-in.
const BURST: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing context passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Times `f` over a small fixed burst of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
    }
}

fn run_one(group: &str, id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters: BURST };
    let start = Instant::now();
    f(&mut b);
    let elapsed = start.elapsed();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label}: {:?} total over {BURST} iterations (~{:?}/iter)",
        elapsed,
        elapsed / BURST,
    );
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored in the stand-in (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored in the stand-in.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored in the stand-in.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.to_string(), f);
        self
    }
}

/// Declares a function bundling benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
