//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace uses:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, `pat in
//! strategy` arguments, integer/float range strategies, tuple
//! strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from
//! a seed derived deterministically from the test's module path and
//! name, so failures reproduce run-to-run. There is no shrinking: a
//! failing case reports its inputs via the assertion message instead.
#![allow(clippy::all, clippy::pedantic)]

use std::fmt;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count, try another.
    Reject(String),
    /// An assertion failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejection carrying `msg`.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type every generated case body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic case-generation RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a string — used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! unsigned_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
unsigned_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(200);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases,
                );
                let ($($arg,)+) = ( $( $crate::Strategy::sample(&($strat), &mut rng), )+ );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (seed {}): {}",
                            stringify!($name),
                            accepted + 1,
                            seed,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}`: {}",
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} != {:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn in_bounds(x in 3u64..17, y in -2i32..=2, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f), "f = {}", f);
        }

        /// Tuple + vec strategies compose; assume rejects odd lengths.
        #[test]
        fn composed(v in collection::vec((0usize..3, 1u64..64), 1..10)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert_eq!(b, b);
                prop_assert!((1..64).contains(&b));
            }
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::fnv1a("abc"), crate::fnv1a("abc"));
        assert_ne!(crate::fnv1a("abc"), crate::fnv1a("abd"));
    }
}
