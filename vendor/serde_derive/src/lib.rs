//! No-op derive macros standing in for `serde_derive`.
//!
//! Each derive accepts the `#[serde(...)]` helper attribute and emits
//! nothing: the workspace derives the traits for API-shape fidelity but
//! never calls a serializer.
#![allow(clippy::all, clippy::pedantic)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
