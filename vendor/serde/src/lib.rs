//! Offline stand-in for the `serde` crate.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` — it
//! never serializes anything (there is no serde_json or bincode in the
//! tree). The derives here are no-ops from `serde_derive`, so the
//! attribute positions keep compiling without pulling in the real
//! machinery.
#![allow(clippy::all, clippy::pedantic)]

pub use serde_derive::{Deserialize, Serialize};
