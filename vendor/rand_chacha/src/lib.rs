//! Offline stand-in for the `rand_chacha` crate.
//!
//! Exposes a [`ChaCha8Rng`] with the same construction surface the
//! workspace uses (`SeedableRng::seed_from_u64`). The generator behind
//! the name is xoshiro256++ seeded through splitmix64 — deterministic,
//! well mixed, and dependency-free; it is *not* bit-compatible with the
//! real ChaCha stream (nothing in this workspace depends on that).
#![allow(clippy::all, clippy::pedantic)]

/// Re-export surface mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    /// Seedable construction for deterministic generators.
    pub trait SeedableRng: Sized {
        /// Builds a generator from a 64-bit seed.
        fn seed_from_u64(seed: u64) -> Self;
    }
}

/// Deterministic seedable PRNG (stand-in for the ChaCha8 generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl rand_core::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl rand::RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
