//! Top-level facade for the AdapCC reproduction workspace.
//!
//! This crate only hosts the workspace-wide examples and integration
//! tests; the library itself lives in [`adapcc`] and its substrate
//! crates. Re-exports are provided for convenience so examples can use
//! a single import root.

pub use adapcc;
pub use adapcc_baselines as baselines;
pub use adapcc_profile as profile;
pub use adapcc_simnet as simnet;
pub use adapcc_synth as synth;
pub use adapcc_topo as topo;
pub use adapcc_train as train;
