//! Hand-rolled JSON codec for on-disk cache entries.
//!
//! The workspace's `serde` is an offline no-op stand-in (derives
//! compile but emit nothing), so — like the telemetry exporters and
//! `bench/record.rs` — the disk tier writes its JSON by hand with a
//! fixed field order, making entry files byte-deterministic for
//! identical plans. Floating-point fields (`fraction`) are stored as
//! IEEE-754 bit patterns in hex so they round-trip exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::{PlanSeed, SubSeed};
use adapcc_synth::strategy::{Flow, Strategy, SubCollective};
use adapcc_topo::logical::{EdgeId, LogicalNode};

use crate::cache::CachedPlan;
use crate::fingerprint::Fingerprint;

/// Serializes one cache entry (fingerprint + plan) to a JSON string.
pub fn encode_entry(fp: &Fingerprint, plan: &CachedPlan) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"v\":1,\"shape\":\"{:016x}\",\"profile\":\"{:016x}\",\"strategy\":",
        fp.shape, fp.profile
    );
    encode_strategy(&mut s, &plan.strategy);
    s.push_str(",\"seed\":");
    encode_seed(&mut s, &plan.seed);
    s.push('}');
    s
}

/// Parses a cache entry; `None` on any malformed or unknown content.
pub fn decode_entry(text: &str) -> Option<(Fingerprint, CachedPlan)> {
    let v = parse(text)?;
    let obj = v.obj()?;
    if *field(obj, "v")? != Val::Int(1) {
        return None;
    }
    let fp = Fingerprint {
        shape: u64::from_str_radix(field(obj, "shape")?.str()?, 16).ok()?,
        profile: u64::from_str_radix(field(obj, "profile")?.str()?, 16).ok()?,
    };
    let strategy = decode_strategy(field(obj, "strategy")?)?;
    let seed = decode_seed(field(obj, "seed")?)?;
    Some((fp, CachedPlan { strategy, seed }))
}

// ---- encoding ----

fn encode_strategy(s: &mut String, strategy: &Strategy) {
    let _ = write!(
        s,
        "{{\"primitive\":\"{}\",\"subs\":[",
        primitive_tag(strategy.primitive)
    );
    for (i, sub) in strategy.subs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"fraction\":\"{:016x}\",\"chunk\":{},\"root\":",
            sub.fraction.to_bits(),
            sub.chunk.as_u64()
        );
        match sub.root {
            Some(r) => {
                let _ = write!(s, "{}", r.0);
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"flows\":[");
        for (j, f) in sub.flows.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"src\":\"{}\",\"dst\":\"{}\",\"route\":[",
                node(f.src),
                node(f.dst)
            );
            for (k, e) in f.route.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{}", e.0);
            }
            s.push_str("]}");
        }
        s.push_str("],\"aggregate\":[");
        for (j, (n, agg)) in sub.aggregate.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "[\"{}\",{}]", node(*n), agg);
        }
        s.push_str("]}");
    }
    s.push_str("]}");
}

fn encode_seed(s: &mut String, seed: &PlanSeed) {
    s.push_str("{\"subs\":[");
    for (i, sub) in seed.subs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"leader\":");
        pairs(s, sub.leader.iter().map(|(k, v)| (k.0 as u64, v.0 as u64)));
        s.push_str(",\"parent\":");
        pairs(s, sub.parent.iter().map(|(k, v)| (k.0 as u64, v.0 as u64)));
        let _ = write!(
            s,
            ",\"root\":{},\"root_inst\":{},\"via_hub\":",
            sub.root.0, sub.root_inst.0
        );
        pairs(s, sub.via_hub.iter().map(|(k, v)| (k.0 as u64, v.0 as u64)));
        let _ = write!(
            s,
            ",\"chunk\":{},\"fraction\":\"{:016x}\"}}",
            sub.chunk.as_u64(),
            sub.fraction.to_bits()
        );
    }
    s.push_str("]}");
}

fn pairs(s: &mut String, it: impl Iterator<Item = (u64, u64)>) {
    s.push('[');
    for (i, (a, b)) in it.enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{a},{b}]");
    }
    s.push(']');
}

fn node(n: LogicalNode) -> String {
    match n {
        LogicalNode::Gpu(r) => format!("g{}", r.0),
        LogicalNode::Nic(i) => format!("n{}", i.0),
    }
}

fn primitive_tag(p: Primitive) -> &'static str {
    match p {
        Primitive::Reduce => "reduce",
        Primitive::Broadcast => "broadcast",
        Primitive::AllReduce => "allreduce",
        Primitive::AllGather => "allgather",
        Primitive::ReduceScatter => "reducescatter",
        Primitive::AllToAll => "alltoall",
    }
}

// ---- decoding ----

fn decode_strategy(v: &Val) -> Option<Strategy> {
    let obj = v.obj()?;
    let primitive = parse_primitive(field(obj, "primitive")?.str()?)?;
    let mut subs = Vec::new();
    for sv in field(obj, "subs")?.arr()? {
        let so = sv.obj()?;
        let fraction = f64::from_bits(u64::from_str_radix(field(so, "fraction")?.str()?, 16).ok()?);
        let chunk = ByteSize::from_bytes(field(so, "chunk")?.int()?);
        let root = match field(so, "root")? {
            Val::Null => None,
            Val::Int(r) => Some(Rank(usize::try_from(*r).ok()?)),
            _ => return None,
        };
        let mut flows = Vec::new();
        for fv in field(so, "flows")?.arr()? {
            let fo = fv.obj()?;
            let route = field(fo, "route")?
                .arr()?
                .iter()
                .map(|e| Some(EdgeId(usize::try_from(e.int()?).ok()?)))
                .collect::<Option<Vec<_>>>()?;
            flows.push(Flow {
                src: parse_node(field(fo, "src")?.str()?)?,
                dst: parse_node(field(fo, "dst")?.str()?)?,
                route,
            });
        }
        let mut aggregate = BTreeMap::new();
        for av in field(so, "aggregate")?.arr()? {
            let pair = av.arr()?;
            if pair.len() != 2 {
                return None;
            }
            aggregate.insert(parse_node(pair[0].str()?)?, pair[1].bool()?);
        }
        subs.push(SubCollective {
            fraction,
            chunk,
            root,
            flows,
            aggregate,
        });
    }
    Some(Strategy { primitive, subs })
}

fn decode_seed(v: &Val) -> Option<PlanSeed> {
    let obj = v.obj()?;
    let mut subs = Vec::new();
    for sv in field(obj, "subs")?.arr()? {
        let so = sv.obj()?;
        subs.push(SubSeed {
            leader: map_pairs(field(so, "leader")?, |k, v| (InstanceId(k), Rank(v)))?,
            parent: map_pairs(field(so, "parent")?, |k, v| (InstanceId(k), InstanceId(v)))?,
            root: Rank(usize::try_from(field(so, "root")?.int()?).ok()?),
            root_inst: InstanceId(usize::try_from(field(so, "root_inst")?.int()?).ok()?),
            via_hub: map_pairs(field(so, "via_hub")?, |k, v| (Rank(k), Rank(v)))?,
            chunk: ByteSize::from_bytes(field(so, "chunk")?.int()?),
            fraction: f64::from_bits(u64::from_str_radix(field(so, "fraction")?.str()?, 16).ok()?),
        });
    }
    Some(PlanSeed { subs })
}

fn map_pairs<K: Ord, V>(v: &Val, mk: impl Fn(usize, usize) -> (K, V)) -> Option<BTreeMap<K, V>> {
    let mut out = BTreeMap::new();
    for pv in v.arr()? {
        let pair = pv.arr()?;
        if pair.len() != 2 {
            return None;
        }
        let (k, val) = mk(
            usize::try_from(pair[0].int()?).ok()?,
            usize::try_from(pair[1].int()?).ok()?,
        );
        out.insert(k, val);
    }
    Some(out)
}

fn parse_node(s: &str) -> Option<LogicalNode> {
    let (tag, id) = s.split_at(1);
    let id: usize = id.parse().ok()?;
    match tag {
        "g" => Some(LogicalNode::Gpu(Rank(id))),
        "n" => Some(LogicalNode::Nic(InstanceId(id))),
        _ => None,
    }
}

fn parse_primitive(s: &str) -> Option<Primitive> {
    Some(match s {
        "reduce" => Primitive::Reduce,
        "broadcast" => Primitive::Broadcast,
        "allreduce" => Primitive::AllReduce,
        "allgather" => Primitive::AllGather,
        "reducescatter" => Primitive::ReduceScatter,
        "alltoall" => Primitive::AllToAll,
        _ => return None,
    })
}

// ---- minimal JSON reader ----
//
// Exactly the subset the encoder emits: objects, arrays,
// escape-free strings, unsigned integers, booleans and null.

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Obj(Vec<(String, Val)>),
    Arr(Vec<Val>),
    Str(String),
    Int(u64),
    Bool(bool),
    Null,
}

impl Val {
    fn obj(&self) -> Option<&[(String, Val)]> {
        match self {
            Val::Obj(v) => Some(v),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    fn int(&self) -> Option<u64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    fn bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn field<'a>(obj: &'a [(String, Val)], name: &str) -> Option<&'a Val> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn parse(text: &str) -> Option<Val> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Val> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Val::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let Val::Str(key) = parse_value(b, pos)? else {
                    return None;
                };
                eat(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Val::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Val::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Val::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *pos += 1;
            let start = *pos;
            while *pos < b.len() && b[*pos] != b'"' {
                if b[*pos] == b'\\' {
                    return None; // the encoder never emits escapes
                }
                *pos += 1;
            }
            if *pos >= b.len() {
                return None;
            }
            let s = std::str::from_utf8(&b[start..*pos]).ok()?.to_string();
            *pos += 1;
            Some(Val::Str(s))
        }
        b'0'..=b'9' => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()?
                .parse()
                .ok()
                .map(Val::Int)
        }
        b't' if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Some(Val::Bool(true))
        }
        b'f' if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Some(Val::Bool(false))
        }
        b'n' if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Some(Val::Null)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Fingerprint, CachedPlan) {
        let fp = Fingerprint {
            shape: 0xdead_beef,
            profile: 0x1234_5678,
        };
        let strategy = Strategy {
            primitive: Primitive::AllReduce,
            subs: vec![SubCollective {
                fraction: 1.0 / 3.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(3)),
                flows: vec![Flow {
                    src: LogicalNode::Gpu(Rank(1)),
                    dst: LogicalNode::Gpu(Rank(3)),
                    route: vec![EdgeId(4), EdgeId(9)],
                }],
                aggregate: [(LogicalNode::Gpu(Rank(3)), true)].into_iter().collect(),
            }],
        };
        let seed = PlanSeed {
            subs: vec![SubSeed {
                leader: [(InstanceId(0), Rank(1))].into_iter().collect(),
                parent: [(InstanceId(0), InstanceId(0))].into_iter().collect(),
                root: Rank(3),
                root_inst: InstanceId(0),
                via_hub: [(Rank(2), Rank(5))].into_iter().collect(),
                chunk: ByteSize::from_mib(1),
                fraction: 1.0 / 3.0,
            }],
        };
        (fp, CachedPlan { strategy, seed })
    }

    #[test]
    fn roundtrips_exactly() {
        let (fp, plan) = sample();
        let text = encode_entry(&fp, &plan);
        let (fp2, plan2) = decode_entry(&text).expect("decodes");
        assert_eq!(fp, fp2);
        assert_eq!(plan, plan2);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (fp, plan) = sample();
        assert_eq!(encode_entry(&fp, &plan), encode_entry(&fp, &plan));
    }

    #[test]
    fn fraction_bits_roundtrip_without_loss() {
        let (fp, mut plan) = sample();
        plan.strategy.subs[0].fraction = 0.1 + 0.2; // famously unrepresentable
        plan.seed.subs[0].fraction = f64::MIN_POSITIVE;
        let (_, plan2) = decode_entry(&encode_entry(&fp, &plan)).unwrap();
        assert_eq!(
            plan.strategy.subs[0].fraction.to_bits(),
            plan2.strategy.subs[0].fraction.to_bits()
        );
        assert_eq!(
            plan.seed.subs[0].fraction.to_bits(),
            plan2.seed.subs[0].fraction.to_bits()
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(decode_entry("").is_none());
        assert!(decode_entry("{").is_none());
        assert!(decode_entry("[]").is_none());
        let (fp, plan) = sample();
        let text = encode_entry(&fp, &plan);
        assert!(decode_entry(&text[..text.len() - 1]).is_none());
        assert!(decode_entry(&format!("{text} trailing")).is_none());
    }

    #[test]
    fn rejects_unknown_version() {
        let (fp, plan) = sample();
        let text = encode_entry(&fp, &plan).replacen("\"v\":1", "\"v\":2", 1);
        assert!(decode_entry(&text).is_none());
    }
}
