//! # adapcc-plancache
//!
//! Content-addressed strategy cache for the AdapCC adaptation loop.
//!
//! The paper's control plane re-synthesizes strategies on every profile
//! drift past `resynth_threshold` and on every worker exclusion
//! (Sec. IV-B/IV-D, Figs. 18(a)/19(c)); each solve anneals from
//! scratch even when the fleet returns to a previously-seen state.
//! This crate removes the redundant work with a two-tier store keyed by
//! a canonical [`Fingerprint`] of the synthesis problem:
//!
//! - **Exact hit** — the fingerprint matches: the cached [`Strategy`]
//!   is served verbatim and the solver is never invoked.
//! - **Warm start** — the structural half matches but the α–β profile
//!   drifted past its quantization bucket: the cached [`PlanSeed`]
//!   seeds `Synthesizer::synthesize_warm`, which re-runs only the
//!   analytic chunk sweep, fraction balancing and a short polish
//!   anneal, at ~1/8 of the modeled cold-solve latency.
//! - **Miss** — solve cold and insert the result.
//!
//! The in-memory tier is a deterministic LRU (monotonic stamps, no
//! wall clock); the optional disk tier persists entries as
//! byte-deterministic hand-rolled JSON (`<fingerprint>.json`) so a
//! later process — or the second `adapcc_sim --plan-cache <dir>` run
//! in CI — starts warm. Effectiveness counters export to telemetry as
//! `plancache.*`.
//!
//! [`Strategy`]: adapcc_synth::strategy::Strategy
//! [`PlanSeed`]: adapcc_synth::solver::PlanSeed

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod fingerprint;
pub mod json;

pub use cache::{CachedPlan, Lookup, PlanCache, PlanCacheConfig, PlanCacheStats};
pub use fingerprint::{fingerprint, Fingerprint, FingerprintInputs};
