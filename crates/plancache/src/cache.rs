//! The two-tier plan store: deterministic in-memory LRU plus an
//! optional on-disk JSON tier.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use adapcc_simnet::time::SimDuration;
use adapcc_synth::solver::PlanSeed;
use adapcc_synth::strategy::Strategy;
use adapcc_telemetry::Telemetry;

use crate::fingerprint::Fingerprint;
use crate::json;

/// Cache behavior knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCacheConfig {
    /// Master switch; a disabled cache always misses and never stores.
    pub enabled: bool,
    /// In-memory entry cap; least-recently-used entries evict beyond it.
    pub capacity: usize,
    /// Directory for the persistent tier; `None` keeps the cache
    /// memory-only.
    pub disk_dir: Option<PathBuf>,
    /// Whether near misses (same shape, drifted profile) may be served
    /// as warm-start seeds.
    pub warm_start: bool,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            enabled: true,
            capacity: 64,
            disk_dir: None,
            warm_start: true,
        }
    }
}

impl PlanCacheConfig {
    /// A cache that never hits — the cold baseline.
    pub fn disabled() -> Self {
        PlanCacheConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// A default cache persisted under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        PlanCacheConfig {
            disk_dir: Some(dir.into()),
            ..Default::default()
        }
    }
}

/// A cached synthesis product: the strategy served on exact hits and
/// the plan blueprint that seeds warm starts.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The synthesized strategy.
    pub strategy: Strategy,
    /// The solver blueprint it was realized from.
    pub seed: PlanSeed,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Fingerprint matched exactly: serve the strategy, skip the solver.
    Hit(CachedPlan),
    /// Shape matched but the profile drifted: warm-start the solver
    /// from the seed.
    Warm(CachedPlan),
    /// Nothing usable: solve cold.
    Miss,
}

/// Monotonic counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanCacheStats {
    /// Exact fingerprint hits (solver skipped entirely).
    pub hits: u64,
    /// Cold solves (no usable entry).
    pub misses: u64,
    /// Near misses served as warm-start seeds.
    pub warm_starts: u64,
    /// Modeled solver latency avoided by hits and warm starts.
    pub saved: SimDuration,
    /// Disk-tier reads or writes that failed (cache stays best-effort).
    pub io_errors: u64,
}

/// Content-addressed strategy store keyed by [`Fingerprint`].
///
/// Exact hits return the stored [`Strategy`] verbatim; near misses
/// (identical shape hash, drifted profile hash) return the stored plan
/// seed for warm-started re-synthesis. Eviction is least-recently-used
/// over a deterministic monotonic stamp, so same-seed runs hit and
/// evict identically.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    config: PlanCacheConfig,
    entries: HashMap<u128, Entry>,
    /// Latest fingerprint seen per shape hash — the warm-start index.
    by_shape: HashMap<u64, Fingerprint>,
    tick: u64,
    stats: PlanCacheStats,
}

#[derive(Debug, Clone)]
struct Entry {
    fp: Fingerprint,
    plan: CachedPlan,
    stamp: u64,
}

impl PlanCache {
    /// A cache with the given configuration.
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCache {
            config,
            ..Default::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlanCacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes both tiers and records the outcome in [`Self::stats`]
    /// (`Hit` → `hits`, `Warm` → `warm_starts`, `Miss` → `misses`).
    pub fn lookup(&mut self, fp: &Fingerprint) -> Lookup {
        if !self.config.enabled {
            return Lookup::Miss;
        }
        if let Some(e) = self.entries.get_mut(&fp.key()) {
            self.tick += 1;
            e.stamp = self.tick;
            self.stats.hits += 1;
            return Lookup::Hit(e.plan.clone());
        }
        if let Some(plan) = self.disk_load(fp) {
            self.store(*fp, plan.clone());
            self.stats.hits += 1;
            return Lookup::Hit(plan);
        }
        if self.config.warm_start {
            if let Some(prev) = self.by_shape.get(&fp.shape).copied() {
                if let Some(e) = self.entries.get_mut(&prev.key()) {
                    self.tick += 1;
                    e.stamp = self.tick;
                    self.stats.warm_starts += 1;
                    return Lookup::Warm(e.plan.clone());
                }
            }
            if let Some((prev, plan)) = self.disk_load_by_shape(fp.shape) {
                self.store(prev, plan.clone());
                self.stats.warm_starts += 1;
                return Lookup::Warm(plan);
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Downgrades the most recent `Warm` outcome to a miss — called
    /// when the solver rejected the seed (structure no longer matches)
    /// and the caller solved cold after all.
    pub fn warm_fell_back(&mut self) {
        self.stats.warm_starts = self.stats.warm_starts.saturating_sub(1);
        self.stats.misses += 1;
    }

    /// Stores a synthesis product under its fingerprint in both tiers.
    pub fn insert(&mut self, fp: Fingerprint, plan: CachedPlan) {
        if !self.config.enabled {
            return;
        }
        self.disk_store(&fp, &plan);
        self.store(fp, plan);
    }

    /// Adds modeled solver latency avoided by a hit or warm start.
    pub fn note_saved(&mut self, d: SimDuration) {
        self.stats.saved += d;
    }

    /// Publishes the counters to a telemetry sink (`plancache.*`).
    pub fn export_counters(&self, telemetry: &Telemetry) {
        telemetry.set_counter("plancache.hits", self.stats.hits as f64);
        telemetry.set_counter("plancache.misses", self.stats.misses as f64);
        telemetry.set_counter("plancache.warm_starts", self.stats.warm_starts as f64);
        telemetry.set_counter("plancache.saved_secs", self.stats.saved.as_secs());
        telemetry.set_counter("plancache.entries", self.entries.len() as f64);
    }

    fn store(&mut self, fp: Fingerprint, plan: CachedPlan) {
        if self.config.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(
            fp.key(),
            Entry {
                fp,
                plan,
                stamp: self.tick,
            },
        );
        self.by_shape.insert(fp.shape, fp);
        while self.entries.len() > self.config.capacity {
            let oldest = self
                .entries
                .values()
                .min_by_key(|e| e.stamp)
                .map(|e| e.fp)
                .expect("non-empty over capacity");
            self.entries.remove(&oldest.key());
            if self.by_shape.get(&oldest.shape) == Some(&oldest) {
                self.by_shape.remove(&oldest.shape);
            }
        }
    }

    fn entry_path(dir: &Path, fp: &Fingerprint) -> PathBuf {
        dir.join(format!("{}.json", fp.hex()))
    }

    fn disk_load(&mut self, fp: &Fingerprint) -> Option<CachedPlan> {
        let dir = self.config.disk_dir.clone()?;
        let path = Self::entry_path(&dir, fp);
        let bytes = std::fs::read(&path).ok()?;
        let Ok(text) = String::from_utf8(bytes) else {
            // The file exists but is not even UTF-8: binary garbage
            // from a torn write. Same treatment as undecodable JSON.
            self.evict_corrupt(&path);
            return None;
        };
        match json::decode_entry(&text) {
            Some((stored_fp, plan)) if stored_fp == *fp => Some(plan),
            _ => {
                // Truncated write, hand-edited file, or a key whose
                // content rotted: drop the entry so the cold re-solve
                // can repopulate it instead of tripping on the same
                // garbage every run.
                self.evict_corrupt(&path);
                None
            }
        }
    }

    /// Removes an undecodable disk entry and counts the I/O error. The
    /// cache stays best-effort: if the delete itself fails the entry
    /// just remains a counted miss.
    fn evict_corrupt(&mut self, path: &Path) {
        self.stats.io_errors += 1;
        let _ = std::fs::remove_file(path);
    }

    /// Scans the disk tier for any entry with the given shape hash
    /// (lexicographically first file for determinism).
    fn disk_load_by_shape(&mut self, shape: u64) -> Option<(Fingerprint, CachedPlan)> {
        let dir = self.config.disk_dir.clone()?;
        let prefix = format!("{shape:016x}-");
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .ok()?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(&prefix) && n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            let path = dir.join(&name);
            let Ok(bytes) = std::fs::read(&path) else {
                self.stats.io_errors += 1;
                continue;
            };
            let Ok(text) = String::from_utf8(bytes) else {
                self.evict_corrupt(&path);
                continue;
            };
            match json::decode_entry(&text) {
                Some((fp, plan)) if fp.shape == shape => return Some((fp, plan)),
                // Undecodable or mislabeled (filename shape prefix that
                // does not match the decoded fingerprint): evict so the
                // scan does not trip on it every warm-start probe.
                _ => self.evict_corrupt(&path),
            }
        }
        None
    }

    fn disk_store(&mut self, fp: &Fingerprint, plan: &CachedPlan) {
        let Some(dir) = self.config.disk_dir.clone() else {
            return;
        };
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(Self::entry_path(&dir, fp), json::encode_entry(fp, plan))
        };
        if write().is_err() {
            self.stats.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_synth::primitive::Primitive;

    fn fp(shape: u64, profile: u64) -> Fingerprint {
        Fingerprint { shape, profile }
    }

    fn plan(tag: u64) -> CachedPlan {
        // A minimal distinguishable payload; structure is irrelevant to
        // store mechanics.
        CachedPlan {
            strategy: Strategy {
                primitive: Primitive::AllToAll,
                subs: (0..tag as usize % 3 + 1)
                    .map(|_| adapcc_synth::strategy::SubCollective {
                        fraction: 1.0,
                        chunk: adapcc_simnet::units::ByteSize::from_kib(tag.max(1)),
                        root: None,
                        flows: vec![],
                        aggregate: Default::default(),
                    })
                    .collect(),
            },
            seed: PlanSeed::default(),
        }
    }

    #[test]
    fn exact_hit_after_insert() {
        let mut c = PlanCache::new(PlanCacheConfig::default());
        let f = fp(1, 2);
        assert_eq!(c.lookup(&f), Lookup::Miss);
        c.insert(f, plan(7));
        assert_eq!(c.lookup(&f), Lookup::Hit(plan(7)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.warm_starts), (1, 1, 0));
    }

    #[test]
    fn same_shape_different_profile_is_warm() {
        let mut c = PlanCache::new(PlanCacheConfig::default());
        c.insert(fp(1, 2), plan(7));
        assert_eq!(c.lookup(&fp(1, 3)), Lookup::Warm(plan(7)));
        assert_eq!(c.stats().warm_starts, 1);
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let mut c = PlanCache::new(PlanCacheConfig {
            warm_start: false,
            ..Default::default()
        });
        c.insert(fp(1, 2), plan(7));
        assert_eq!(c.lookup(&fp(1, 3)), Lookup::Miss);
    }

    #[test]
    fn disabled_cache_never_hits_or_stores() {
        let mut c = PlanCache::new(PlanCacheConfig::disabled());
        let f = fp(1, 2);
        c.insert(f, plan(7));
        assert_eq!(c.lookup(&f), Lookup::Miss);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 0, "disabled cache keeps quiet counters");
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c = PlanCache::new(PlanCacheConfig {
            capacity: 2,
            ..Default::default()
        });
        c.insert(fp(1, 1), plan(1));
        c.insert(fp(2, 2), plan(2));
        assert!(matches!(c.lookup(&fp(1, 1)), Lookup::Hit(_))); // touch 1
        c.insert(fp(3, 3), plan(3)); // evicts 2
        assert!(matches!(c.lookup(&fp(1, 1)), Lookup::Hit(_)));
        assert!(matches!(c.lookup(&fp(3, 3)), Lookup::Hit(_)));
        assert_eq!(c.lookup(&fp(2, 2)), Lookup::Miss);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_cleans_the_shape_index() {
        let mut c = PlanCache::new(PlanCacheConfig {
            capacity: 1,
            ..Default::default()
        });
        c.insert(fp(1, 1), plan(1));
        c.insert(fp(2, 2), plan(2)); // evicts shape 1
        assert_eq!(
            c.lookup(&fp(1, 9)),
            Lookup::Miss,
            "stale shape index must not warm-hit"
        );
    }

    #[test]
    fn warm_fallback_recounts_as_miss() {
        let mut c = PlanCache::new(PlanCacheConfig::default());
        c.insert(fp(1, 2), plan(7));
        let _ = c.lookup(&fp(1, 3));
        c.warm_fell_back();
        let s = c.stats();
        assert_eq!((s.warm_starts, s.misses), (0, 1));
    }

    #[test]
    fn disk_tier_roundtrips_across_instances() {
        let dir = std::env::temp_dir().join("adapcc_plancache_disk_test");
        let _ = std::fs::remove_dir_all(&dir);
        let f = fp(0xabc, 0xdef);
        {
            let mut c = PlanCache::new(PlanCacheConfig::on_disk(&dir));
            c.insert(f, plan(5));
        }
        let mut c2 = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c2.lookup(&f), Lookup::Hit(plan(5)));
        // Same shape, drifted profile: served from disk as a warm seed.
        let mut c3 = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c3.lookup(&fp(0xabc, 0x123)), Lookup::Warm(plan(5)));
        assert_eq!(c2.stats().io_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_counted_miss() {
        let dir = std::env::temp_dir().join("adapcc_plancache_corrupt_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = fp(0x11, 0x22);
        std::fs::write(dir.join(format!("{}.json", f.hex())), "not json").unwrap();
        let mut c = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c.lookup(&f), Lookup::Miss);
        assert!(c.stats().io_errors > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_deleted_and_resolved() {
        let dir = std::env::temp_dir().join("adapcc_plancache_corrupt_delete_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let f = fp(0x31, 0x42);
        let path = dir.join(format!("{}.json", f.hex()));
        // Garbage bytes: a truncated/garbled write from a crashed run.
        std::fs::write(&path, b"{\"fingerpr\x00\xff garbage").unwrap();
        let mut c = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c.lookup(&f), Lookup::Miss);
        assert!(!path.exists(), "corrupt entry must be evicted from disk");
        // The cold re-solve repopulates a clean entry that a fresh
        // cache instance then serves from disk without error.
        c.insert(f, plan(9));
        let mut c2 = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c2.lookup(&f), Lookup::Hit(plan(9)));
        assert_eq!(c2.stats().io_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shape_sibling_is_deleted_during_warm_probe() {
        let dir = std::env::temp_dir().join("adapcc_plancache_corrupt_shape_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A shape-prefixed sibling too short to decode: the warm-start
        // scan must skip it, count the error, and remove it.
        let probe = fp(0x77, 0x01);
        let bad = dir.join(format!("{:016x}-{:016x}.json", probe.shape, 0xdead_u64));
        std::fs::write(&bad, "x").unwrap();
        let mut c = PlanCache::new(PlanCacheConfig::on_disk(&dir));
        assert_eq!(c.lookup(&probe), Lookup::Miss);
        assert!(c.stats().io_errors > 0);
        assert!(!bad.exists(), "corrupt sibling must be evicted from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
