//! Canonical fingerprints of synthesis problem instances.
//!
//! A fingerprint identifies everything the synthesizer's answer depends
//! on, split into two halves so the cache can distinguish an *exact*
//! hit from a *warm-startable* near miss:
//!
//! - the **shape** half hashes the structural inputs — logical topology
//!   (nodes and edges in index order), participant and relay sets,
//!   primitive, parallelism `M`, tensor-size class (`⌊log2 bytes⌋`) and
//!   requested root. Worker exclusion removes ranks from the
//!   participant set, so it changes the shape hash and structurally
//!   invalidates every pre-exclusion plan.
//! - the **profile** half hashes the α–β link costs quantized into
//!   relative buckets sized off the session's `resynth_threshold`: two
//!   profiles whose every measurement lands in the same bucket share a
//!   hash, so profiling noise below the re-synthesis trigger does not
//!   defeat the cache, while drift past it yields a near miss that
//!   warm-starts the annealer instead of solving cold.

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_topo::logical::{EdgeId, EdgeKind, LogicalNode, LogicalTopology};

/// Two-part content fingerprint of a synthesis request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Structural half: topology, participants, relays, primitive,
    /// parallelism, tensor-size class, root.
    pub shape: u64,
    /// Measurement half: quantized α–β profile buckets.
    pub profile: u64,
}

impl Fingerprint {
    /// The combined 128-bit cache key.
    pub fn key(&self) -> u128 {
        ((self.shape as u128) << 64) | self.profile as u128
    }

    /// Fixed-width lowercase hex rendering (shape then profile), used
    /// as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}-{:016x}", self.shape, self.profile)
    }
}

/// The inputs a fingerprint is computed over.
#[derive(Debug, Clone)]
pub struct FingerprintInputs<'a> {
    /// Logical topology the strategy routes over.
    pub topo: &'a LogicalTopology,
    /// Profiled α–β link costs.
    pub profile: &'a LinkProfile,
    /// Workers contributing data, in rank order.
    pub participants: &'a [Rank],
    /// Non-ready workers available as relays, in rank order.
    pub relays: &'a [Rank],
    /// The primitive.
    pub primitive: Primitive,
    /// Number of parallel sub-collectives (`M`).
    pub parallelism: usize,
    /// Per-rank tensor size (folded to its `⌊log2⌋` class).
    pub tensor: ByteSize,
    /// Requested root, if any.
    pub root: Option<Rank>,
    /// Relative α–β bucket width; sessions pass `resynth_threshold`.
    pub quantization: f64,
    /// Whether the synthesizer will decompose this request into
    /// intra-/inter-server tiers (sessions pass the resolved
    /// `Hierarchical::enabled_for` decision, not the raw mode). Tiered
    /// and flat solves of the same problem produce different
    /// strategies, so they must not share a cache entry; hashed into
    /// the shape half only when set, keeping every flat fingerprint
    /// byte-stable across cache versions.
    pub hierarchical: bool,
    /// Group-scope concurrency-set component: a stable hash of the ids
    /// of the process groups declared to run concurrently with this
    /// solve, or `0` for a solo (unscoped or undeclared) solve.
    /// Strategies co-scheduled against different peer sets are
    /// different answers to different problems, so they must not share
    /// a cache entry; hashed into the shape half only when nonzero,
    /// keeping every solo fingerprint byte-stable across cache
    /// versions.
    pub concurrency: u64,
}

/// Computes the canonical fingerprint of a synthesis problem.
pub fn fingerprint(inp: &FingerprintInputs<'_>) -> Fingerprint {
    Fingerprint {
        shape: shape_hash(inp),
        profile: profile_hash(inp),
    }
}

/// The tensor-size class: `⌊log2 bytes⌋` (0 for empty tensors).
/// Strategies are structural — routing trees do not change within a
/// power-of-two size band, only the swept chunk size would — so the
/// cache deliberately keys on the class, not the exact byte count.
pub fn size_class(tensor: ByteSize) -> u32 {
    let b = tensor.as_u64();
    if b == 0 {
        0
    } else {
        63 - b.leading_zeros()
    }
}

/// Quantizes a positive measurement into a relative bucket of width
/// `quantization` (e.g. 0.15 buckets values that differ by <15%
/// together). Non-positive and non-finite values share a sentinel.
pub fn bucket(value: f64, quantization: f64) -> i64 {
    if !value.is_finite() || value <= 0.0 {
        return i64::MIN;
    }
    let width = (1.0 + quantization.max(1e-6)).ln();
    (value.ln() / width).floor() as i64
}

fn shape_hash(inp: &FingerprintInputs<'_>) -> u64 {
    let mut h = Fnv::new();
    h.str("adapcc-plan-v1/shape");
    h.u64(primitive_tag(inp.primitive));
    h.u64(inp.parallelism as u64);
    h.u64(size_class(inp.tensor) as u64);
    if inp.hierarchical {
        h.str("hierarchical");
    }
    if inp.concurrency != 0 {
        h.str("concurrency");
        h.u64(inp.concurrency);
    }
    match inp.root {
        Some(r) => {
            h.u64(1);
            h.u64(r.0 as u64);
        }
        None => h.u64(0),
    }
    h.u64(inp.participants.len() as u64);
    for r in inp.participants {
        h.u64(r.0 as u64);
    }
    h.u64(inp.relays.len() as u64);
    for r in inp.relays {
        h.u64(r.0 as u64);
    }
    h.u64(inp.topo.nodes().len() as u64);
    for n in inp.topo.nodes() {
        hash_node(&mut h, *n);
    }
    h.u64(inp.topo.edges().len() as u64);
    for e in inp.topo.edges() {
        hash_node(&mut h, e.from);
        hash_node(&mut h, e.to);
        h.u64(kind_tag(e.kind));
    }
    h.finish()
}

fn profile_hash(inp: &FingerprintInputs<'_>) -> u64 {
    let mut h = Fnv::new();
    h.str("adapcc-plan-v1/profile");
    for id in 0..inp.topo.edge_count() {
        if let Some(ab) = inp.profile.get(EdgeId(id)) {
            h.u64(id as u64);
            h.i64(bucket(ab.alpha_secs, inp.quantization));
            h.i64(bucket(ab.beta_secs_per_byte, inp.quantization));
            h.i64(bucket(ab.port_beta_secs_per_byte, inp.quantization));
        }
    }
    for inst in inp.topo.nic_nodes() {
        if let Some(bw) = inp.profile.nic_ingress(inst) {
            h.u64(inst.0 as u64);
            h.i64(bucket(bw.as_bytes_per_sec(), inp.quantization));
        }
    }
    h.finish()
}

fn hash_node(h: &mut Fnv, n: LogicalNode) {
    match n {
        LogicalNode::Gpu(r) => {
            h.u64(0);
            h.u64(r.0 as u64);
        }
        LogicalNode::Nic(i) => {
            h.u64(1);
            h.u64(i.0 as u64);
        }
    }
}

fn primitive_tag(p: Primitive) -> u64 {
    match p {
        Primitive::Reduce => 0,
        Primitive::Broadcast => 1,
        Primitive::AllReduce => 2,
        Primitive::AllGather => 3,
        Primitive::ReduceScatter => 4,
        Primitive::AllToAll => 5,
    }
}

fn kind_tag(k: EdgeKind) -> u64 {
    match k {
        EdgeKind::NvLink => 0,
        EdgeKind::PciePeer => 1,
        EdgeKind::HostLink => 2,
        EdgeKind::Network => 3,
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, deterministic across runs
/// and platforms (unlike `std::hash::DefaultHasher`, which documents
/// no cross-version stability — on-disk cache keys must never rot).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        self.push(s.as_bytes());
        self.push(&[0xff]);
    }

    fn u64(&mut self, v: u64) {
        self.push(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn setup(c: &Cluster) -> (LogicalTopology, LinkProfile) {
        let topo = Detector::new(c, 1).run().logical_topology(c);
        let profile = Profiler::new(c, &topo, 1).without_noise().run().links;
        (topo, profile)
    }

    fn inputs<'a>(
        topo: &'a LogicalTopology,
        profile: &'a LinkProfile,
        participants: &'a [Rank],
    ) -> FingerprintInputs<'a> {
        FingerprintInputs {
            topo,
            profile,
            participants,
            relays: &[],
            primitive: Primitive::AllReduce,
            parallelism: 4,
            tensor: ByteSize::from_mib(64),
            root: None,
            quantization: 0.15,
            hierarchical: false,
            concurrency: 0,
        }
    }

    #[test]
    fn identical_inputs_hash_identically() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let a = fingerprint(&inputs(&topo, &profile, &ranks));
        let b = fingerprint(&inputs(&topo, &profile, &ranks));
        assert_eq!(a, b);
    }

    #[test]
    fn participant_change_flips_shape() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let all: Vec<Rank> = (0..8).map(Rank).collect();
        let minus_one: Vec<Rank> = (0..7).map(Rank).collect();
        let a = fingerprint(&inputs(&topo, &profile, &all));
        let b = fingerprint(&inputs(&topo, &profile, &minus_one));
        assert_ne!(a.shape, b.shape);
    }

    #[test]
    fn size_within_class_shares_shape_but_class_step_differs() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let mut i = inputs(&topo, &profile, &ranks);
        let base = fingerprint(&i);
        i.tensor = ByteSize::from_mib(64) + ByteSize::from_kib(512);
        assert_eq!(
            fingerprint(&i),
            base,
            "same log2 class must share the fingerprint"
        );
        i.tensor = ByteSize::from_mib(128);
        assert_ne!(fingerprint(&i).shape, base.shape);
    }

    #[test]
    fn profile_drift_past_quantization_flips_only_profile_half() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, mut profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let healthy = profile.clone();
        let a = fingerprint(&inputs(&topo, &healthy, &ranks));
        // Halve one profiled edge's bandwidth (double its beta): a >15%
        // drift lands in a different bucket.
        let id = (0..topo.edge_count())
            .map(EdgeId)
            .find(|e| profile.get(*e).is_some())
            .expect("a profiled edge");
        let mut ab = profile.get(id).unwrap();
        ab.beta_secs_per_byte *= 2.0;
        profile.insert(id, ab);
        let b = fingerprint(&inputs(&topo, &profile, &ranks));
        assert_eq!(a.shape, b.shape, "structure unchanged");
        assert_ne!(
            a.profile, b.profile,
            "measurement drift must flip the profile half"
        );
    }

    #[test]
    fn sub_threshold_noise_shares_a_bucket() {
        // Bucket width 15%: a 1% wiggle almost always stays put; this
        // particular value is chosen away from a bucket edge.
        assert_eq!(bucket(1.00, 0.15), bucket(1.01, 0.15));
        assert_ne!(bucket(1.0, 0.15), bucket(2.0, 0.15));
        assert_eq!(bucket(-1.0, 0.15), i64::MIN);
        assert_eq!(bucket(0.0, 0.15), i64::MIN);
    }

    #[test]
    fn hierarchical_tier_flips_only_the_shape_half() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let mut i = inputs(&topo, &profile, &ranks);
        let flat = fingerprint(&i);
        i.hierarchical = true;
        let tiered = fingerprint(&i);
        assert_ne!(
            flat.shape, tiered.shape,
            "tiered and flat solves must not share a cache entry"
        );
        assert_eq!(flat.profile, tiered.profile, "measurements unchanged");
    }

    #[test]
    fn concurrency_set_flips_only_the_shape_half() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let ranks: Vec<Rank> = (0..8).map(Rank).collect();
        let mut i = inputs(&topo, &profile, &ranks);
        let solo = fingerprint(&i);
        i.concurrency = 0xDEAD_BEEF;
        let coscheduled = fingerprint(&i);
        assert_ne!(
            solo.shape, coscheduled.shape,
            "co-scheduled and solo solves must not share a cache entry"
        );
        assert_eq!(solo.profile, coscheduled.profile, "measurements unchanged");
        i.concurrency = 0xF00D;
        assert_ne!(
            fingerprint(&i).shape,
            coscheduled.shape,
            "different concurrency sets are different problems"
        );
    }

    #[test]
    fn size_class_is_log2_floor() {
        assert_eq!(size_class(ByteSize::from_bytes(0)), 0);
        assert_eq!(size_class(ByteSize::from_bytes(1)), 0);
        assert_eq!(size_class(ByteSize::from_bytes(1024)), 10);
        assert_eq!(size_class(ByteSize::from_bytes(1025)), 10);
        assert_eq!(size_class(ByteSize::from_bytes(2048)), 11);
    }
}
