//! Seeded fault injection for the simulated fabric.
//!
//! A [`FaultSchedule`] is a list of timed [`Fault`] events — worker
//! crashes and restarts, NIC failures and repairs, transient link
//! flaps, flap bursts, bandwidth degradations and probe losses —
//! expressed in *absolute session time*. Arming a schedule against a
//! [`NetSim`] translates each event into engine [`FaultAction`]s on
//! the simulation timeline: crashes and NIC failures permanently fail
//! every physical link adjacent to the dead component (in-flight flows
//! abort), restarts and repairs recover those links, flaps take links
//! down and bring them back, degradations scale capacity for an
//! interval.
//!
//! Because schedules use absolute times while each collective runs in
//! its own simulator starting at `t = 0`, [`FaultSchedule::arm`] takes
//! a time *offset*: events that already elapsed are applied as current
//! state (a flap that healed is skipped entirely; a crash in the past
//! is a dead worker now), future events are scheduled relative to the
//! offset. This is what lets the executor retry a collective after a
//! transient fault and observe a healed fabric.
//!
//! Schedules are either hand-built ([`FaultSchedule::with`]) or drawn
//! from a seed ([`FaultSchedule::random`]) for chaos testing; the same
//! seed always yields the same schedule.

use std::fmt;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::cluster::{Cluster, InstanceId, LinkId, Rank};
use crate::engine::{FaultAction, NetSim};
use crate::rng::{child_seed, seeded_rng};
use crate::time::{SimDuration, SimTime};

/// One timed fault event, in absolute session time.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The worker process on `rank` dies at `at`: every physical link
    /// adjacent to its GPU fails permanently.
    WorkerCrash {
        /// The dying worker.
        rank: Rank,
        /// Crash instant.
        at: SimTime,
    },
    /// The worker process on `rank` is restarted by the scheduler at
    /// `at`: every physical link a prior [`Fault::WorkerCrash`] took
    /// down recovers. A restart with no preceding crash is a no-op.
    WorkerRestart {
        /// The returning worker.
        rank: Rank,
        /// Restart instant.
        at: SimTime,
    },
    /// The NIC of `instance` dies at `at`: its network ports and its
    /// PCIe attachment fail permanently, cutting the instance off the
    /// fabric.
    NicFail {
        /// The instance losing its NIC.
        instance: InstanceId,
        /// Failure instant.
        at: SimTime,
    },
    /// The NIC of `instance` is replaced at `at`: the links a prior
    /// [`Fault::NicFail`] took down recover and the instance rejoins
    /// the fabric.
    NicRecover {
        /// The instance regaining its NIC.
        instance: InstanceId,
        /// Repair instant.
        at: SimTime,
    },
    /// A transient link flap: down at `from`, back up at `until`.
    /// Flows crossing the link stall and then resume.
    LinkDown {
        /// The flapping link.
        link: LinkId,
        /// Outage start.
        from: SimTime,
        /// Outage end (healed from here on).
        until: SimTime,
    },
    /// A repeated flap: `count` outages of length `down` starting at
    /// `from`, one every `period` (`down < period`, so the link is up
    /// between outages). The signature fault of a marginal cable — one
    /// retry never outlives the whole burst.
    FlapBurst {
        /// The flapping link.
        link: LinkId,
        /// Start of the first outage.
        from: SimTime,
        /// Length of each outage.
        down: SimDuration,
        /// Spacing between consecutive outage starts.
        period: SimDuration,
        /// Number of outages.
        count: u32,
    },
    /// The link runs at `factor` of nominal capacity during
    /// `[from, until)`, then recovers.
    LinkDegrade {
        /// The degraded link.
        link: LinkId,
        /// Capacity multiplier during the interval (0 < factor ≤ 1).
        factor: f64,
        /// Degradation start.
        from: SimTime,
        /// Degradation end.
        until: SimTime,
    },
    /// The next `count` profiling probes whose path crosses `link` are
    /// lost and must be retried (measurement layer only; the transport
    /// is unaffected).
    ProbeLoss {
        /// The lossy link.
        link: LinkId,
        /// Number of consecutive probe losses.
        count: u32,
    },
}

impl Fault {
    /// True for faults that permanently remove capacity (worker crash,
    /// NIC failure); false for transient flaps, degradations, probe
    /// losses and recovery events. A permanent fault only heals if the
    /// schedule also carries the matching recovery event.
    pub fn is_permanent(&self) -> bool {
        matches!(self, Fault::WorkerCrash { .. } | Fault::NicFail { .. })
    }

    /// True for events that restore capacity (worker restart, NIC
    /// repair) rather than remove it.
    pub fn is_recovery(&self) -> bool {
        matches!(self, Fault::WorkerRestart { .. } | Fault::NicRecover { .. })
    }

    /// When the fault first takes effect, if it has a time at all
    /// (probe losses are positional, not timed).
    pub fn start(&self) -> Option<SimTime> {
        match *self {
            Fault::WorkerCrash { at, .. }
            | Fault::WorkerRestart { at, .. }
            | Fault::NicFail { at, .. }
            | Fault::NicRecover { at, .. } => Some(at),
            Fault::LinkDown { from, .. }
            | Fault::FlapBurst { from, .. }
            | Fault::LinkDegrade { from, .. } => Some(from),
            Fault::ProbeLoss { .. } => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::WorkerCrash { rank, at } => write!(f, "{rank} crashes at {at}"),
            Fault::WorkerRestart { rank, at } => write!(f, "{rank} restarts at {at}"),
            Fault::NicFail { instance, at } => {
                write!(f, "NIC of instance {} fails at {at}", instance.0)
            }
            Fault::NicRecover { instance, at } => {
                write!(f, "NIC of instance {} recovers at {at}", instance.0)
            }
            Fault::LinkDown { link, from, until } => {
                write!(f, "link {} down {from} .. {until}", link.0)
            }
            Fault::FlapBurst {
                link,
                from,
                down,
                period,
                count,
            } => {
                write!(
                    f,
                    "link {} flaps {count}x from {from} ({down} down every {period})",
                    link.0
                )
            }
            Fault::LinkDegrade {
                link,
                factor,
                from,
                until,
            } => {
                write!(
                    f,
                    "link {} at {:.0}% capacity {from} .. {until}",
                    link.0,
                    factor * 100.0
                )
            }
            Fault::ProbeLoss { link, count } => {
                write!(f, "{count} probe(s) lost on link {}", link.0)
            }
        }
    }
}

/// An ordered set of timed faults, ready to arm against simulators.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, InstanceId};
/// use adapcc_simnet::engine::{NetSim, SimEvent};
/// use adapcc_simnet::faults::{Fault, FaultSchedule};
/// use adapcc_simnet::time::SimTime;
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let schedule = FaultSchedule::new().with(Fault::NicFail {
///     instance: InstanceId(1),
///     at: SimTime::from_millis(1.0),
/// });
/// let mut sim = NetSim::new(&cluster);
/// schedule.arm(&mut sim, SimTime::ZERO);
/// let path = cluster.net_path(InstanceId(0), InstanceId(1));
/// sim.submit_transfer(&path, ByteSize::from_mib(100), 0);
/// assert!(matches!(sim.step(), Some(SimEvent::TransferAborted { .. })));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a fault in place.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Draws a random schedule of one to three faults within `horizon`,
    /// with correlated churn: roughly half the crashes and NIC failures
    /// are paired with a later restart / repair, the way a scheduler
    /// brings a crashed worker back. The same `(cluster, seed,
    /// horizon)` always yields the same schedule.
    pub fn random(cluster: &Cluster, seed: u64, horizon: SimDuration) -> Self {
        let mut rng = seeded_rng(child_seed(seed, "fault-schedule"));
        let n = rng.gen_range(1..=3usize);
        let mut faults: Vec<Fault> = (0..n)
            .map(|_| random_fault(cluster, &mut rng, horizon))
            .collect();
        for i in 0..n {
            if let Some(recovery) = random_recovery(&faults[i], &mut rng, horizon, 0.5) {
                faults.push(recovery);
            }
        }
        FaultSchedule { faults }
    }

    /// Draws a dense churn schedule: more events than [`Self::random`]
    /// and a strong bias toward leave→rejoin pairs and flap bursts —
    /// the sustained membership churn the elastic lifecycle must
    /// absorb. Deterministic in `(cluster, seed, horizon)`.
    pub fn random_churn(cluster: &Cluster, seed: u64, horizon: SimDuration) -> Self {
        let mut rng = seeded_rng(child_seed(seed, "churn-schedule"));
        let n = rng.gen_range(2..=5usize);
        let mut faults = Vec::new();
        for _ in 0..n {
            let fault = random_fault(cluster, &mut rng, horizon);
            let recovery = random_recovery(&fault, &mut rng, horizon, 0.8);
            faults.push(fault);
            faults.extend(recovery);
        }
        FaultSchedule { faults }
    }

    /// Draws a schedule containing exactly one random fault within
    /// `horizon` (single-fault recovery properties).
    pub fn single_random(cluster: &Cluster, seed: u64, horizon: SimDuration) -> Self {
        let mut rng = seeded_rng(child_seed(seed, "single-fault"));
        FaultSchedule {
            faults: vec![random_fault(cluster, &mut rng, horizon)],
        }
    }

    /// Translates the schedule into engine fault actions on `sim`,
    /// shifted by `offset`: events at or before the offset are applied
    /// as current state (a flap that fully healed is skipped; a crash
    /// followed by a restart nets out to a live worker), later events
    /// are scheduled at `event time − offset` on the sim timeline.
    ///
    /// Events are processed in start-time order regardless of insertion
    /// order, so past crash→restart pairs collapse correctly.
    pub fn arm(&self, sim: &mut NetSim, offset: SimTime) {
        let mut ordered: Vec<&Fault> = self.faults.iter().collect();
        ordered.sort_by_key(|f| f.start().unwrap_or(SimTime::ZERO));
        for fault in ordered {
            match *fault {
                Fault::WorkerCrash { rank, at } => {
                    for l in worker_links(sim.cluster(), rank) {
                        arm_action(sim, offset, at, FaultAction::LinkFail(l));
                    }
                }
                Fault::WorkerRestart { rank, at } => {
                    for l in worker_links(sim.cluster(), rank) {
                        arm_action(sim, offset, at, FaultAction::LinkRecover(l));
                    }
                }
                Fault::NicFail { instance, at } => {
                    for l in nic_links(sim.cluster(), instance) {
                        arm_action(sim, offset, at, FaultAction::LinkFail(l));
                    }
                }
                Fault::NicRecover { instance, at } => {
                    for l in nic_links(sim.cluster(), instance) {
                        arm_action(sim, offset, at, FaultAction::LinkRecover(l));
                    }
                }
                Fault::LinkDown { link, from, until } => {
                    if until <= offset {
                        continue; // healed before this run started
                    }
                    arm_action(sim, offset, from, FaultAction::LinkDown(link));
                    arm_action(sim, offset, until, FaultAction::LinkUp(link));
                }
                Fault::FlapBurst {
                    link,
                    from,
                    down,
                    period,
                    count,
                } => {
                    for i in 0..count {
                        let start = from + period.scale(i as f64);
                        let end = start + down;
                        if end <= offset {
                            continue; // this outage already healed
                        }
                        arm_action(sim, offset, start, FaultAction::LinkDown(link));
                        arm_action(sim, offset, end, FaultAction::LinkUp(link));
                    }
                }
                Fault::LinkDegrade {
                    link,
                    factor,
                    from,
                    until,
                } => {
                    if until <= offset {
                        continue;
                    }
                    arm_action(
                        sim,
                        offset,
                        from,
                        FaultAction::SetCapacityFactor(link, factor),
                    );
                    arm_action(
                        sim,
                        offset,
                        until,
                        FaultAction::SetCapacityFactor(link, 1.0),
                    );
                }
                // Probe losses live in the measurement layer
                // (`ProbeRunner::inject_probe_loss`), not the transport.
                Fault::ProbeLoss { .. } => {}
            }
        }
    }

    /// Ranks cut off as of `by`: crashed workers with no later restart,
    /// plus every worker of an instance whose NIC failed with no later
    /// repair (they can no longer reach the fabric). Recovery events at
    /// or after the latest failure heal it. Sorted, deduplicated.
    pub fn permanently_excluded_ranks(&self, cluster: &Cluster, by: SimTime) -> Vec<Rank> {
        self.excluded_ranks_bounded(cluster, Some(by))
    }

    /// Ranks cut off once every scheduled event has played out — the
    /// final alive set's complement, which sustained churn must
    /// converge to.
    pub fn eventually_excluded_ranks(&self, cluster: &Cluster) -> Vec<Rank> {
        self.excluded_ranks_bounded(cluster, None)
    }

    fn excluded_ranks_bounded(&self, cluster: &Cluster, by: Option<SimTime>) -> Vec<Rank> {
        let within = |at: SimTime| by.is_none_or(|b| at <= b);
        let dead = |fail: Option<SimTime>, recover: Option<SimTime>| match (fail, recover) {
            (Some(f), Some(r)) => r < f,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let mut out = Vec::new();
        for r in 0..cluster.gpu_count() {
            let rank = Rank(r);
            let crash = self
                .faults
                .iter()
                .filter_map(|f| match *f {
                    Fault::WorkerCrash { rank: k, at } if k == rank && within(at) => Some(at),
                    _ => None,
                })
                .max();
            let restart = self
                .faults
                .iter()
                .filter_map(|f| match *f {
                    Fault::WorkerRestart { rank: k, at } if k == rank && within(at) => Some(at),
                    _ => None,
                })
                .max();
            let (instance, _) = cluster.locate(rank);
            let nic_fail = self
                .faults
                .iter()
                .filter_map(|f| match *f {
                    Fault::NicFail { instance: i, at } if i == instance && within(at) => Some(at),
                    _ => None,
                })
                .max();
            let nic_recover = self
                .faults
                .iter()
                .filter_map(|f| match *f {
                    Fault::NicRecover { instance: i, at } if i == instance && within(at) => {
                        Some(at)
                    }
                    _ => None,
                })
                .max();
            if dead(crash, restart) || dead(nic_fail, nic_recover) {
                out.push(rank);
            }
        }
        out
    }

    /// The probe-loss events: `(link, count)` pairs for the measurement
    /// layer to inject.
    pub fn probe_losses(&self) -> impl Iterator<Item = (LinkId, u32)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::ProbeLoss { link, count } => Some((link, count)),
            _ => None,
        })
    }

    /// Earliest instant every scheduled fault has fully healed — the
    /// earliest time a retry can expect a clean fabric. `None` if any
    /// permanent fault has no matching later recovery event.
    pub fn healed_by(&self) -> Option<SimTime> {
        let mut worst = SimTime::ZERO;
        for fault in &self.faults {
            match *fault {
                Fault::LinkDown { until, .. } | Fault::LinkDegrade { until, .. } => {
                    worst = worst.max(until);
                }
                Fault::FlapBurst {
                    from,
                    down,
                    period,
                    count,
                    ..
                } => {
                    let last = from + period.scale(count.saturating_sub(1) as f64) + down;
                    worst = worst.max(last);
                }
                Fault::ProbeLoss { .. } => {}
                Fault::WorkerRestart { at, .. } | Fault::NicRecover { at, .. } => {
                    worst = worst.max(at);
                }
                Fault::WorkerCrash { rank, at } => {
                    let heal = self
                        .faults
                        .iter()
                        .filter_map(|f| match *f {
                            Fault::WorkerRestart { rank: k, at: r } if k == rank && r >= at => {
                                Some(r)
                            }
                            _ => None,
                        })
                        .max()?;
                    worst = worst.max(heal);
                }
                Fault::NicFail { instance, at } => {
                    let heal = self
                        .faults
                        .iter()
                        .filter_map(|f| match *f {
                            Fault::NicRecover { instance: i, at: r }
                                if i == instance && r >= at =>
                            {
                                Some(r)
                            }
                            _ => None,
                        })
                        .max()?;
                    worst = worst.max(heal);
                }
            }
        }
        Some(worst)
    }
}

fn arm_action(sim: &mut NetSim, offset: SimTime, at: SimTime, action: FaultAction) {
    if at <= offset {
        sim.apply_fault(action);
    } else {
        sim.schedule_fault(at.duration_since(offset), action);
    }
}

/// Every physical link adjacent to a rank's GPU (its NVLinks and its
/// PCIe attachment) — the links a worker crash takes down with it.
pub fn worker_links(cluster: &Cluster, rank: Rank) -> Vec<LinkId> {
    let gpu = cluster.gpu_node(rank);
    cluster
        .links()
        .iter()
        .enumerate()
        .filter(|(_, def)| def.src == gpu || def.dst == gpu)
        .map(|(i, _)| LinkId(i))
        .collect()
}

/// Every physical link adjacent to an instance's NIC: the network
/// egress/ingress ports (self-loops on the NIC node) and the NIC's PCIe
/// attachment.
pub fn nic_links(cluster: &Cluster, instance: InstanceId) -> Vec<LinkId> {
    let nic = cluster.nic_node(instance);
    cluster
        .links()
        .iter()
        .enumerate()
        .filter(|(_, def)| def.src == nic || def.dst == nic)
        .map(|(i, _)| LinkId(i))
        .collect()
}

fn random_fault(cluster: &Cluster, rng: &mut ChaCha8Rng, horizon: SimDuration) -> Fault {
    let at = |rng: &mut ChaCha8Rng| SimTime::ZERO + horizon.scale(rng.gen_range(0.05..0.85));
    let port = |rng: &mut ChaCha8Rng| {
        let inst = InstanceId(rng.gen_range(0..cluster.instance_count()));
        if rng.gen_bool(0.5) {
            cluster.nic_egress_link(inst)
        } else {
            cluster.nic_ingress_link(inst)
        }
    };
    match rng.gen_range(0u32..10) {
        0..=1 => Fault::WorkerCrash {
            rank: Rank(rng.gen_range(0..cluster.gpu_count())),
            at: at(rng),
        },
        2..=3 => Fault::NicFail {
            instance: InstanceId(rng.gen_range(0..cluster.instance_count())),
            at: at(rng),
        },
        4..=5 => {
            let from = at(rng);
            Fault::LinkDown {
                link: port(rng),
                from,
                until: from + horizon.scale(rng.gen_range(0.02..0.2)),
            }
        }
        6 => {
            let from = at(rng);
            let period = horizon.scale(rng.gen_range(0.06..0.15));
            Fault::FlapBurst {
                link: port(rng),
                from,
                down: period.scale(rng.gen_range(0.3..0.7)),
                period,
                count: rng.gen_range(2..=4),
            }
        }
        7..=8 => {
            let from = at(rng);
            Fault::LinkDegrade {
                link: port(rng),
                factor: rng.gen_range(0.05..0.5),
                from,
                until: from + horizon.scale(rng.gen_range(0.05..0.3)),
            }
        }
        _ => Fault::ProbeLoss {
            link: port(rng),
            count: rng.gen_range(1..=2),
        },
    }
}

/// Draws the matching recovery event for a permanent fault with
/// probability `p`, landing a fraction of the horizon after the
/// failure; `None` for non-permanent faults or when the coin says the
/// component stays dead.
fn random_recovery(
    fault: &Fault,
    rng: &mut ChaCha8Rng,
    horizon: SimDuration,
    p: f64,
) -> Option<Fault> {
    match *fault {
        Fault::WorkerCrash { rank, at } if rng.gen_bool(p) => Some(Fault::WorkerRestart {
            rank,
            at: at + horizon.scale(rng.gen_range(0.2..0.9)),
        }),
        Fault::NicFail { instance, at } if rng.gen_bool(p) => Some(Fault::NicRecover {
            instance,
            at: at + horizon.scale(rng.gen_range(0.2..0.9)),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimEvent;
    use crate::units::ByteSize;

    #[test]
    fn random_schedule_is_deterministic() {
        let c = Cluster::homogeneous_a100(2);
        let h = SimDuration::from_secs(1.0);
        let a = FaultSchedule::random(&c, 42, h);
        let b = FaultSchedule::random(&c, 42, h);
        assert_eq!(a, b);
        // 1-3 primary faults, each optionally paired with a recovery.
        assert!(!a.is_empty() && a.len() <= 6);
        let other = FaultSchedule::random(&c, 43, h);
        // Not a strict guarantee for any pair of seeds, but these two
        // are fixed by the deterministic generator.
        assert_ne!(a, other);
    }

    #[test]
    fn random_churn_is_deterministic_and_correlated() {
        let c = Cluster::homogeneous_a100(2);
        let h = SimDuration::from_secs(1.0);
        let a = FaultSchedule::random_churn(&c, 7, h);
        assert_eq!(a, FaultSchedule::random_churn(&c, 7, h));
        assert!(!a.is_empty());
        // Over many seeds the 0.8 pairing bias must actually produce
        // recovery events — churn without rejoins is just decay.
        let recoveries: usize = (0..100)
            .map(|s| {
                FaultSchedule::random_churn(&c, s, h)
                    .faults()
                    .iter()
                    .filter(|f| f.is_recovery())
                    .count()
            })
            .sum();
        assert!(recoveries > 50, "only {recoveries} recoveries in 100 seeds");
    }

    #[test]
    fn worker_crash_aborts_transfers_through_the_gpu() {
        let c = Cluster::homogeneous_a100(1);
        let schedule = FaultSchedule::new().with(Fault::WorkerCrash {
            rank: Rank(1),
            at: SimTime::from_millis(0.5),
        });
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::ZERO);
        let path = c.intra_path(Rank(0), Rank(1));
        sim.submit_transfer(&path, ByteSize::from_mib(200), 9);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferAborted { token: 9, .. }));
        // Links not touching the dead GPU survive.
        let alive = c.intra_path(Rank(2), Rank(3));
        sim.submit_transfer(&alive, ByteSize::from_mib(1), 10);
        assert!(matches!(
            sim.step(),
            Some(SimEvent::TransferDone { token: 10, .. })
        ));
    }

    #[test]
    fn past_crash_applies_as_current_state() {
        let c = Cluster::homogeneous_a100(2);
        let schedule = FaultSchedule::new().with(Fault::NicFail {
            instance: InstanceId(0),
            at: SimTime::from_millis(1.0),
        });
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_secs(5.0));
        assert!(sim.link_is_failed(c.nic_egress_link(InstanceId(0))));
    }

    #[test]
    fn healed_flap_is_skipped_on_retry() {
        let c = Cluster::homogeneous_a100(2);
        let eg = c.nic_egress_link(InstanceId(0));
        let schedule = FaultSchedule::new().with(Fault::LinkDown {
            link: eg,
            from: SimTime::from_millis(1.0),
            until: SimTime::from_millis(2.0),
        });
        assert_eq!(schedule.healed_by(), Some(SimTime::from_millis(2.0)));
        // Armed after the heal instant, the fabric is clean.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(2.0));
        assert!(sim.link_is_up(eg));
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 1);
        assert!(matches!(sim.step(), Some(SimEvent::TransferDone { .. })));
    }

    #[test]
    fn mid_window_flap_arms_down_now_up_later() {
        let c = Cluster::homogeneous_a100(2);
        let eg = c.nic_egress_link(InstanceId(0));
        let schedule = FaultSchedule::new().with(Fault::LinkDown {
            link: eg,
            from: SimTime::from_millis(1.0),
            until: SimTime::from_millis(10.0),
        });
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(4.0));
        assert!(!sim.link_is_up(eg));
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(1), 1);
        // Completes only after the scheduled link-up at 6 ms sim time.
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { .. }));
        assert!(ev.at().as_secs() >= 0.006);
    }

    #[test]
    fn exclusion_covers_crashes_and_nic_failures() {
        let c = Cluster::homogeneous_a100(2);
        let schedule = FaultSchedule::new()
            .with(Fault::WorkerCrash {
                rank: Rank(6),
                at: SimTime::from_millis(1.0),
            })
            .with(Fault::NicFail {
                instance: InstanceId(0),
                at: SimTime::from_millis(3.0),
            });
        let early = schedule.permanently_excluded_ranks(&c, SimTime::from_millis(2.0));
        assert_eq!(early, vec![Rank(6)]);
        let late = schedule.permanently_excluded_ranks(&c, SimTime::from_millis(5.0));
        assert_eq!(late, vec![Rank(0), Rank(1), Rank(2), Rank(3), Rank(6)]);
        assert_eq!(schedule.healed_by(), None);
    }

    #[test]
    fn restart_heals_a_past_crash_when_armed_later() {
        let c = Cluster::homogeneous_a100(2);
        let schedule = FaultSchedule::new()
            .with(Fault::WorkerCrash {
                rank: Rank(1),
                at: SimTime::from_millis(1.0),
            })
            .with(Fault::WorkerRestart {
                rank: Rank(1),
                at: SimTime::from_millis(5.0),
            });
        // Armed between crash and restart: the worker is down now but
        // its links recover on schedule.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(2.0));
        for l in worker_links(&c, Rank(1)) {
            assert!(sim.link_is_failed(l));
        }
        // Armed after the restart: crash→restart nets out to alive.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(6.0));
        for l in worker_links(&c, Rank(1)) {
            assert!(!sim.link_is_failed(l), "link {} still failed", l.0);
            assert!(sim.link_is_up(l));
        }
        // Insertion order must not matter: restart pushed first.
        let reversed = FaultSchedule::new()
            .with(Fault::WorkerRestart {
                rank: Rank(1),
                at: SimTime::from_millis(5.0),
            })
            .with(Fault::WorkerCrash {
                rank: Rank(1),
                at: SimTime::from_millis(1.0),
            });
        let mut sim = NetSim::new(&c);
        reversed.arm(&mut sim, SimTime::from_millis(6.0));
        for l in worker_links(&c, Rank(1)) {
            assert!(!sim.link_is_failed(l));
        }
    }

    #[test]
    fn nic_recover_brings_the_instance_back() {
        let c = Cluster::homogeneous_a100(2);
        let schedule = FaultSchedule::new()
            .with(Fault::NicFail {
                instance: InstanceId(0),
                at: SimTime::from_millis(1.0),
            })
            .with(Fault::NicRecover {
                instance: InstanceId(0),
                at: SimTime::from_millis(4.0),
            });
        assert_eq!(schedule.healed_by(), Some(SimTime::from_millis(4.0)));
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(5.0));
        assert!(sim.link_is_up(c.nic_egress_link(InstanceId(0))));
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(1), 1);
        assert!(matches!(sim.step(), Some(SimEvent::TransferDone { .. })));
    }

    #[test]
    fn exclusion_is_recovery_aware() {
        let c = Cluster::homogeneous_a100(2);
        let schedule = FaultSchedule::new()
            .with(Fault::WorkerCrash {
                rank: Rank(6),
                at: SimTime::from_millis(1.0),
            })
            .with(Fault::WorkerRestart {
                rank: Rank(6),
                at: SimTime::from_millis(3.0),
            });
        // Before the restart the rank is out; after, it is back.
        assert_eq!(
            schedule.permanently_excluded_ranks(&c, SimTime::from_millis(2.0)),
            vec![Rank(6)]
        );
        assert_eq!(
            schedule.permanently_excluded_ranks(&c, SimTime::from_millis(4.0)),
            vec![]
        );
        assert_eq!(schedule.eventually_excluded_ranks(&c), vec![]);
        // A second crash after the restart makes the exclusion stick.
        let schedule = schedule.with(Fault::WorkerCrash {
            rank: Rank(6),
            at: SimTime::from_millis(5.0),
        });
        assert_eq!(schedule.eventually_excluded_ranks(&c), vec![Rank(6)]);
        assert_eq!(schedule.healed_by(), None);
    }

    #[test]
    fn flap_burst_arms_every_outage_and_skips_healed_ones() {
        let c = Cluster::homogeneous_a100(2);
        let eg = c.nic_egress_link(InstanceId(0));
        let schedule = FaultSchedule::new().with(Fault::FlapBurst {
            link: eg,
            from: SimTime::from_millis(1.0),
            down: SimDuration::from_millis(1.0),
            period: SimDuration::from_millis(3.0),
            count: 3,
        });
        // Outages: [1,2) [4,5) [7,8) ms; fully healed at 8 ms.
        assert_eq!(schedule.healed_by(), Some(SimTime::from_millis(8.0)));
        // Armed mid-burst: the first outage is skipped, the second is
        // live right now.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(4.5));
        assert!(!sim.link_is_up(eg));
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(1), 1);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { .. }));
        // Armed after the burst: clean fabric.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::from_millis(8.0));
        assert!(sim.link_is_up(eg));
    }

    #[test]
    fn probe_losses_surface_for_the_measurement_layer() {
        let c = Cluster::homogeneous_a100(2);
        let eg = c.nic_egress_link(InstanceId(1));
        let schedule = FaultSchedule::new().with(Fault::ProbeLoss { link: eg, count: 2 });
        let losses: Vec<_> = schedule.probe_losses().collect();
        assert_eq!(losses, vec![(eg, 2)]);
        // Arming a probe-loss-only schedule leaves the transport alone.
        let mut sim = NetSim::new(&c);
        schedule.arm(&mut sim, SimTime::ZERO);
        assert!(sim.link_is_up(eg));
    }
}
