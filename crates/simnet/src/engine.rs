//! The discrete-event transport engine.
//!
//! Transfers are *fluid flows*: a flow occupies every link of its
//! [`Path`] simultaneously and receives a rate from progressive-filling
//! (max-min) allocation, recomputed whenever the set of active flows or
//! a link capacity changes. With single-link flows this degenerates to
//! the paper's equal-share model (eq. 3): each of the `k` flows on a
//! link gets `capacity / k`.
//!
//! The engine is timing-only: payloads are *sizes*, not data. Callers
//! (the AdapCC executor) attach a `token` to each transfer and perform
//! the actual buffer movement when the completion event fires, which is
//! how real `f32` tensors flow through the simulation with exact
//! reduction semantics.
//!
//! Determinism: a single-threaded binary heap ordered by `(time, seq)`
//! makes every run bit-reproducible.
//!
//! # Scaling
//!
//! The engine is sized for cluster-scale sweeps (512+ instances):
//!
//! * **Flow aggregation** — back-to-back submissions that are byte-for-
//!   byte identical (same links, same size, same instant, no events in
//!   between) merge into one flow carrying several caller tokens. The
//!   merged flow participates in rate allocation with its clone count
//!   as weight and emits one event per token in submission order, so
//!   the observable event stream — times, tokens, ordering — is
//!   bit-identical to the unmerged engine.
//! * **Arena-backed state** — per-flow link lists live in one shared
//!   `Vec`, event payload slots are recycled through a free list, and
//!   the allocator scratch (active/hot/residual/frozen sets) is reused
//!   across `reallocate` calls with generation stamps instead of
//!   per-call allocation, so steady-state stepping allocates nothing.
//! * **Incremental filling** — with
//!   [`with_incremental_allocator`](NetSim::with_incremental_allocator)
//!   the engine stops re-filling the whole fleet on every event.
//!   Links touched by an event join a *dirty frontier*; the refill
//!   walks only the connected components (flows sharing a link,
//!   transitively) reachable from that frontier and recomputes their
//!   rates with the same progressive-filling arithmetic, leaving every
//!   other component's rates — and therefore its scheduled completion
//!   times — bitwise untouched. Flow progress integrates lazily (each
//!   flow carries the instant its residual was last synced), live-set
//!   membership is an intrusive list with O(1) unlink, and per-link
//!   occupancy indices make fault targeting O(flows-on-link). A
//!   synchronized wave of N arrivals pays one frontier refill instead
//!   of N fleet refills. Debug builds cross-check every incremental
//!   refill against a from-scratch filling of all live flows.
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adapcc_telemetry::Telemetry;

use crate::cluster::{Cluster, LinkId, Path};
use crate::time::{SimDuration, SimTime};
use crate::units::ByteSize;

/// Residual bytes below which a flow counts as finished (absorbs f64
/// rounding from rate recomputations).
const EPS_BYTES: f64 = 1e-3;

/// Opaque caller-side identifier carried by transfers and timers.
pub type Token = u64;

/// A user-visible simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A transfer submitted with [`NetSim::submit_transfer`] finished.
    TransferDone {
        /// The caller's token.
        token: Token,
        /// Completion instant.
        at: SimTime,
    },
    /// A transfer was aborted because a link on its path permanently
    /// failed (see [`NetSim::fail_link`]). No bytes are delivered.
    TransferAborted {
        /// The caller's token.
        token: Token,
        /// Abort instant.
        at: SimTime,
    },
    /// A timer scheduled with [`NetSim::schedule_timer`] fired.
    Timer {
        /// The caller's token.
        token: Token,
        /// Firing instant.
        at: SimTime,
    },
}

impl SimEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::TransferDone { at, .. }
            | SimEvent::TransferAborted { at, .. }
            | SimEvent::Timer { at, .. } => at,
        }
    }

    /// The caller token of the event.
    pub fn token(&self) -> Token {
        match *self {
            SimEvent::TransferDone { token, .. }
            | SimEvent::TransferAborted { token, .. }
            | SimEvent::Timer { token, .. } => token,
        }
    }
}

/// A fault applied to the fabric, either immediately or scheduled on
/// the simulation timeline with [`NetSim::schedule_fault`].
///
/// Faults are *silent*: applying one produces no user-visible event of
/// its own (real networks do not announce their failures). Their
/// consequences surface as stalled flows, [`SimEvent::TransferAborted`]
/// events, or changed completion times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take a link down (transient): flows crossing it stall at rate
    /// zero until the link comes back up.
    LinkDown(LinkId),
    /// Bring a transiently-down link back up; stalled flows resume.
    /// No effect on permanently failed links.
    LinkUp(LinkId),
    /// Permanently fail a link: every unfinished flow crossing it is
    /// aborted and future submissions over it abort after their latency.
    LinkFail(LinkId),
    /// Repair a failed link (hardware replaced / worker restarted):
    /// clears the failure and brings the link back up. Flows aborted
    /// by the failure stay aborted; new submissions succeed.
    LinkRecover(LinkId),
    /// Scale a link's capacity (degradation / recovery). The factor
    /// must be positive and finite.
    SetCapacityFactor(LinkId, f64),
}

#[derive(Debug, Clone)]
enum Internal {
    /// A flow clone's α latency elapsed: it joins the fluid phase.
    LatencyDone(usize),
    /// Re-examine flows for completion; stale if version mismatch.
    /// Exact (non-incremental) mode only.
    Completion(u64),
    /// Incremental mode: a specific flow's scheduled drain instant.
    /// Stale if the flow's fill generation moved past the stamp.
    FlowDone(usize, u64),
    /// User timer.
    Timer(Token),
    /// A draining flow clone was aborted by a permanent link failure.
    Aborted(usize),
    /// A scheduled fault fires.
    Fault(FaultAction),
}

#[derive(Debug, Clone)]
struct Flow {
    token: Token,
    /// Tokens of identical same-instant submissions merged into this
    /// flow (aggregation). The flow's *weight* is `1 + extra.len()`.
    extra: Vec<Token>,
    /// Slice of the shared link arena this flow occupies.
    links_start: u32,
    links_len: u32,
    /// Per-clone residual bytes (clones are identical, so one value
    /// stands for all of them).
    remaining: f64,
    /// Current allocated per-clone rate in bytes/sec (0 while in the
    /// latency phase).
    rate: f64,
    /// Per-flow ceiling from the most restrictive traversed link.
    cap: f64,
    draining: bool,
    done: bool,
    /// Set when a permanent link failure killed this flow; surfaces as
    /// [`SimEvent::TransferAborted`].
    aborted: bool,
    /// Clones whose latency elapsed and are draining; the flow's weight
    /// in rate allocation.
    active_clones: u32,
    /// Caller tokens already surfaced as events.
    emitted: u32,
    /// Intrusive live-list neighbours (`NONE` when absent); activation
    /// order is preserved, unlink is O(1).
    live_prev: u32,
    live_next: u32,
    /// Occurrences of transiently-down links on this flow's path
    /// (stall bookkeeping; >0 means the flow is stalled at rate zero).
    down_links: u32,
    /// Present in the per-link occupancy index.
    indexed: bool,
    /// Incremental mode: generation stamp of the flow's scheduled
    /// `FlowDone` event; events carrying an older stamp are stale.
    fill_gen: u64,
    /// Incremental mode: the instant `remaining` was last integrated
    /// to (rates are piecewise-constant between refills, so progress
    /// is `rate * (now - synced_at)` exactly).
    synced_at: SimTime,
}

/// Sentinel for absent intrusive-list neighbours.
const NONE: u32 = u32::MAX;

impl Flow {
    fn weight(&self) -> u32 {
        1 + self.extra.len() as u32
    }

    /// Surfaces the next un-emitted caller token, in submission order.
    fn take_token(&mut self) -> Token {
        let i = self.emitted as usize;
        self.emitted += 1;
        if self.emitted >= self.weight() {
            self.done = true;
        }
        if i == 0 {
            self.token
        } else {
            self.extra[i - 1]
        }
    }
}

#[derive(Debug, Clone, Default)]
struct LinkState {
    factor: f64,
    /// Transient availability: a down link stalls its flows.
    up: bool,
    /// Permanent failure: the link never comes back and aborts flows.
    failed: bool,
}

/// The most recent submission, for aggregation of identical
/// back-to-back transfers.
#[derive(Debug, Clone, Copy)]
struct LastSubmit {
    flow: usize,
    /// Event sequence number right after the submission: any push in
    /// between (timer, fault, reallocation) advances it and kills the
    /// merge window.
    seq: u64,
    at: SimTime,
    alpha: SimDuration,
}

/// The transport simulator for one [`Cluster`].
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, InstanceId};
/// use adapcc_simnet::engine::{NetSim, SimEvent};
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let mut sim = NetSim::new(&cluster);
/// let path = cluster.net_path(InstanceId(0), InstanceId(1));
/// sim.submit_transfer(&path, ByteSize::from_mib(100), 7);
/// let ev = sim.step().expect("one event");
/// assert!(matches!(ev, SimEvent::TransferDone { token: 7, .. }));
/// ```
#[derive(Debug)]
pub struct NetSim<'c> {
    cluster: &'c Cluster,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    payloads: Vec<Option<Internal>>,
    /// Payload slots freed by popped events, recycled by `push`.
    free_pids: Vec<u64>,
    flows: Vec<Flow>,
    /// Shared arena backing every flow's link list.
    flow_links: Vec<LinkId>,
    /// Head/tail of the intrusive live list (flows in the fluid
    /// phase), threaded through `Flow::live_prev`/`live_next` in
    /// activation order; membership changes are O(1).
    live_head: u32,
    live_tail: u32,
    live_len: usize,
    links: Vec<LinkState>,
    /// Per-link occupancy index: `(flow, slot)` for every flow whose
    /// path crosses the link, from submission until done/aborted.
    /// `slot` names the occurrence inside the flow's link slice so
    /// swap-removal can fix back-pointers in O(1).
    link_flows: Vec<Vec<(u32, u32)>>,
    /// Arena parallel to `flow_links`: the position of that occupancy
    /// entry inside its link's `link_flows` vector.
    slot_pos: Vec<u32>,
    /// Counter-backed `draining_flows()` (clones of draining flows).
    draining_clones: usize,
    /// Counter-backed `stalled_flows()` (clones of draining flows
    /// crossing at least one down link).
    stalled_clones: usize,
    /// Frontier-based refills instead of fleet-wide fillings.
    incremental: bool,
    /// Test hook: every refill treats all live flows as dirty, so the
    /// event stream doubles as a from-scratch filling reference.
    paranoid: bool,
    /// Inside the debug cross-check: suppress counters and turn rate
    /// divergence into a panic.
    checking: bool,
    /// Number of filling passes executed (one per dirty component in
    /// incremental mode, one per `reallocate` in exact mode).
    fillings: u64,
    /// Total flows touched by filling passes (the frontier size).
    frontier_flows: u64,
    /// Links dirtied since the last refill, deduplicated by epoch.
    dirty_links: Vec<usize>,
    dirty_stamp: Vec<u64>,
    dirty_epoch: u64,
    /// BFS visit stamps for component discovery.
    visit_link_stamp: Vec<u64>,
    visit_flow_stamp: Vec<u64>,
    comp_links: Vec<usize>,
    comp_flows: Vec<usize>,
    scratch_old_rates: Vec<f64>,
    completion_version: u64,
    last_advance: SimTime,
    last_submit: Option<LastSubmit>,
    /// Collapse the sub-picosecond drain cascade of simultaneous
    /// finishers into one instant (see
    /// [`with_completion_coalescing`](Self::with_completion_coalescing)).
    coalesce_completions: bool,
    /// Total internal events processed (engine throughput metric).
    events: u64,
    // Reusable `reallocate` scratch: no steady-state allocation.
    scratch_active: Vec<usize>,
    scratch_hot: Vec<usize>,
    scratch_residual: Vec<f64>,
    scratch_counts: Vec<usize>,
    scratch_unfrozen: Vec<usize>,
    /// Generation stamps replacing a per-call `frozen` bitmap.
    frozen_stamp: Vec<u64>,
    /// Generation stamps deduplicating the hot link set without a sort.
    hot_stamp: Vec<u64>,
    stamp: u64,
    /// Dense link-id -> hot-set position map; only positions of links
    /// in the current hot set are ever read.
    link_pos: Vec<u32>,
    telemetry: Telemetry,
}

impl<'c> NetSim<'c> {
    /// Creates an idle simulator at time zero over the given cluster.
    pub fn new(cluster: &'c Cluster) -> Self {
        NetSim {
            cluster,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_pids: Vec::new(),
            flows: Vec::new(),
            flow_links: Vec::new(),
            live_head: NONE,
            live_tail: NONE,
            live_len: 0,
            link_flows: vec![Vec::new(); cluster.links().len()],
            slot_pos: Vec::new(),
            draining_clones: 0,
            stalled_clones: 0,
            incremental: false,
            paranoid: false,
            checking: false,
            fillings: 0,
            frontier_flows: 0,
            dirty_links: Vec::new(),
            dirty_stamp: vec![0; cluster.links().len()],
            dirty_epoch: 1,
            visit_link_stamp: vec![0; cluster.links().len()],
            visit_flow_stamp: Vec::new(),
            comp_links: Vec::new(),
            comp_flows: Vec::new(),
            scratch_old_rates: Vec::new(),
            links: vec![
                LinkState {
                    factor: 1.0,
                    up: true,
                    failed: false,
                };
                cluster.links().len()
            ],
            completion_version: 0,
            last_advance: SimTime::ZERO,
            last_submit: None,
            coalesce_completions: false,
            events: 0,
            scratch_active: Vec::new(),
            scratch_hot: Vec::new(),
            scratch_residual: Vec::new(),
            scratch_counts: Vec::new(),
            scratch_unfrozen: Vec::new(),
            frozen_stamp: Vec::new(),
            hot_stamp: vec![0; cluster.links().len()],
            stamp: 0,
            link_pos: vec![0; cluster.links().len()],
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: subsequent submissions bump the
    /// `simnet.transfers` / `simnet.bytes_submitted` counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Enables (or disables) completion coalescing.
    ///
    /// When a wave of flows drains at the same integration instant,
    /// the exact engine completes them as a cascade: each harvest
    /// recomputes the filling, and the `remaining / rate` residual of
    /// the next drained flow (at most the 1e-3-byte drain epsilon over
    /// a multi-GB/s rate — under a picosecond) separates the
    /// completions. Coalescing
    /// harvests the whole wave at one instant and runs a single filling
    /// afterwards, turning an `O(wave x live)` cascade into `O(live)`.
    ///
    /// Off by default: the cascade's low-order timing bits are part of
    /// the engine's historical event stream and pinned by golden
    /// traces. The executor switches it on for cluster-scale fleets,
    /// where no such traces exist and sub-picosecond spacing is
    /// physically meaningless. Timing differences are bounded by one
    /// residual per harvested wave; determinism is unaffected.
    pub fn with_completion_coalescing(mut self, on: bool) -> Self {
        self.coalesce_completions = on;
        self
    }

    /// Enables (or disables) the incremental, locality-aware allocator.
    ///
    /// Instead of re-running the fleet-wide progressive filling on
    /// every arrival/completion/fault, the engine accumulates the
    /// links touched by each event into a *dirty frontier* and refills
    /// only the connected flow components reachable from it — the same
    /// filling arithmetic, scoped to the flows whose share can
    /// actually change. Per-event cost becomes proportional to the
    /// touched component, so disjoint traffic (the common cluster
    /// pattern) completes in O(1) per event instead of O(live).
    ///
    /// Completion *times* for a given scenario are deterministic but
    /// not bit-identical to the exact engine: the exact mode couples
    /// disjoint components through a global filling-delta sequence and
    /// integrates progress eagerly at every event, while incremental
    /// mode fills per component and integrates lazily. Differences are
    /// f64-rounding-scale. Golden-traced small fleets therefore keep
    /// the exact engine; the executor switches incremental on at
    /// cluster scale. Completion coalescing is irrelevant (and
    /// ignored) in this mode — completions are per-flow events with
    /// no harvest cascade to collapse.
    ///
    /// Must be selected before the first submission.
    pub fn with_incremental_allocator(mut self, on: bool) -> Self {
        assert!(
            self.flows.is_empty(),
            "allocator mode must be chosen before the first submission"
        );
        self.incremental = on;
        self
    }

    /// Test/verification hook: every incremental refill marks *all*
    /// live flows dirty, degenerating to a from-scratch per-component
    /// filling after every event. A correct frontier produces a
    /// bit-identical event stream with this on or off — that is the
    /// incremental allocator's exactness contract (see the proptests).
    pub fn with_paranoid_refill(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Whether the incremental allocator is active.
    pub fn incremental_allocator(&self) -> bool {
        self.incremental
    }

    /// Filling passes executed so far (per dirty component in
    /// incremental mode, per `reallocate` in exact mode).
    pub fn fillings(&self) -> u64 {
        self.fillings
    }

    /// Total flows touched by filling passes so far — the work metric
    /// the incremental allocator minimizes.
    pub fn frontier_flows(&self) -> u64 {
        self.frontier_flows
    }

    /// The cluster this simulator runs over.
    pub fn cluster(&self) -> &'c Cluster {
        self.cluster
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total internal events processed so far — the engine-throughput
    /// numerator for `events/sec` benchmarks.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Saturation threshold for a link's residual during progressive
    /// filling: relative to the link's effective capacity, because the
    /// floating-point dust `residual -= delta * n` leaves behind on a
    /// saturated link scales with that capacity. An absolute epsilon
    /// (the old `1e-6` B/s) sits *inside* the dust band of a 100 GB/s
    /// fabric link, where a mathematically-saturated link could read
    /// as open and starve the freeze step. The `1e-6` floor keeps
    /// zero-capacity (failed/zero-factor) links saturated.
    fn sat_eps(&self, li: usize) -> f64 {
        let cap = self.cluster.links()[li].capacity.as_bytes_per_sec() * self.links[li].factor;
        (cap * 1e-9).max(1e-6)
    }

    /// The links a flow occupies, out of the shared arena.
    fn links_of(&self, id: usize) -> &[LinkId] {
        let f = &self.flows[id];
        &self.flow_links[f.links_start as usize..(f.links_start + f.links_len) as usize]
    }

    /// Submits a transfer of `size` bytes along `path`; a
    /// [`SimEvent::TransferDone`] with `token` fires on completion.
    ///
    /// The path's total α (link alphas + extra) elapses first; the flow
    /// then drains at its max-min allocated rate.
    ///
    /// Identical submissions arriving back-to-back at the same instant
    /// merge into one weighted flow (see the module docs); each still
    /// gets its own completion event at the same time the unmerged
    /// engine would have produced.
    pub fn submit_transfer(&mut self, path: &Path, size: ByteSize, token: Token) {
        // A path over an already-failed link aborts after its latency
        // elapses (the sender learns of the failure one round-trip in).
        let dead = path.links.iter().any(|l| self.links[l.0].failed);
        self.telemetry.add_counter("simnet.transfers", 1.0);
        self.telemetry
            .add_counter("simnet.bytes_submitted", size.as_f64());
        let alpha = self.cluster.path_alpha(path);
        if let Some(last) = self.last_submit {
            // Merge only when nothing happened since the previous
            // submission (seq unchanged), at the same instant, and the
            // transfer is byte-for-byte identical — then the merged
            // clone is observationally indistinguishable.
            if last.seq == self.seq && last.at == self.now && last.alpha == alpha {
                let same = {
                    let f = &self.flows[last.flow];
                    f.remaining.to_bits() == size.as_f64().to_bits()
                        && f.aborted == dead
                        && !f.done
                        && f.active_clones == 0
                        && f.emitted == 0
                        && self.links_of(last.flow) == path.links.as_slice()
                };
                if same {
                    let id = last.flow;
                    self.flows[id].extra.push(token);
                    self.push(self.now + alpha, Internal::LatencyDone(id));
                    self.last_submit = Some(LastSubmit {
                        flow: id,
                        seq: self.seq,
                        at: self.now,
                        alpha,
                    });
                    return;
                }
            }
        }
        let cap = path
            .links
            .iter()
            .filter_map(|l| self.cluster.link(*l).per_flow_cap)
            .map(|b| b.as_bytes_per_sec())
            .fold(f64::INFINITY, f64::min);
        let links_start = self.flow_links.len() as u32;
        self.flow_links.extend_from_slice(&path.links);
        self.slot_pos.resize(self.flow_links.len(), 0);
        self.flows.push(Flow {
            token,
            extra: Vec::new(),
            links_start,
            links_len: path.links.len() as u32,
            remaining: size.as_f64(),
            rate: 0.0,
            cap,
            draining: false,
            done: false,
            aborted: dead,
            active_clones: 0,
            emitted: 0,
            live_prev: NONE,
            live_next: NONE,
            down_links: 0,
            indexed: false,
            fill_gen: 0,
            synced_at: self.now,
        });
        let id = self.flows.len() - 1;
        // Dead-at-birth flows (submitted over a failed link) never
        // contend for bandwidth and are never fault victims — exactly
        // the set the occupancy index must cover.
        if !dead {
            self.index_flow(id);
        }
        self.push(self.now + alpha, Internal::LatencyDone(id));
        self.last_submit = Some(LastSubmit {
            flow: id,
            seq: self.seq,
            at: self.now,
            alpha,
        });
    }

    /// Submits a wave of transfers at the current instant.
    ///
    /// Equivalent to calling [`submit_transfer`](Self::submit_transfer)
    /// for each element; spelled out because same-instant submissions
    /// are the engine's batch path — their activations land
    /// back-to-back on the queue, the per-activation filling is
    /// deferred to the last one, and the whole wave pays a single
    /// filling (one frontier refill in incremental mode) instead of
    /// one per transfer.
    pub fn submit_wave(&mut self, wave: &[(Path, ByteSize, Token)]) {
        for (path, size, token) in wave {
            self.submit_transfer(path, *size, *token);
        }
    }

    /// Schedules a timer firing `after` from now with `token`.
    pub fn schedule_timer(&mut self, after: SimDuration, token: Token) {
        self.push(self.now + after, Internal::Timer(token));
    }

    /// Scales a link's capacity by `factor` (trace-driven variability).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_capacity_factor(&mut self, link: LinkId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "capacity factor must be positive: {factor}"
        );
        if self.incremental {
            self.links[link.0].factor = factor;
            self.mark_link_dirty(link.0);
            self.refill();
        } else {
            self.advance_flows();
            self.links[link.0].factor = factor;
            self.reallocate();
        }
    }

    /// Current capacity factor of a link.
    pub fn capacity_factor(&self, link: LinkId) -> f64 {
        self.links[link.0].factor
    }

    /// Takes a link down (`up = false`) or brings it back up.
    ///
    /// While down, flows crossing the link stall at rate zero — they
    /// are not aborted and resume draining when the link returns. A
    /// permanently failed link ignores attempts to bring it up.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let st = &self.links[link.0];
        if st.failed || st.up == up {
            return;
        }
        if self.incremental {
            self.links[link.0].up = up;
            self.note_link_transition(link.0, up);
            self.mark_link_dirty(link.0);
            self.refill();
        } else {
            self.advance_flows();
            self.links[link.0].up = up;
            self.note_link_transition(link.0, up);
            self.reallocate();
        }
    }

    /// Permanently fails a link: every unfinished flow crossing it is
    /// aborted (a [`SimEvent::TransferAborted`] fires per flow) and any
    /// later submission over it aborts after its path latency. Failed
    /// links never come back up.
    pub fn fail_link(&mut self, link: LinkId) {
        if self.links[link.0].failed {
            return;
        }
        if !self.incremental {
            self.advance_flows();
        }
        let was_up = self.links[link.0].up;
        self.links[link.0].failed = true;
        self.links[link.0].up = false;
        if was_up {
            self.note_link_transition(link.0, false);
        }
        // Victims come straight off the per-link occupancy index
        // (every not-done, not-aborted flow crossing the link);
        // ascending flow id matches the old full-scan order exactly.
        let mut victims: Vec<usize> = self.link_flows[link.0]
            .iter()
            .map(|&(f, _)| f as usize)
            .collect();
        victims.sort_unstable();
        victims.dedup();
        for id in victims {
            self.abort_flow(id);
        }
        if self.incremental {
            self.mark_link_dirty(link.0);
            self.refill();
        } else {
            self.reallocate();
        }
    }

    /// Repairs a permanently failed link: the failure flag clears and
    /// the link comes back up, so later submissions drain normally.
    /// Flows already aborted by the failure stay aborted — recovery is
    /// not retroactive. No effect on a link that never failed.
    pub fn recover_link(&mut self, link: LinkId) {
        if !self.links[link.0].failed {
            return;
        }
        if self.incremental {
            self.links[link.0].failed = false;
            self.links[link.0].up = true;
            self.note_link_transition(link.0, true);
            self.mark_link_dirty(link.0);
            self.refill();
        } else {
            self.advance_flows();
            self.links[link.0].failed = false;
            self.links[link.0].up = true;
            self.note_link_transition(link.0, true);
            self.reallocate();
        }
    }

    /// True if the link is currently up (neither down nor failed).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link.0].up
    }

    /// True if the link has permanently failed.
    pub fn link_is_failed(&self, link: LinkId) -> bool {
        self.links[link.0].failed
    }

    /// Schedules a fault to fire `after` from now, inside the
    /// simulation timeline. The fault itself is silent; see
    /// [`FaultAction`].
    pub fn schedule_fault(&mut self, after: SimDuration, action: FaultAction) {
        self.push(self.now + after, Internal::Fault(action));
    }

    /// Applies a fault action immediately.
    pub fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown(l) => self.set_link_up(l, false),
            FaultAction::LinkUp(l) => self.set_link_up(l, true),
            FaultAction::LinkFail(l) => self.fail_link(l),
            FaultAction::LinkRecover(l) => self.recover_link(l),
            FaultAction::SetCapacityFactor(l, f) => self.set_capacity_factor(l, f),
        }
    }

    fn abort_flow(&mut self, id: usize) {
        let f = &mut self.flows[id];
        f.aborted = true;
        if f.draining {
            f.draining = false;
            f.done = true;
            f.fill_gen += 1;
            let clones = f.active_clones;
            f.active_clones = 0;
            self.draining_clones -= clones as usize;
            if self.flows[id].down_links > 0 {
                self.stalled_clones -= clones as usize;
            }
            self.live_unlink(id);
            if self.incremental {
                self.mark_flow_links_dirty(id);
            }
            // One abort event per merged clone, in submission order —
            // exactly what separate flows would have produced.
            for _ in 0..clones {
                self.push(self.now, Internal::Aborted(id));
            }
        }
        // A latency-phase flow keeps its pending LatencyDone event(s),
        // which convert into the abort(s) when they fire.
        self.unindex_flow(id);
    }

    /// Number of flows currently in the fluid phase (draining), with
    /// merged flows counting once per clone. Counter-backed: O(1).
    pub fn draining_flows(&self) -> usize {
        self.draining_clones
    }

    /// Number of draining flows currently stalled behind a down link,
    /// with merged flows counting once per clone. Counter-backed: O(1).
    pub fn stalled_flows(&self) -> usize {
        self.stalled_clones
    }

    /// Advances the simulation to the next user-visible event and
    /// returns it, or `None` when nothing is pending.
    pub fn step(&mut self) -> Option<SimEvent> {
        loop {
            let Reverse((t, _, pid)) = self.queue.pop()?;
            let payload = self.payloads[pid as usize]
                .take()
                .expect("event payload consumed twice");
            self.free_pids.push(pid);
            self.events += 1;
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            match payload {
                Internal::Timer(token) => {
                    return Some(SimEvent::Timer { token, at: t });
                }
                Internal::LatencyDone(id) => {
                    if !self.incremental {
                        self.advance_flows();
                    }
                    let flow = &mut self.flows[id];
                    if flow.aborted {
                        let token = flow.take_token();
                        if self.flows[id].done {
                            self.unindex_flow(id);
                        }
                        return Some(SimEvent::TransferAborted { token, at: t });
                    }
                    if flow.remaining <= EPS_BYTES {
                        // Zero-byte transfer: completes right after latency.
                        let token = flow.take_token();
                        if self.flows[id].done {
                            self.unindex_flow(id);
                        }
                        return Some(SimEvent::TransferDone { token, at: t });
                    }
                    flow.draining = true;
                    flow.active_clones += 1;
                    self.draining_clones += 1;
                    if self.flows[id].active_clones == 1 {
                        // First clone: the flow joins the live list and
                        // learns how many of its links are down.
                        let down = self
                            .links_of(id)
                            .iter()
                            .filter(|l| !self.links[l.0].up)
                            .count() as u32;
                        let f = &mut self.flows[id];
                        f.down_links = down;
                        f.rate = 0.0;
                        f.synced_at = t;
                        f.fill_gen += 1;
                        self.live_push_back(id);
                    }
                    if self.flows[id].down_links > 0 {
                        self.stalled_clones += 1;
                    } else if self.incremental {
                        self.mark_flow_links_dirty(id);
                    }
                    if self.next_is_same_instant_activation() {
                        // A same-instant activation follows immediately
                        // and nothing reads rates before it recomputes
                        // them, so this filling would be thrown away.
                        // Skip it: a synchronized wave of arrivals then
                        // pays for one filling instead of one per
                        // transfer (the frontier keeps accumulating in
                        // incremental mode). The exact engine mimics
                        // the skipped filling's bookkeeping — the
                        // stale-marking version bump and one sequence
                        // step for the completion push it replaces —
                        // to stay bit-identical with its history.
                        if !self.incremental {
                            self.completion_version += 1;
                            self.seq += 1;
                        }
                    } else if self.incremental {
                        self.refill();
                    } else {
                        self.reallocate();
                    }
                }
                Internal::FlowDone(id, gen) => {
                    // Incremental mode: a per-flow drain instant.
                    debug_assert!(self.incremental);
                    {
                        let f = &self.flows[id];
                        if !f.draining || f.fill_gen != gen {
                            continue; // stale (refilled, stalled, aborted)
                        }
                    }
                    self.sync_flow(id);
                    if self.flows[id].remaining > EPS_BYTES {
                        // Numerical guard: not actually drained yet —
                        // integrate and reschedule at the residual.
                        let f = &mut self.flows[id];
                        if f.rate > 0.0 {
                            let dt = SimDuration::from_secs((f.remaining / f.rate).max(0.0));
                            let gen = f.fill_gen;
                            self.push(t + dt, Internal::FlowDone(id, gen));
                        }
                        continue;
                    }
                    let flow = &mut self.flows[id];
                    let token = flow.take_token();
                    flow.active_clones -= 1;
                    self.draining_clones -= 1;
                    if self.flows[id].down_links > 0 {
                        // A drained flow completes even while stalled.
                        self.stalled_clones -= 1;
                    }
                    if self.flows[id].active_clones == 0 {
                        self.flows[id].draining = false;
                        self.live_unlink(id);
                        if self.flows[id].done {
                            self.unindex_flow(id);
                        }
                    } else {
                        // Remaining merged clones finish at this same
                        // instant. The refill below re-stamps the event
                        // whenever the per-clone rate moves; this push
                        // covers the cap-bound case where it does not.
                        let f = &mut self.flows[id];
                        f.fill_gen += 1;
                        let gen = f.fill_gen;
                        self.push(t, Internal::FlowDone(id, gen));
                    }
                    self.mark_flow_links_dirty(id);
                    self.refill();
                    return Some(SimEvent::TransferDone { token, at: t });
                }
                Internal::Completion(version) => {
                    if version != self.completion_version {
                        continue; // stale schedule
                    }
                    self.advance_flows();
                    if let Some(ev) = self.harvest_one() {
                        return Some(ev);
                    }
                    self.reallocate();
                }
                Internal::Aborted(id) => {
                    let token = self.flows[id].take_token();
                    return Some(SimEvent::TransferAborted { token, at: t });
                }
                Internal::Fault(action) => {
                    // Silent: apply and keep looking for a user event.
                    self.apply_fault(action);
                }
            }
        }
    }

    /// Runs to quiescence, collecting every event.
    pub fn drain(&mut self) -> Vec<SimEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.step() {
            out.push(ev);
        }
        out
    }

    fn push(&mut self, at: SimTime, payload: Internal) {
        let pid = match self.free_pids.pop() {
            Some(pid) => {
                self.payloads[pid as usize] = Some(payload);
                pid
            }
            None => {
                self.payloads.push(Some(payload));
                (self.payloads.len() - 1) as u64
            }
        };
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, pid)));
    }

    /// True when the next queued event is an *activation*: a
    /// LatencyDone at the current instant for a flow that will actually
    /// join the fluid phase (not aborted, not zero-byte). Rates
    /// recomputed now would be overwritten by that activation before
    /// any time passes or any caller code runs, so the current handler
    /// may skip its own filling.
    fn next_is_same_instant_activation(&self) -> bool {
        let Some(&Reverse((t, _, pid))) = self.queue.peek() else {
            return false;
        };
        if t != self.now {
            return false;
        }
        match self.payloads[pid as usize] {
            Some(Internal::LatencyDone(id)) => {
                let f = &self.flows[id];
                !f.aborted && f.remaining > EPS_BYTES
            }
            _ => false,
        }
    }

    /// Integrates flow progress from `last_advance` to `now` (exact
    /// mode; incremental mode integrates lazily per flow).
    fn advance_flows(&mut self) {
        let dt = self.now.duration_since(self.last_advance).as_secs();
        if dt > 0.0 {
            let mut cur = self.live_head;
            while cur != NONE {
                let f = &mut self.flows[cur as usize];
                cur = f.live_next;
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_advance = self.now;
    }

    /// First live flow (in activation order) that has drained.
    fn first_drained_live(&self) -> Option<usize> {
        let mut cur = self.live_head;
        while cur != NONE {
            let f = &self.flows[cur as usize];
            if f.remaining <= EPS_BYTES {
                return Some(cur as usize);
            }
            cur = f.live_next;
        }
        None
    }

    /// Completes one finished flow clone, if any (one at a time so
    /// every completion surfaces as its own event; a Completion event
    /// is rescheduled at the same instant for simultaneous finishers).
    fn harvest_one(&mut self) -> Option<SimEvent> {
        let id = self.first_drained_live()?;
        let flow = &mut self.flows[id];
        let token = flow.take_token();
        flow.active_clones -= 1;
        self.draining_clones -= 1;
        if self.flows[id].down_links > 0 {
            self.stalled_clones -= 1;
        }
        if self.flows[id].active_clones == 0 {
            self.flows[id].draining = false;
            self.live_unlink(id);
        }
        if self.flows[id].done {
            self.unindex_flow(id);
        }
        if self.coalesce_completions && self.first_drained_live().is_some() {
            // More drained flows are pending. Exact mode recomputes the
            // filling per harvest: a drained flow still holding a rate
            // completes at `remaining / rate` — a sub-picosecond but
            // nonzero residual — so the wave drains as a cascade of
            // distinct instants. Coalescing collapses that cascade:
            // harvest the whole wave at this instant with one immediate
            // Completion per finisher and a single filling at the end.
            self.bump_completion_schedule(Some(SimDuration::ZERO));
        } else {
            self.reallocate();
        }
        Some(SimEvent::TransferDone {
            token,
            at: self.now,
        })
    }

    /// Progressive-filling (max-min) rate allocation with per-flow caps,
    /// then schedules the next completion event.
    ///
    /// Merged flows enter the filling with their clone count as weight,
    /// which reproduces the arithmetic of the clones as separate flows
    /// exactly (equal deltas to identical flows, identical freezes).
    fn reallocate(&mut self) {
        if self.frozen_stamp.len() < self.flows.len() {
            self.frozen_stamp.resize(self.flows.len(), 0);
        }
        {
            let mut cur = self.live_head;
            while cur != NONE {
                let f = &mut self.flows[cur as usize];
                cur = f.live_next;
                f.rate = 0.0;
            }
        }
        // Flows crossing a down link stall at rate zero and take no part
        // in the filling; they resume when the link comes back up.
        let mut active = std::mem::take(&mut self.scratch_active);
        active.clear();
        {
            let mut cur = self.live_head;
            while cur != NONE {
                let i = cur as usize;
                let f = &self.flows[i];
                cur = f.live_next;
                if f.down_links == 0 {
                    active.push(i);
                }
            }
        }
        if active.is_empty() {
            self.scratch_active = active;
            // Only already-drained flows (remaining ~ 0) can still
            // complete; stalled ones wait for a link-up.
            let drained = self.first_drained_live().is_some();
            self.bump_completion_schedule(drained.then_some(SimDuration::ZERO));
            return;
        }
        self.fillings += 1;
        self.frontier_flows += active.len() as u64;
        self.telemetry.add_counter("engine.fillings", 1.0);
        self.telemetry
            .add_counter("engine.frontier_flows", active.len() as f64);
        self.stamp += 1;
        let stamp = self.stamp;
        // Only links carrying active flows matter; everything else has
        // no contention to resolve. First-seen order with stamp dedup —
        // no sort; the filling arithmetic below is per-link independent
        // and its `min` folds are order-insensitive, so the hot-set
        // order never shows in the allocated rates.
        let mut hot = std::mem::take(&mut self.scratch_hot);
        hot.clear();
        for &f in &active {
            let fl = &self.flows[f];
            let (start, len) = (fl.links_start as usize, fl.links_len as usize);
            for i in start..start + len {
                let li = self.flow_links[i].0;
                if self.hot_stamp[li] != stamp {
                    self.hot_stamp[li] = stamp;
                    self.link_pos[li] = hot.len() as u32;
                    hot.push(li);
                }
            }
        }
        // residual[k] tracks hot[k].
        let mut residual = std::mem::take(&mut self.scratch_residual);
        residual.clear();
        for &li in &hot {
            residual
                .push(self.cluster.links()[li].capacity.as_bytes_per_sec() * self.links[li].factor);
        }
        let mut unfrozen = std::mem::take(&mut self.scratch_unfrozen);
        unfrozen.clear();
        unfrozen.extend_from_slice(&active);
        let mut counts = std::mem::take(&mut self.scratch_counts);
        // Progressive filling: raise all unfrozen flows equally until a
        // link saturates or a flow hits its cap; freeze and repeat.
        while !unfrozen.is_empty() {
            counts.clear();
            counts.resize(hot.len(), 0);
            for &f in &unfrozen {
                let w = self.flows[f].active_clones as usize;
                for l in self.links_of(f) {
                    counts[self.link_pos[l.0] as usize] += w;
                }
            }
            let mut delta = f64::INFINITY;
            for (k, &n) in counts.iter().enumerate() {
                if n > 0 {
                    delta = delta.min(residual[k] / n as f64);
                }
            }
            for &f in &unfrozen {
                delta = delta.min(self.flows[f].cap - self.flows[f].rate);
            }
            if !delta.is_finite() || delta < 0.0 {
                break;
            }
            for &f in &unfrozen {
                self.flows[f].rate += delta;
            }
            for (k, &n) in counts.iter().enumerate() {
                residual[k] -= delta * n as f64;
            }
            // Freeze flows on saturated links or at their cap. The
            // epsilons are relative to the limit they guard: the dust
            // `residual -= delta * n` leaves on a saturated link scales
            // with the link's capacity (~1e-5 B/s on a 100 GB/s pod
            // uplink), so an absolute threshold either misses it —
            // leaving the iteration with nothing to freeze and the
            // stall guard below deflating every still-rising flow to
            // the bottleneck share — or would misfire on slow links.
            let mut froze = 0usize;
            for &f in &unfrozen {
                let cap = self.flows[f].cap;
                let at_cap = self.flows[f].rate >= cap - (cap * 1e-9).max(1e-6);
                let on_sat = self
                    .links_of(f)
                    .iter()
                    .any(|l| residual[self.link_pos[l.0] as usize] <= self.sat_eps(l.0));
                if at_cap || on_sat {
                    self.frozen_stamp[f] = stamp;
                    froze += 1;
                }
            }
            if froze == 0 {
                // Numerical stall guard: freeze everything.
                for &f in &unfrozen {
                    self.frozen_stamp[f] = stamp;
                }
            }
            let fs = &self.frozen_stamp;
            unfrozen.retain(|&f| fs[f] != stamp);
        }
        // Next completion: earliest remaining/rate among draining flows
        // (stalled flows have rate 0 and only count if already drained).
        let mut next: Option<SimDuration> = None;
        let mut cur = self.live_head;
        while cur != NONE {
            let f = &self.flows[cur as usize];
            cur = f.live_next;
            if f.rate > 0.0 {
                let dt = SimDuration::from_secs((f.remaining / f.rate).max(0.0));
                next = Some(match next {
                    Some(cur) if cur <= dt => cur,
                    _ => dt,
                });
            } else if f.remaining <= EPS_BYTES {
                next = Some(SimDuration::ZERO);
            }
        }
        self.scratch_active = active;
        self.scratch_hot = hot;
        self.scratch_residual = residual;
        self.scratch_counts = counts;
        self.scratch_unfrozen = unfrozen;
        self.bump_completion_schedule(next);
    }

    fn bump_completion_schedule(&mut self, after: Option<SimDuration>) {
        self.completion_version += 1;
        if let Some(d) = after {
            let v = self.completion_version;
            self.push(self.now + d, Internal::Completion(v));
        }
    }

    // ---- intrusive live list ----

    fn live_push_back(&mut self, id: usize) {
        let id32 = id as u32;
        let prev = self.live_tail;
        {
            let f = &mut self.flows[id];
            f.live_prev = prev;
            f.live_next = NONE;
        }
        if prev == NONE {
            self.live_head = id32;
        } else {
            self.flows[prev as usize].live_next = id32;
        }
        self.live_tail = id32;
        self.live_len += 1;
    }

    fn live_unlink(&mut self, id: usize) {
        let (prev, next) = {
            let f = &self.flows[id];
            (f.live_prev, f.live_next)
        };
        if prev == NONE {
            self.live_head = next;
        } else {
            self.flows[prev as usize].live_next = next;
        }
        if next == NONE {
            self.live_tail = prev;
        } else {
            self.flows[next as usize].live_prev = prev;
        }
        let f = &mut self.flows[id];
        f.live_prev = NONE;
        f.live_next = NONE;
        self.live_len -= 1;
    }

    // ---- per-link occupancy index ----

    fn index_flow(&mut self, id: usize) {
        let (start, len) = {
            let f = &self.flows[id];
            (f.links_start as usize, f.links_len as usize)
        };
        for k in start..start + len {
            let li = self.flow_links[k].0;
            self.slot_pos[k] = self.link_flows[li].len() as u32;
            self.link_flows[li].push((id as u32, (k - start) as u32));
        }
        self.flows[id].indexed = true;
    }

    fn unindex_flow(&mut self, id: usize) {
        if !self.flows[id].indexed {
            return;
        }
        self.flows[id].indexed = false;
        let (start, len) = {
            let f = &self.flows[id];
            (f.links_start as usize, f.links_len as usize)
        };
        for k in start..start + len {
            let li = self.flow_links[k].0;
            let pos = self.slot_pos[k] as usize;
            let last = self.link_flows[li].pop().expect("occupancy entry present");
            if pos < self.link_flows[li].len() {
                // Swap-remove: fix the moved entry's back-pointer.
                self.link_flows[li][pos] = last;
                let (mf, ms) = last;
                let mstart = self.flows[mf as usize].links_start as usize;
                self.slot_pos[mstart + ms as usize] = pos as u32;
            }
        }
    }

    // ---- stall bookkeeping shared by both modes ----

    /// Updates per-flow down-link counters (and the stalled counter)
    /// after `link`'s transient availability flipped to `up`. In
    /// incremental mode this is also where stalling flows give their
    /// rate back (syncing their residual first) and where unstalling
    /// flows join the dirty frontier.
    fn note_link_transition(&mut self, li: usize, up: bool) {
        let mut ei = 0;
        while ei < self.link_flows[li].len() {
            let (fid, _) = self.link_flows[li][ei];
            ei += 1;
            let fid = fid as usize;
            if !self.flows[fid].draining {
                continue;
            }
            if up {
                self.flows[fid].down_links -= 1;
                if self.flows[fid].down_links == 0 {
                    self.stalled_clones -= self.flows[fid].active_clones as usize;
                    if self.incremental {
                        // Unstall: the refill assigns a fresh rate and
                        // schedules the completion.
                        self.mark_flow_links_dirty(fid);
                    }
                }
            } else {
                self.flows[fid].down_links += 1;
                if self.flows[fid].down_links == 1 {
                    self.stalled_clones += self.flows[fid].active_clones as usize;
                    if self.incremental {
                        self.sync_flow(fid);
                        let f = &mut self.flows[fid];
                        f.rate = 0.0;
                        f.fill_gen += 1;
                        let gen = f.fill_gen;
                        let drained = f.remaining <= EPS_BYTES;
                        if drained {
                            // Already-drained flows complete even while
                            // stalled (matches the exact engine).
                            self.push(self.now, Internal::FlowDone(fid, gen));
                        }
                        // Its departure frees share for its neighbours.
                        self.mark_flow_links_dirty(fid);
                    }
                }
            }
        }
    }

    // ---- incremental allocator ----

    /// Integrates one flow's residual up to `now` at its current rate.
    fn sync_flow(&mut self, id: usize) {
        let now = self.now;
        let f = &mut self.flows[id];
        let dt = now.duration_since(f.synced_at).as_secs();
        if dt > 0.0 && f.rate > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.synced_at = now;
    }

    fn mark_link_dirty(&mut self, li: usize) {
        if self.dirty_stamp[li] != self.dirty_epoch {
            self.dirty_stamp[li] = self.dirty_epoch;
            self.dirty_links.push(li);
        }
    }

    fn mark_flow_links_dirty(&mut self, id: usize) {
        let (start, len) = {
            let f = &self.flows[id];
            (f.links_start as usize, f.links_len as usize)
        };
        for k in start..start + len {
            let li = self.flow_links[k].0;
            self.mark_link_dirty(li);
        }
    }

    fn mark_all_live_dirty(&mut self) {
        let mut cur = self.live_head;
        while cur != NONE {
            let i = cur as usize;
            cur = self.flows[i].live_next;
            self.mark_flow_links_dirty(i);
        }
    }

    /// Incremental-mode filling entry: refills every connected flow
    /// component reachable from the accumulated dirty links. In debug
    /// builds, cross-checks the result against a from-scratch refill
    /// of every live component (the paranoid reference): any rate-bit
    /// divergence panics.
    fn refill(&mut self) {
        debug_assert!(self.incremental);
        if self.paranoid {
            self.mark_all_live_dirty();
        }
        self.refill_dirty();
        #[cfg(debug_assertions)]
        {
            if !self.paranoid && !self.checking {
                self.checking = true;
                self.mark_all_live_dirty();
                self.refill_dirty();
                self.checking = false;
                debug_assert_eq!(
                    self.draining_clones,
                    self.flows
                        .iter()
                        .filter(|f| f.draining)
                        .map(|f| f.active_clones as usize)
                        .sum::<usize>(),
                    "draining counter out of sync"
                );
                debug_assert_eq!(
                    self.stalled_clones,
                    self.flows
                        .iter()
                        .filter(|f| f.draining && f.down_links > 0)
                        .map(|f| f.active_clones as usize)
                        .sum::<usize>(),
                    "stalled counter out of sync"
                );
            }
        }
    }

    /// Walks the dirty frontier: discovers each touched connected
    /// component over the link<->flow bipartite graph (stalled flows
    /// excluded — they hold no rate) and refills it.
    fn refill_dirty(&mut self) {
        if self.dirty_links.is_empty() {
            return;
        }
        if self.visit_flow_stamp.len() < self.flows.len() {
            self.visit_flow_stamp.resize(self.flows.len(), 0);
        }
        self.stamp += 1;
        let vstamp = self.stamp;
        let dirty = std::mem::take(&mut self.dirty_links);
        for &seed in &dirty {
            if self.visit_link_stamp[seed] == vstamp {
                continue; // already swept into an earlier component
            }
            self.visit_link_stamp[seed] = vstamp;
            let mut comp_links = std::mem::take(&mut self.comp_links);
            let mut comp_flows = std::mem::take(&mut self.comp_flows);
            comp_links.clear();
            comp_flows.clear();
            comp_links.push(seed);
            let mut qi = 0;
            while qi < comp_links.len() {
                let l = comp_links[qi];
                qi += 1;
                let mut ei = 0;
                while ei < self.link_flows[l].len() {
                    let (fid, _) = self.link_flows[l][ei];
                    ei += 1;
                    let fid = fid as usize;
                    if self.visit_flow_stamp[fid] == vstamp {
                        continue;
                    }
                    let (draining, down, start, len) = {
                        let f = &self.flows[fid];
                        (
                            f.draining,
                            f.down_links,
                            f.links_start as usize,
                            f.links_len as usize,
                        )
                    };
                    if !draining || down > 0 {
                        continue;
                    }
                    self.visit_flow_stamp[fid] = vstamp;
                    comp_flows.push(fid);
                    for k in start..start + len {
                        let li = self.flow_links[k].0;
                        if self.visit_link_stamp[li] != vstamp {
                            self.visit_link_stamp[li] = vstamp;
                            comp_links.push(li);
                        }
                    }
                }
            }
            self.comp_links = comp_links;
            self.comp_flows = comp_flows;
            if !self.comp_flows.is_empty() {
                self.fill_component();
            }
        }
        self.dirty_links = dirty;
        self.dirty_links.clear();
        self.dirty_epoch += 1;
    }

    /// Progressive filling over one connected component
    /// (`self.comp_flows`) — the same arithmetic as `reallocate`'s
    /// loop, scoped to the component — then (re)schedules completion
    /// events for every flow whose rate bits moved. Rates of flows
    /// outside the component are untouched by construction, which is
    /// what makes the frontier refill bit-identical to a from-scratch
    /// per-component recompute.
    fn fill_component(&mut self) {
        if self.frozen_stamp.len() < self.flows.len() {
            self.frozen_stamp.resize(self.flows.len(), 0);
        }
        let comp = std::mem::take(&mut self.comp_flows);
        if !self.checking {
            self.fillings += 1;
            self.frontier_flows += comp.len() as u64;
            self.telemetry.add_counter("engine.fillings", 1.0);
            self.telemetry
                .add_counter("engine.frontier_flows", comp.len() as f64);
        }
        let mut old_rates = std::mem::take(&mut self.scratch_old_rates);
        old_rates.clear();
        for &f in &comp {
            old_rates.push(self.flows[f].rate);
            self.flows[f].rate = 0.0;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let mut hot = std::mem::take(&mut self.scratch_hot);
        hot.clear();
        for &f in &comp {
            let (start, len) = {
                let fl = &self.flows[f];
                (fl.links_start as usize, fl.links_len as usize)
            };
            for i in start..start + len {
                let li = self.flow_links[i].0;
                if self.hot_stamp[li] != stamp {
                    self.hot_stamp[li] = stamp;
                    self.link_pos[li] = hot.len() as u32;
                    hot.push(li);
                }
            }
        }
        let mut residual = std::mem::take(&mut self.scratch_residual);
        residual.clear();
        for &li in &hot {
            residual
                .push(self.cluster.links()[li].capacity.as_bytes_per_sec() * self.links[li].factor);
        }
        let mut unfrozen = std::mem::take(&mut self.scratch_unfrozen);
        unfrozen.clear();
        unfrozen.extend_from_slice(&comp);
        let mut counts = std::mem::take(&mut self.scratch_counts);
        while !unfrozen.is_empty() {
            counts.clear();
            counts.resize(hot.len(), 0);
            for &f in &unfrozen {
                let w = self.flows[f].active_clones as usize;
                for l in self.links_of(f) {
                    counts[self.link_pos[l.0] as usize] += w;
                }
            }
            let mut delta = f64::INFINITY;
            for (k, &n) in counts.iter().enumerate() {
                if n > 0 {
                    delta = delta.min(residual[k] / n as f64);
                }
            }
            for &f in &unfrozen {
                delta = delta.min(self.flows[f].cap - self.flows[f].rate);
            }
            if !delta.is_finite() || delta < 0.0 {
                break;
            }
            for &f in &unfrozen {
                self.flows[f].rate += delta;
            }
            for (k, &n) in counts.iter().enumerate() {
                residual[k] -= delta * n as f64;
            }
            // Same capacity-relative freeze epsilons as `reallocate` —
            // the two fillings must agree bit for bit.
            let mut froze = 0usize;
            for &f in &unfrozen {
                let cap = self.flows[f].cap;
                let at_cap = self.flows[f].rate >= cap - (cap * 1e-9).max(1e-6);
                let on_sat = self
                    .links_of(f)
                    .iter()
                    .any(|l| residual[self.link_pos[l.0] as usize] <= self.sat_eps(l.0));
                if at_cap || on_sat {
                    self.frozen_stamp[f] = stamp;
                    froze += 1;
                }
            }
            if froze == 0 {
                for &f in &unfrozen {
                    self.frozen_stamp[f] = stamp;
                }
            }
            let fs = &self.frozen_stamp;
            unfrozen.retain(|&f| fs[f] != stamp);
        }
        // Completion events: only flows whose rate bits moved need a
        // resync and a fresh FlowDone — everything else keeps its
        // already-scheduled instant, bit for bit.
        let now = self.now;
        for (k, &f) in comp.iter().enumerate() {
            let old = old_rates[k];
            let new = self.flows[f].rate;
            if new.to_bits() == old.to_bits() {
                continue;
            }
            assert!(
                !self.checking,
                "incremental filling diverged from full recompute: \
                 flow {f} rate {new:e} (expected {old:e})"
            );
            let fl = &mut self.flows[f];
            let dt = now.duration_since(fl.synced_at).as_secs();
            if dt > 0.0 && old > 0.0 {
                fl.remaining = (fl.remaining - old * dt).max(0.0);
            }
            fl.synced_at = now;
            fl.fill_gen += 1;
            let gen = fl.fill_gen;
            if new > 0.0 {
                let dt_done = SimDuration::from_secs((fl.remaining / new).max(0.0));
                self.push(now + dt_done, Internal::FlowDone(f, gen));
            } else if fl.remaining <= EPS_BYTES {
                self.push(now, Internal::FlowDone(f, gen));
            }
        }
        self.comp_flows = comp;
        self.scratch_old_rates = old_rates;
        self.scratch_hot = hot;
        self.scratch_residual = residual;
        self.scratch_unfrozen = unfrozen;
        self.scratch_counts = counts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterBuilder, InstanceId, Rank};
    use crate::hardware::InstanceSpec;
    use crate::units::Bandwidth;

    fn two_a100() -> Cluster {
        Cluster::homogeneous_a100(2)
    }

    #[test]
    fn single_transfer_matches_alpha_beta() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.intra_path(Rank(0), Rank(1));
        let size = ByteSize::from_mib(100);
        sim.submit_transfer(&path, size, 1);
        let ev = sim.step().unwrap();
        let alpha = c.path_alpha(&path).as_secs();
        let bw = c.link(path.links[0]).capacity.as_bytes_per_sec();
        let expect = alpha + size.as_f64() / bw;
        assert!((ev.at().as_secs() - expect).abs() < 1e-9);
        assert!(sim.step().is_none());
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        // Both flows cross instance 0's egress port.
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(125); // at 12.5 GB/s: 10.49ms alone
        sim.submit_transfer(&path, size, 1);
        sim.submit_transfer(&path, size, 2);
        let evs = sim.drain();
        assert_eq!(evs.len(), 2);
        let solo = size.as_f64() / Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let last = evs.last().unwrap().at().as_secs();
        // Equal sharing: both finish together at ~2x the solo time.
        assert!((last / (2.0 * solo) - 1.0).abs() < 0.01, "last={last}");
        let first = evs[0].at().as_secs();
        assert!((first - last).abs() < 1e-6);
    }

    #[test]
    fn early_finisher_releases_bandwidth() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(50), 1);
        sim.submit_transfer(&path, ByteSize::from_mib(150), 2);
        let evs = sim.drain();
        assert_eq!(evs[0].token(), 1);
        assert_eq!(evs[1].token(), 2);
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        // Flow 1: 50 MiB at bw/2. Flow 2: 50 MiB at bw/2 then 100 MiB at bw.
        let t1 = ByteSize::from_mib(50).as_f64() / (bw / 2.0);
        let t2 = t1 + ByteSize::from_mib(100).as_f64() / bw;
        assert!((evs[0].at().as_secs() - t1).abs() / t1 < 0.01);
        assert!((evs[1].at().as_secs() - t2).abs() / t2 < 0.01);
    }

    #[test]
    fn per_flow_cap_limits_tcp_stream() {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server().with_tcp(), 2);
        let c = b.build();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        sim.submit_transfer(&path, size, 1);
        let ev = sim.step().unwrap();
        let capped = size.as_f64() / Bandwidth::from_gbps(20.0).as_bytes_per_sec();
        let dur = ev.at().as_secs() - c.path_alpha(&path).as_secs();
        assert!(
            (dur - capped).abs() / capped < 0.01,
            "dur={dur} capped={capped}"
        );
    }

    #[test]
    fn concurrent_group_flows_share_one_timeline() {
        // Two process groups (one cross-server ring per local GPU
        // slot on a fat tree) run their transfers in the SAME engine
        // timeline: their flows meet on the shared server uplinks and
        // split them by eq. 3 equal share, exactly as two solo runs
        // at half bandwidth — no cross-group event loss or reordering.
        let c = Cluster::fat_tree(2, 2);
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        // Group A = slot-0 ranks, group B = slot-1 ranks; both cross
        // the same NIC pair in the same direction at t=0.
        sim.submit_transfer(&path, size, 0xA);
        sim.submit_transfer(&path, size, 0xB);
        let together = sim.drain();
        assert_eq!(together.len(), 2, "both groups' transfers complete");
        let tokens: Vec<Token> = together.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![0xA, 0xB]);
        // Solo timeline for one group on the same fabric.
        let mut solo = NetSim::new(&c);
        solo.submit_transfer(&path, size, 0xA);
        let alone = solo.drain()[0].at().as_secs();
        let alpha = c.path_alpha(&path).as_secs();
        let shared = together.last().unwrap().at().as_secs();
        // Contended serial time = alpha + 2x the solo drain time.
        let expect = alpha + 2.0 * (alone - alpha);
        assert!(
            (shared - expect).abs() / expect < 0.01,
            "shared={shared} expect={expect}"
        );
        // Flow conservation: staggering group B by a timer tick still
        // delivers every byte of both groups, in submission order per
        // group, on one monotone clock.
        let mut stag = NetSim::new(&c);
        stag.submit_transfer(&path, size, 0xA);
        stag.schedule_timer(SimDuration::from_millis(1.0), 0xF1);
        let mut events = Vec::new();
        while let Some(ev) = stag.step() {
            if matches!(ev, SimEvent::Timer { token: 0xF1, .. }) {
                stag.submit_transfer(&path, size, 0xB);
            }
            events.push(ev);
        }
        let done: Vec<Token> = events
            .iter()
            .filter(|e| matches!(e, SimEvent::TransferDone { .. }))
            .map(|e| e.token())
            .collect();
        assert_eq!(done, vec![0xA, 0xB]);
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn parallel_tcp_streams_aggregate_past_the_cap() {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server().with_tcp(), 2);
        let c = b.build();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        for t in 0..4 {
            sim.submit_transfer(&path, size, t);
        }
        let evs = sim.drain();
        // Four 20 Gbps streams on a 100 Gbps port: all run at cap,
        // aggregate 80 Gbps; same finish as one stream alone.
        let capped = size.as_f64() / Bandwidth::from_gbps(20.0).as_bytes_per_sec();
        let last = evs.last().unwrap().at().as_secs() - c.path_alpha(&path).as_secs();
        assert!((last - capped).abs() / capped < 0.02, "last={last}");
    }

    #[test]
    fn capacity_factor_slows_flow() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.set_capacity_factor(eg, 0.5);
        let size = ByteSize::from_mib(100);
        sim.submit_transfer(&path, size, 1);
        let ev = sim.step().unwrap();
        let slowed = size.as_f64() / (Bandwidth::from_gbps(100.0).as_bytes_per_sec() * 0.5);
        let dur = ev.at().as_secs() - c.path_alpha(&path).as_secs();
        assert!((dur - slowed).abs() / slowed < 0.01);
    }

    #[test]
    fn mid_flight_capacity_change_is_integrated() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        sim.submit_transfer(&path, size, 1);
        // Halve the link when roughly half the bytes are through.
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let half = size.as_f64() / 2.0 / bw;
        sim.schedule_timer(
            SimDuration::from_secs(half + c.path_alpha(&path).as_secs()),
            99,
        );
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::Timer { token: 99, .. }));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.set_capacity_factor(eg, 0.5);
        let done = sim.step().unwrap();
        let expect = c.path_alpha(&path).as_secs() + half + (size.as_f64() / 2.0) / (bw * 0.5);
        assert!(
            (done.at().as_secs() - expect).abs() / expect < 0.01,
            "got {} want {expect}",
            done.at().as_secs()
        );
    }

    #[test]
    fn zero_byte_transfer_completes_after_latency() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::ZERO, 5);
        let ev = sim.step().unwrap();
        assert_eq!(ev.token(), 5);
        let alpha = c.path_alpha(&path).as_secs();
        assert!((ev.at().as_secs() - alpha).abs() < 1e-12);
    }

    #[test]
    fn timers_and_transfers_interleave_in_time_order() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 1);
        sim.schedule_timer(SimDuration::from_micros(1.0), 2);
        sim.schedule_timer(SimDuration::from_secs(10.0), 3);
        let evs = sim.drain();
        let tokens: Vec<u64> = evs.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![2, 1, 3]);
        let times: Vec<f64> = evs.iter().map(|e| e.at().as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn multi_hop_flow_bottlenecked_by_slowest_link() {
        // Cross-switch PCIe path: bottleneck is a Gen4 x16 hop (32 GB/s);
        // the inter-socket link is 35 GB/s so PCIe binds.
        let spec = InstanceSpec::a100_server().with_nvlink(crate::hardware::NvlinkTopology::None);
        let mut b = ClusterBuilder::new();
        b.add_instance(spec);
        let c = b.build();
        let mut sim = NetSim::new(&c);
        let path = c.intra_path(Rank(0), Rank(3));
        let size = ByteSize::from_mib(320);
        sim.submit_transfer(&path, size, 1);
        let ev = sim.step().unwrap();
        let dur = ev.at().as_secs() - c.path_alpha(&path).as_secs();
        let bottleneck = size.as_f64() / Bandwidth::from_gbytes_per_sec(32.0).as_bytes_per_sec();
        assert!((dur - bottleneck).abs() / bottleneck < 0.01);
    }

    #[test]
    fn link_down_stalls_then_resumes() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let alpha = c.path_alpha(&path).as_secs();
        let half = size.as_f64() / 2.0 / bw;
        let eg = c.nic_egress_link(InstanceId(0));
        sim.submit_transfer(&path, size, 1);
        // Down for 10 ms starting at the halfway point.
        let outage = 0.010;
        sim.schedule_fault(
            SimDuration::from_secs(alpha + half),
            FaultAction::LinkDown(eg),
        );
        sim.schedule_fault(
            SimDuration::from_secs(alpha + half + outage),
            FaultAction::LinkUp(eg),
        );
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { token: 1, .. }));
        let expect = alpha + 2.0 * half + outage;
        assert!(
            (ev.at().as_secs() - expect).abs() / expect < 0.01,
            "got {} want {expect}",
            ev.at().as_secs()
        );
    }

    #[test]
    fn down_link_quiesces_without_completing() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.submit_transfer(&path, ByteSize::from_mib(100), 1);
        sim.schedule_fault(SimDuration::from_millis(1.0), FaultAction::LinkDown(eg));
        // The flow stalls forever: the sim quiesces with the flow live.
        assert!(sim.step().is_none());
        assert_eq!(sim.stalled_flows(), 1);
        assert!(!sim.link_is_up(eg));
        assert!(!sim.link_is_failed(eg));
        // Bringing the link back finishes the transfer.
        sim.set_link_up(eg, true);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { token: 1, .. }));
    }

    #[test]
    fn fail_link_aborts_in_flight_flow() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        let fail_at = SimDuration::from_millis(2.0);
        sim.submit_transfer(&path, ByteSize::from_mib(100), 7);
        sim.schedule_fault(fail_at, FaultAction::LinkFail(eg));
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferAborted { token: 7, .. }));
        assert!((ev.at().as_secs() - fail_at.as_secs()).abs() < 1e-9);
        assert!(sim.link_is_failed(eg));
        assert!(sim.step().is_none());
        // Failed links never come back.
        sim.set_link_up(eg, true);
        assert!(!sim.link_is_up(eg));
    }

    #[test]
    fn recover_link_revives_future_submissions() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 1);
        sim.fail_link(eg);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferAborted { token: 1, .. }));
        // Repair: the failure clears and new traffic drains normally.
        sim.recover_link(eg);
        assert!(!sim.link_is_failed(eg));
        assert!(sim.link_is_up(eg));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 2);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { token: 2, .. }));
        // The earlier abort is not retroactively undone.
        assert!(sim.step().is_none());
    }

    #[test]
    fn scheduled_recovery_lets_a_late_submission_finish() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let eg = c.nic_egress_link(InstanceId(0));
        sim.fail_link(eg);
        sim.schedule_fault(SimDuration::from_millis(1.0), FaultAction::LinkRecover(eg));
        // Submitted while failed, but recovery fires before the flow's
        // latency elapses only if the engine re-checks at drain time —
        // it does not, so this one aborts...
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 1);
        let evs = sim.drain();
        assert!(matches!(evs[0], SimEvent::TransferAborted { token: 1, .. }));
        // ...while a post-recovery submission completes.
        assert!(!sim.link_is_failed(eg));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 2);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { token: 2, .. }));
    }

    #[test]
    fn submission_over_failed_link_aborts_after_latency() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        sim.fail_link(c.nic_egress_link(InstanceId(0)));
        sim.submit_transfer(&path, ByteSize::from_mib(10), 3);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferAborted { token: 3, .. }));
        let alpha = c.path_alpha(&path).as_secs();
        assert!((ev.at().as_secs() - alpha).abs() < 1e-12);
    }

    #[test]
    fn fail_link_spares_disjoint_flows() {
        let c = Cluster::homogeneous_a100(3);
        let mut sim = NetSim::new(&c);
        let doomed = c.net_path(InstanceId(0), InstanceId(1));
        let spared = c.net_path(InstanceId(2), InstanceId(1));
        sim.submit_transfer(&doomed, ByteSize::from_mib(50), 1);
        sim.submit_transfer(&spared, ByteSize::from_mib(50), 2);
        sim.schedule_fault(
            SimDuration::from_millis(1.0),
            FaultAction::LinkFail(c.nic_egress_link(InstanceId(0))),
        );
        let evs = sim.drain();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], SimEvent::TransferAborted { token: 1, .. }));
        assert!(matches!(evs[1], SimEvent::TransferDone { token: 2, .. }));
    }

    #[test]
    fn scheduled_degradation_matches_manual_factor_change() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let half = size.as_f64() / 2.0 / bw;
        let eg = c.nic_egress_link(InstanceId(0));
        sim.schedule_fault(
            SimDuration::from_secs(half + c.path_alpha(&path).as_secs()),
            FaultAction::SetCapacityFactor(eg, 0.5),
        );
        sim.submit_transfer(&path, size, 1);
        let done = sim.step().unwrap();
        let expect = c.path_alpha(&path).as_secs() + half + (size.as_f64() / 2.0) / (bw * 0.5);
        assert!(
            (done.at().as_secs() - expect).abs() / expect < 0.01,
            "got {} want {expect}",
            done.at().as_secs()
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let c = two_a100();
            let mut sim = NetSim::new(&c);
            let path = c.net_path(InstanceId(0), InstanceId(1));
            for t in 0..8 {
                sim.submit_transfer(&path, ByteSize::from_mib(10 + t), t);
            }
            sim.drain()
                .into_iter()
                .map(|e| (e.token(), e.at().as_secs().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn identical_submissions_merge_into_one_flow() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(100);
        for t in 0..4 {
            sim.submit_transfer(&path, size, t);
        }
        // One merged flow carries all four tokens...
        assert_eq!(sim.flows.len(), 1);
        assert_eq!(sim.flows[0].weight(), 4);
        let evs = sim.drain();
        // ...but each submission still gets its own event, in order,
        // at the time four separate equal-share flows would finish.
        assert_eq!(evs.len(), 4);
        let tokens: Vec<u64> = evs.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![0, 1, 2, 3]);
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let expect = c.path_alpha(&path).as_secs() + 4.0 * size.as_f64() / bw;
        for e in &evs {
            assert!(
                (e.at().as_secs() - expect).abs() / expect < 0.01,
                "got {} want {expect}",
                e.at().as_secs()
            );
        }
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn merge_requires_an_identical_back_to_back_submission() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let rev = c.net_path(InstanceId(1), InstanceId(0));
        // Different size: no merge.
        sim.submit_transfer(&path, ByteSize::from_mib(10), 1);
        sim.submit_transfer(&path, ByteSize::from_mib(20), 2);
        assert_eq!(sim.flows.len(), 2);
        // Different path: no merge.
        sim.submit_transfer(&rev, ByteSize::from_mib(20), 3);
        assert_eq!(sim.flows.len(), 3);
        // An intervening event (timer push) kills the window.
        sim.submit_transfer(&path, ByteSize::from_mib(20), 4);
        sim.schedule_timer(SimDuration::from_secs(100.0), 9);
        sim.submit_transfer(&path, ByteSize::from_mib(20), 5);
        assert_eq!(sim.flows.len(), 5);
        // Interleaving resets the batch: A A B A is three flows + one
        // merge, never a merge across B.
        let mut sim2 = NetSim::new(&c);
        sim2.submit_transfer(&path, ByteSize::from_mib(8), 1);
        sim2.submit_transfer(&path, ByteSize::from_mib(8), 2);
        sim2.submit_transfer(&rev, ByteSize::from_mib(8), 3);
        sim2.submit_transfer(&path, ByteSize::from_mib(8), 4);
        assert_eq!(sim2.flows.len(), 3);
    }

    #[test]
    fn merged_flows_abort_per_token() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.submit_transfer(&path, ByteSize::from_mib(100), 1);
        sim.submit_transfer(&path, ByteSize::from_mib(100), 2);
        assert_eq!(sim.flows.len(), 1);
        sim.schedule_fault(SimDuration::from_millis(2.0), FaultAction::LinkFail(eg));
        let evs = sim.drain();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], SimEvent::TransferAborted { token: 1, .. }));
        assert!(matches!(evs[1], SimEvent::TransferAborted { token: 2, .. }));
        assert_eq!(evs[0].at(), evs[1].at());
    }

    #[test]
    fn merged_zero_byte_transfers_emit_every_token() {
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        for t in 0..3 {
            sim.submit_transfer(&path, ByteSize::ZERO, t);
        }
        assert_eq!(sim.flows.len(), 1);
        let evs = sim.drain();
        assert_eq!(evs.len(), 3);
        let alpha = c.path_alpha(&path).as_secs();
        for (t, e) in evs.iter().enumerate() {
            assert_eq!(e.token(), t as u64);
            assert!((e.at().as_secs() - alpha).abs() < 1e-12);
        }
    }

    #[test]
    fn completion_coalescing_collapses_simultaneous_finishers() {
        // Two equal flows fanning in on the same server finish as one
        // wave. Coalescing must land the whole wave on a single
        // instant, keep the token order of the exact engine, stay
        // within a nanosecond of its times, and remain deterministic
        // across runs.
        let c = Cluster::homogeneous_a100(3);
        let size = ByteSize::from_mib(64);
        let run = |coalesce: bool| {
            let mut sim = NetSim::new(&c).with_completion_coalescing(coalesce);
            sim.submit_transfer(&c.net_path(InstanceId(0), InstanceId(1)), size, 1);
            sim.submit_transfer(&c.net_path(InstanceId(2), InstanceId(1)), size, 2);
            sim.drain()
        };
        let exact = run(false);
        let fast = run(true);
        assert_eq!(exact.len(), 2);
        assert_eq!(fast.len(), 2);
        let tokens = |evs: &[SimEvent]| evs.iter().map(SimEvent::token).collect::<Vec<_>>();
        assert_eq!(tokens(&exact), tokens(&fast));
        // The coalesced wave lands at a single instant...
        assert_eq!(fast[0].at(), fast[1].at());
        // ...within a nanosecond of the exact cascade...
        for (e, f) in exact.iter().zip(&fast) {
            assert!((e.at().as_secs() - f.at().as_secs()).abs() < 1e-9);
        }
        // ...and replays bit-identically.
        assert_eq!(fast, run(true));
    }

    /// Runs a scenario under both allocators and asserts identical
    /// token order with completion times within `tol` seconds.
    fn assert_modes_agree(c: &Cluster, tol: f64, scenario: impl Fn(&mut NetSim)) {
        let run = |incremental: bool| {
            let mut sim = NetSim::new(c).with_incremental_allocator(incremental);
            scenario(&mut sim);
            sim.drain()
                .into_iter()
                .map(|e| (e.token(), e.at().as_secs()))
                .collect::<Vec<_>>()
        };
        let exact = run(false);
        let inc = run(true);
        assert_eq!(exact.len(), inc.len(), "event counts differ");
        for ((te, ae), (ti, ai)) in exact.iter().zip(&inc) {
            assert_eq!(te, ti, "token order differs: exact {exact:?} inc {inc:?}");
            assert!(
                (ae - ai).abs() < tol,
                "token {te}: exact {ae} vs incremental {ai}"
            );
        }
    }

    #[test]
    fn incremental_matches_exact_on_contended_links() {
        let c = Cluster::homogeneous_a100(3);
        assert_modes_agree(&c, 1e-9, |sim| {
            let p01 = sim.cluster().net_path(InstanceId(0), InstanceId(1));
            let p21 = sim.cluster().net_path(InstanceId(2), InstanceId(1));
            sim.submit_transfer(&p01, ByteSize::from_mib(50), 1);
            sim.submit_transfer(&p01, ByteSize::from_mib(150), 2);
            sim.submit_transfer(&p21, ByteSize::from_mib(75), 3);
        });
    }

    /// Regression: progressive filling must freeze *only* the flows on
    /// a saturated constraint, even when `residual -= delta * n` leaves
    /// capacity-scaled floating-point dust behind. 11 flows sharing a
    /// 12.5 GB/s pod uplink produce a residual of ~1.9e-6 B/s at
    /// saturation — above the old absolute 1e-6 epsilon, so no flow
    /// froze and the stall guard froze the whole fleet mid-rise,
    /// deflating an unrelated NIC-bound flow to the bottleneck share
    /// (an 11x slowdown). The capacity-relative epsilon freezes the
    /// pod flows and lets the victim keep rising to its NIC rate.
    #[test]
    fn dusty_saturation_freezes_only_the_bottlenecked_flows() {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::dgx_a100(), 4);
        // Pods of 2 at oversubscription 2: pod uplink = 2 NICs / 2 =
        // one NIC's 12.5 GB/s, shared by all cross-pod flows.
        b.with_pod_size(2).with_oversubscription(2.0);
        let c = b.build();
        let run = |incremental: bool| {
            let mut sim = NetSim::new(&c).with_incremental_allocator(incremental);
            let cross = c.net_path(InstanceId(0), InstanceId(2));
            // Distinct sizes prevent same-instant clone merging: 11
            // separate flows contend on pod0's uplink.
            for i in 0..11u64 {
                sim.submit_transfer(&cross, ByteSize::from_kib(512 + i), i);
            }
            // The victim shares no link with the cross-pod flows (its
            // own egress NIC and ingress NIC) and must drain at the
            // full 12.5 GB/s NIC rate, not the 1.14 GB/s pod share.
            let victim = c.net_path(InstanceId(1), InstanceId(0));
            sim.submit_transfer(&victim, ByteSize::from_mib(1), 99);
            sim.drain()
                .into_iter()
                .find(|e| e.token() == 99)
                .expect("victim completes")
                .at()
                .as_secs()
        };
        let nic_rate = 12.5e9;
        let solo = ByteSize::from_mib(1).as_f64() / nic_rate;
        for incremental in [false, true] {
            let t = run(incremental);
            assert!(
                t < 3.0 * solo,
                "incremental={incremental}: victim took {t}s vs ~{solo}s solo \
                 — deflated by the fleet-wide stall guard"
            );
        }
    }

    #[test]
    fn incremental_matches_exact_under_faults() {
        let c = two_a100();
        let eg = c.nic_egress_link(InstanceId(0));
        assert_modes_agree(&c, 1e-9, |sim| {
            let path = sim.cluster().net_path(InstanceId(0), InstanceId(1));
            sim.submit_transfer(&path, ByteSize::from_mib(100), 1);
            sim.submit_transfer(&path, ByteSize::from_mib(40), 2);
            sim.schedule_fault(SimDuration::from_millis(1.0), FaultAction::LinkDown(eg));
            sim.schedule_fault(SimDuration::from_millis(9.0), FaultAction::LinkUp(eg));
            sim.schedule_fault(
                SimDuration::from_millis(12.0),
                FaultAction::SetCapacityFactor(eg, 0.5),
            );
        });
    }

    #[test]
    fn incremental_matches_exact_on_merged_weights() {
        let c = two_a100();
        assert_modes_agree(&c, 1e-9, |sim| {
            let path = sim.cluster().net_path(InstanceId(0), InstanceId(1));
            let size = ByteSize::from_mib(40);
            for t in 0..3 {
                sim.submit_transfer(&path, size, t);
            }
            sim.submit_transfer(&path, ByteSize::from_mib(10), 9);
        });
    }

    #[test]
    fn incremental_link_down_stalls_then_resumes() {
        let c = two_a100();
        let mut sim = NetSim::new(&c).with_incremental_allocator(true);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let eg = c.nic_egress_link(InstanceId(0));
        sim.submit_transfer(&path, ByteSize::from_mib(100), 1);
        sim.schedule_fault(SimDuration::from_millis(1.0), FaultAction::LinkDown(eg));
        // The flow stalls forever: the sim quiesces with the flow live.
        assert!(sim.step().is_none());
        assert_eq!(sim.stalled_flows(), 1);
        assert_eq!(sim.draining_flows(), 1);
        // Bringing the link back finishes the transfer.
        sim.set_link_up(eg, true);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::TransferDone { token: 1, .. }));
        assert_eq!(sim.stalled_flows(), 0);
        assert_eq!(sim.draining_flows(), 0);
    }

    #[test]
    fn incremental_fail_link_aborts_and_spares() {
        let c = Cluster::homogeneous_a100(3);
        let mut sim = NetSim::new(&c).with_incremental_allocator(true);
        let doomed = c.net_path(InstanceId(0), InstanceId(1));
        let spared = c.net_path(InstanceId(2), InstanceId(1));
        sim.submit_transfer(&doomed, ByteSize::from_mib(50), 1);
        sim.submit_transfer(&spared, ByteSize::from_mib(50), 2);
        sim.schedule_fault(
            SimDuration::from_millis(1.0),
            FaultAction::LinkFail(c.nic_egress_link(InstanceId(0))),
        );
        let evs = sim.drain();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], SimEvent::TransferAborted { token: 1, .. }));
        assert!(matches!(evs[1], SimEvent::TransferDone { token: 2, .. }));
        assert_eq!(sim.draining_flows(), 0);
    }

    #[test]
    fn synchronized_wave_pays_one_filling() {
        let c = two_a100();
        let mut sim = NetSim::new(&c).with_incremental_allocator(true);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        // Distinct sizes defeat aggregation: four real flows, one port.
        let wave: Vec<(Path, ByteSize, Token)> = (0..4u64)
            .map(|t| (path.clone(), ByteSize::from_mib(10 * (t + 1)), t))
            .collect();
        sim.submit_wave(&wave);
        // Observe right after the activation burst, before completions.
        sim.schedule_timer(SimDuration::from_millis(1.0), 99);
        let ev = sim.step().unwrap();
        assert!(matches!(ev, SimEvent::Timer { token: 99, .. }));
        assert_eq!(sim.fillings(), 1, "one filling for the whole wave");
        assert_eq!(sim.frontier_flows(), 4);
        assert_eq!(sim.draining_flows(), 4);
        assert_eq!(sim.drain().len(), 4);
    }

    #[test]
    fn disjoint_components_refill_independently() {
        // Two flows on disjoint ports: each completion's frontier must
        // touch only its own component, so total frontier work stays
        // O(1) per event instead of O(live).
        let c = Cluster::fat_tree(4, 1);
        let mut sim = NetSim::new(&c).with_incremental_allocator(true);
        sim.submit_transfer(
            &c.net_path(InstanceId(0), InstanceId(2)),
            ByteSize::from_mib(64),
            1,
        );
        sim.submit_transfer(
            &c.net_path(InstanceId(3), InstanceId(1)),
            ByteSize::from_mib(32),
            2,
        );
        let evs = sim.drain();
        assert_eq!(evs.len(), 2);
        // Activation wave: one fill per (single-flow) component; each
        // completion then refills nothing (component empties).
        assert!(
            sim.frontier_flows() <= 4,
            "frontier did not stay local: {}",
            sim.frontier_flows()
        );
    }

    #[test]
    fn incremental_deterministic_replay() {
        let run = || {
            let c = two_a100();
            let mut sim = NetSim::new(&c).with_incremental_allocator(true);
            let path = c.net_path(InstanceId(0), InstanceId(1));
            for t in 0..8 {
                sim.submit_transfer(&path, ByteSize::from_mib(10 + t), t);
            }
            sim.drain()
                .into_iter()
                .map(|e| (e.token(), e.at().as_secs().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn paranoid_refill_matches_frontier_refill() {
        // The exactness contract: treating every live flow as dirty on
        // every event (a from-scratch filling) must reproduce the
        // frontier refill's event stream bit for bit.
        let c = Cluster::fat_tree(6, 1);
        let eg = c.nic_egress_link(InstanceId(0));
        let run = |paranoid: bool| {
            let mut sim = NetSim::new(&c)
                .with_incremental_allocator(true)
                .with_paranoid_refill(paranoid);
            for (i, t) in [(0usize, 1usize), (2, 3), (4, 5), (1, 2)]
                .iter()
                .enumerate()
            {
                sim.submit_transfer(
                    &c.net_path(InstanceId(t.0), InstanceId(t.1)),
                    ByteSize::from_mib(16 + 8 * i as u64),
                    i as Token,
                );
            }
            sim.schedule_fault(SimDuration::from_millis(1.0), FaultAction::LinkDown(eg));
            sim.schedule_fault(SimDuration::from_millis(3.0), FaultAction::LinkUp(eg));
            sim.drain()
                .into_iter()
                .map(|e| (e.token(), e.at().as_secs().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn merged_flows_contend_with_their_full_weight() {
        // Three identical flows (merged) plus one distinct flow on the
        // same port: the distinct flow must see a quarter share, not a
        // half share — the merge is weight-aware.
        let c = two_a100();
        let mut sim = NetSim::new(&c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let size = ByteSize::from_mib(40);
        for t in 0..3 {
            sim.submit_transfer(&path, size, t);
        }
        sim.submit_transfer(&path, ByteSize::from_mib(10), 9);
        assert_eq!(sim.flows.len(), 2);
        assert_eq!(sim.draining_flows(), 0);
        let evs = sim.drain();
        assert_eq!(evs.len(), 4);
        // Token 9 finishes first: 10 MiB at a 1/4 share of 12.5 GB/s.
        assert_eq!(evs[0].token(), 9);
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let t9 = c.path_alpha(&path).as_secs() + ByteSize::from_mib(10).as_f64() / (bw / 4.0);
        assert!(
            (evs[0].at().as_secs() - t9).abs() / t9 < 0.01,
            "got {} want {t9}",
            evs[0].at().as_secs()
        );
    }
}
