//! Simulated time.
//!
//! The engine measures time in seconds stored as `f64`. Wrapping the raw
//! float in [`SimTime`] / [`SimDuration`] newtypes keeps instants and
//! spans statically distinct ([C-NEWTYPE]) and lets us provide a total
//! order (the constructors reject NaN, so `Ord` is safe).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in seconds since simulation start.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2.5);
/// assert_eq!(t.as_secs(), 0.0025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::time::SimDuration;
///
/// let d = SimDuration::from_micros(150.0) + SimDuration::from_micros(50.0);
/// assert!((d.as_millis() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds since the simulation epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime(secs)
    }

    /// Creates an instant from milliseconds since the simulation epoch.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is NaN or negative.
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms * 1e-3)
    }

    /// Returns the instant as seconds since the simulation epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the instant in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the instant in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` by more than a floating
    /// point rounding margin.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        let d = self.0 - earlier.0;
        assert!(d >= -1e-12, "duration_since: {earlier:?} is after {self:?}");
        SimDuration(d.max(0.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid sim duration: {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a span from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a span from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a span from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Returns the span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the span in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Multiplies the span by a non-negative scalar.
    ///
    /// # Panics
    ///
    /// Panics if `k` is NaN or negative.
    pub fn scale(self, k: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * k)
    }

    /// Returns the longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructors guarantee the payload is finite, so total order is
        // well defined.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(1.0) + SimDuration::from_millis(500.0);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_since_orders() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(3.5);
        assert_eq!(b.duration_since(a).as_secs(), 1.5);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_backwards_panics() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(1.0);
        let _ = b.duration_since(a);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::from_secs(1.0));
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2.0)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2.0)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2.0)), "2.000us");
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn scale_duration() {
        let d = SimDuration::from_secs(2.0).scale(2.5);
        assert_eq!(d.as_secs(), 5.0);
    }

    #[test]
    fn max_of_times() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
