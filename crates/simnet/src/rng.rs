//! Deterministic randomness.
//!
//! Every stochastic component in the workspace (probe noise, traces,
//! straggler draws, the annealer) derives its randomness from an
//! explicit `u64` seed through this module, so any experiment replays
//! bit-identically.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fast, seedable, portable RNG.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so
/// independent components never share a stream.
pub fn child_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A draw from a log-normal-ish heavy-tailed distribution with median 1
/// and the given spread; used for straggler compute-time noise.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn heavy_tail_factor<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
    // Sum of uniforms approximates a normal; exponentiate for log-normal.
    let z: f64 = (0..6).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
    (z * sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(9);
        let mut b = seeded_rng(9);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn child_seeds_differ_by_label() {
        let s = child_seed(1, "trace");
        let t = child_seed(1, "straggler");
        assert_ne!(s, t);
        assert_eq!(child_seed(1, "trace"), s);
    }

    #[test]
    fn heavy_tail_median_near_one() {
        let mut rng = seeded_rng(3);
        let mut draws: Vec<f64> = (0..4001)
            .map(|_| heavy_tail_factor(&mut rng, 0.2))
            .collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[2000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(draws.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn zero_sigma_is_deterministic_one() {
        let mut rng = seeded_rng(3);
        assert_eq!(heavy_tail_factor(&mut rng, 0.0), 1.0);
    }
}
