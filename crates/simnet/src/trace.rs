//! Synthetic cloud network-performance traces.
//!
//! The paper's Fig. 1 measures bandwidth and latency between two public
//! cloud instances over six hours and observes up to 34% bandwidth and
//! 17% latency degradation from the peak. We cannot replay the authors'
//! capture, so [`CloudTrace::synthesize`] generates a seeded trace with
//! the same statistics: slow diurnal drift, mean-reverting jitter, and
//! episodic cross-traffic dips. The ×-amplification transform of
//! Sec. VI-D ("bandwidth drops or increases to 1−x or 1+x times the
//! trace value") is implemented verbatim in [`CloudTrace::amplified`].

use serde::{Deserialize, Serialize};

use crate::rng::seeded_rng;
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// One trace sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample instant.
    pub at_secs: f64,
    /// Achievable bandwidth relative to the nominal line rate (1.0 =
    /// full rate; 0.66 = the paper's worst observed 34% degradation).
    pub bandwidth_factor: f64,
    /// Observed latency relative to the unloaded baseline (≥ 1.0).
    pub latency_factor: f64,
}

/// A time series of link-performance factors.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::trace::CloudTrace;
///
/// let trace = CloudTrace::synthesize(42, 6.0 * 3600.0, 60.0);
/// let stats = trace.stats();
/// assert!(stats.worst_bandwidth_degradation > 0.2);
/// assert!(stats.worst_bandwidth_degradation < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudTrace {
    points: Vec<TracePoint>,
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// 1 − min(bandwidth_factor): the paper reports 0.34.
    pub worst_bandwidth_degradation: f64,
    /// max(latency_factor) − 1: the paper reports 0.17.
    pub worst_latency_degradation: f64,
    /// Mean bandwidth factor.
    pub mean_bandwidth_factor: f64,
}

impl CloudTrace {
    /// Generates a trace of `duration_secs` sampled every
    /// `interval_secs`, calibrated to the paper's observed degradations.
    ///
    /// # Panics
    ///
    /// Panics if the duration or interval is not positive.
    pub fn synthesize(seed: u64, duration_secs: f64, interval_secs: f64) -> Self {
        assert!(
            duration_secs > 0.0 && interval_secs > 0.0,
            "invalid trace shape"
        );
        let mut rng = seeded_rng(seed);
        let n = (duration_secs / interval_secs).ceil() as usize + 1;
        let mut points = Vec::with_capacity(n);
        // Mean-reverting jitter state.
        let mut jitter = 0.0_f64;
        // Cross-traffic episode state: remaining samples and depth.
        let mut episode_left = 0usize;
        let mut episode_depth = 0.0_f64;
        for i in 0..n {
            let t = i as f64 * interval_secs;
            // Slow diurnal-ish drift, +-6%.
            let drift = 0.06 * (t / duration_secs * std::f64::consts::TAU).sin();
            // Ornstein-Uhlenbeck style jitter, +-4%.
            jitter = 0.9 * jitter + rng.gen_range(-0.012..0.012);
            // Cross-traffic episodes: ~3% of samples start one lasting
            // 5-30 samples with a 10-30% dip.
            if episode_left == 0 && rng.gen_bool(0.03) {
                episode_left = rng.gen_range(5..30);
                episode_depth = rng.gen_range(0.10..0.30);
            }
            let episode = if episode_left > 0 {
                episode_left -= 1;
                episode_depth
            } else {
                0.0
            };
            let bw = (1.0 - episode + drift + jitter).clamp(0.60, 1.0);
            // Latency inflates when bandwidth is contended.
            let lat = (1.0 + 0.5 * (1.0 - bw)).clamp(1.0, 1.25);
            points.push(TracePoint {
                at_secs: t,
                bandwidth_factor: bw,
                latency_factor: lat,
            });
        }
        // Guarantee the headline dip exists: force the deepest episode
        // to reach the paper's 34% degradation.
        let min_idx = (0..points.len())
            .min_by(|&a, &b| {
                points[a]
                    .bandwidth_factor
                    .partial_cmp(&points[b].bandwidth_factor)
                    .unwrap()
            })
            .expect("non-empty trace");
        points[min_idx].bandwidth_factor = 0.66;
        points[min_idx].latency_factor = 1.17;
        CloudTrace { points }
    }

    /// A trace from explicit points (e.g. parsed from a CSV capture).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not time-ordered.
    pub fn from_points(points: Vec<TracePoint>) -> Self {
        assert!(!points.is_empty(), "trace needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].at_secs <= w[1].at_secs),
            "trace points must be time-ordered"
        );
        CloudTrace { points }
    }

    /// All samples.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The sample in effect at instant `t` (step interpolation).
    pub fn sample(&self, t: SimTime) -> TracePoint {
        let secs = t.as_secs();
        match self
            .points
            .binary_search_by(|p| p.at_secs.partial_cmp(&secs).unwrap())
        {
            Ok(i) => self.points[i],
            Err(0) => self.points[0],
            Err(i) => self.points[i - 1],
        }
    }

    /// The paper's volatility amplification: every *change* between
    /// consecutive samples is exaggerated — a drop lands at `(1 - x)`
    /// times the trace value, a rise at `(1 + x)` times.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or not finite.
    pub fn amplified(&self, x: f64) -> CloudTrace {
        assert!(x.is_finite() && x >= 0.0, "invalid amplification {x}");
        let mut points = self.points.clone();
        #[allow(clippy::needless_range_loop)] // reads points[i-1] (lookback)
        for i in 1..points.len() {
            let prev = self.points[i - 1].bandwidth_factor;
            let cur = self.points[i].bandwidth_factor;
            let amplified = if cur < prev {
                cur * (1.0 - x)
            } else if cur > prev {
                cur * (1.0 + x)
            } else {
                cur
            };
            points[i].bandwidth_factor = amplified.clamp(0.05, 1.5);
            points[i].latency_factor =
                (1.0 + 0.5 * (1.0 - points[i].bandwidth_factor).max(0.0)).clamp(1.0, 2.0);
        }
        CloudTrace { points }
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        let min_bw = self
            .points
            .iter()
            .map(|p| p.bandwidth_factor)
            .fold(f64::INFINITY, f64::min);
        let max_lat = self
            .points
            .iter()
            .map(|p| p.latency_factor)
            .fold(0.0_f64, f64::max);
        let mean =
            self.points.iter().map(|p| p.bandwidth_factor).sum::<f64>() / self.points.len() as f64;
        TraceStats {
            worst_bandwidth_degradation: 1.0 - min_bw,
            worst_latency_degradation: max_lat - 1.0,
            mean_bandwidth_factor: mean,
        }
    }

    /// Duration covered by the trace.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.points.last().expect("non-empty").at_secs)
    }

    /// Serializes the trace to CSV (`secs,bandwidth_factor,latency_factor`
    /// with a header), the interchange format for captured real traces.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "secs,bandwidth_factor,latency_factor
",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{}
",
                p.at_secs, p.bandwidth_factor, p.latency_factor
            ));
        }
        out
    }

    /// Parses a trace from the CSV produced by [`CloudTrace::to_csv`]
    /// (or captured externally with the same columns).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, a
    /// non-positive factor, or an out-of-order timestamp.
    pub fn from_csv(csv: &str) -> Result<CloudTrace, String> {
        let mut points = Vec::new();
        for (i, line) in csv.lines().enumerate() {
            if i == 0 && line.starts_with("secs") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 3 {
                return Err(format!("line {}: expected 3 columns", i + 1));
            }
            let parse = |s: &str, what: &str| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad {what} `{s}`", i + 1))
            };
            let at_secs = parse(cols[0], "timestamp")?;
            let bandwidth_factor = parse(cols[1], "bandwidth factor")?;
            let latency_factor = parse(cols[2], "latency factor")?;
            if bandwidth_factor <= 0.0 || latency_factor < 1.0 {
                return Err(format!("line {}: non-physical factors", i + 1));
            }
            if let Some(prev) = points.last() {
                let prev: &TracePoint = prev;
                if at_secs < prev.at_secs {
                    return Err(format!("line {}: timestamps must not decrease", i + 1));
                }
            }
            points.push(TracePoint {
                at_secs,
                bandwidth_factor,
                latency_factor,
            });
        }
        if points.is_empty() {
            return Err("trace has no data rows".into());
        }
        Ok(CloudTrace { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_hours() -> CloudTrace {
        CloudTrace::synthesize(11, 6.0 * 3600.0, 60.0)
    }

    #[test]
    fn matches_paper_headline_degradation() {
        let s = six_hours().stats();
        assert!((s.worst_bandwidth_degradation - 0.34).abs() < 1e-9);
        assert!((s.worst_latency_degradation - 0.17).abs() < 0.09);
    }

    #[test]
    fn factors_stay_in_bounds() {
        for p in six_hours().points() {
            assert!(p.bandwidth_factor > 0.0 && p.bandwidth_factor <= 1.0);
            assert!(p.latency_factor >= 1.0);
        }
    }

    #[test]
    fn sampling_is_step_interpolated() {
        let t = CloudTrace::from_points(vec![
            TracePoint {
                at_secs: 0.0,
                bandwidth_factor: 1.0,
                latency_factor: 1.0,
            },
            TracePoint {
                at_secs: 60.0,
                bandwidth_factor: 0.8,
                latency_factor: 1.1,
            },
        ]);
        assert_eq!(t.sample(SimTime::from_secs(30.0)).bandwidth_factor, 1.0);
        assert_eq!(t.sample(SimTime::from_secs(60.0)).bandwidth_factor, 0.8);
        assert_eq!(t.sample(SimTime::from_secs(90.0)).bandwidth_factor, 0.8);
    }

    #[test]
    fn amplification_widens_swings() {
        let base = six_hours();
        let amp = base.amplified(0.4);
        assert!(amp.stats().worst_bandwidth_degradation > base.stats().worst_bandwidth_degradation);
        // Zero amplification leaves bandwidth untouched.
        let id = base.amplified(0.0);
        for (a, b) in id.points().iter().zip(base.points()) {
            assert_eq!(a.bandwidth_factor, b.bandwidth_factor);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = CloudTrace::synthesize(5, 3600.0, 30.0);
        let b = CloudTrace::synthesize(5, 3600.0, 30.0);
        assert_eq!(a, b);
        let c = CloudTrace::synthesize(6, 3600.0, 30.0);
        assert_ne!(a, c);
    }

    #[test]
    fn csv_roundtrip() {
        let t = six_hours();
        let csv = t.to_csv();
        let back = CloudTrace::from_csv(&csv).expect("roundtrips");
        assert_eq!(back.points().len(), t.points().len());
        for (a, b) in back.points().iter().zip(t.points()) {
            assert!((a.bandwidth_factor - b.bandwidth_factor).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(CloudTrace::from_csv("").is_err());
        assert!(CloudTrace::from_csv(
            "secs,bandwidth_factor,latency_factor
1,0.5
"
        )
        .is_err());
        assert!(
            CloudTrace::from_csv(
                "0,0.5,0.9
"
            )
            .is_err(),
            "latency < 1"
        );
        assert!(
            CloudTrace::from_csv(
                "5,0.5,1.0
1,0.5,1.0
"
            )
            .is_err(),
            "unordered"
        );
        assert!(CloudTrace::from_csv(
            "0,abc,1.0
"
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_points_rejected() {
        let _ = CloudTrace::from_points(vec![
            TracePoint {
                at_secs: 10.0,
                bandwidth_factor: 1.0,
                latency_factor: 1.0,
            },
            TracePoint {
                at_secs: 0.0,
                bandwidth_factor: 1.0,
                latency_factor: 1.0,
            },
        ]);
    }
}
