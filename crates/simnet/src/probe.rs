//! Timed micro-probes over the simulated fabric.
//!
//! The AdapCC detector and profiler never see the cluster's ground
//! truth; they see what real software sees — wall-clock durations of
//! small transfers, optionally perturbed by measurement noise. This
//! module is that measurement layer.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::cluster::{Cluster, Path};
use crate::engine::NetSim;
use crate::rng::seeded_rng;
use crate::time::SimDuration;
use crate::units::ByteSize;

/// One probe: a transfer of `size` bytes along `path`.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Route of the probe flow.
    pub path: Path,
    /// Payload size.
    pub size: ByteSize,
}

impl ProbeSpec {
    /// Creates a probe.
    pub fn new(path: Path, size: ByteSize) -> Self {
        ProbeSpec { path, size }
    }
}

/// Runs timed probes against a cluster, with reproducible measurement
/// noise.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, Rank};
/// use adapcc_simnet::probe::{ProbeRunner, ProbeSpec};
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(1);
/// let mut runner = ProbeRunner::new(&cluster, 42);
/// let path = cluster.intra_path(Rank(0), Rank(1));
/// let t = runner.run_one(&ProbeSpec::new(path, ByteSize::from_mib(4)));
/// assert!(t.as_micros() > 0.0);
/// ```
#[derive(Debug)]
pub struct ProbeRunner<'c> {
    cluster: &'c Cluster,
    rng: ChaCha8Rng,
    noise_sigma: f64,
    /// Capacity factors applied to the probe simulations, mirroring any
    /// trace modulation active on the real fabric.
    factors: Vec<(crate::cluster::LinkId, f64)>,
}

impl<'c> ProbeRunner<'c> {
    /// A runner with the default 1% multiplicative measurement noise.
    pub fn new(cluster: &'c Cluster, seed: u64) -> Self {
        ProbeRunner {
            cluster,
            rng: seeded_rng(seed),
            noise_sigma: 0.01,
            factors: Vec::new(),
        }
    }

    /// Overrides the relative noise level (0 disables noise).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        self.noise_sigma = sigma;
        self
    }

    /// Mirrors a capacity factor (e.g. from an active bandwidth trace)
    /// into subsequent probe measurements.
    pub fn set_capacity_factor(&mut self, link: crate::cluster::LinkId, factor: f64) {
        self.factors.retain(|(l, _)| *l != link);
        self.factors.push((link, factor));
    }

    /// Clears all mirrored capacity factors.
    pub fn clear_capacity_factors(&mut self) {
        self.factors.clear();
    }

    /// Runs a single isolated probe and returns its measured duration.
    pub fn run_one(&mut self, probe: &ProbeSpec) -> SimDuration {
        self.run_concurrent(std::slice::from_ref(probe))
            .pop()
            .expect("one probe yields one duration")
    }

    /// Starts all probes at the same instant (they contend for shared
    /// links) and returns each probe's measured duration, in input
    /// order.
    pub fn run_concurrent(&mut self, probes: &[ProbeSpec]) -> Vec<SimDuration> {
        let mut sim = NetSim::new(self.cluster);
        for (l, f) in &self.factors {
            sim.set_capacity_factor(*l, *f);
        }
        for (i, p) in probes.iter().enumerate() {
            sim.submit_transfer(&p.path, p.size, i as u64);
        }
        let mut out = vec![SimDuration::ZERO; probes.len()];
        for ev in sim.drain() {
            out[ev.token() as usize] = SimDuration::from_secs(ev.at().as_secs());
        }
        for d in &mut out {
            *d = self.perturb(*d);
        }
        out
    }

    /// Sends `size` bytes `n` times back-to-back along `path` and
    /// returns the total duration — the paper's n(α + βs) measurement.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn run_repeated(&mut self, path: &Path, size: ByteSize, n: usize) -> SimDuration {
        assert!(n > 0, "need at least one repetition");
        let mut total = SimDuration::ZERO;
        // Back-to-back: each send starts when the previous finishes; in
        // an otherwise idle fabric the durations are additive, so run n
        // isolated one-shot simulations and sum them.
        for _ in 0..n {
            let mut s = NetSim::new(self.cluster);
            for (l, f) in &self.factors {
                s.set_capacity_factor(*l, *f);
            }
            s.submit_transfer(path, size, 0);
            let ev = s.step().expect("probe completes");
            total += SimDuration::from_secs(ev.at().as_secs());
        }
        self.perturb(total)
    }

    fn perturb(&mut self, d: SimDuration) -> SimDuration {
        if self.noise_sigma == 0.0 {
            return d;
        }
        // Symmetric multiplicative noise, clamped to stay positive.
        let eps: f64 = self.rng.gen_range(-3.0..3.0) * self.noise_sigma;
        d.scale((1.0 + eps).max(0.01))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{InstanceId, Rank};

    #[test]
    fn concurrent_probes_contend() {
        let c = Cluster::homogeneous_a100(1);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        // Two GPUs under the same switch copying to host share the
        // switch uplink: each sees half bandwidth.
        let p0 = ProbeSpec::new(c.gpu_to_host_path(Rank(0), 0), ByteSize::from_mib(20));
        let p1 = ProbeSpec::new(c.gpu_to_host_path(Rank(1), 0), ByteSize::from_mib(20));
        let solo = runner.run_one(&p0);
        let both = runner.run_concurrent(&[p0, p1]);
        assert!(both[0].as_secs() > solo.as_secs() * 1.7);
    }

    #[test]
    fn different_switch_probes_do_not_contend() {
        let c = Cluster::homogeneous_a100(1);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let p0 = ProbeSpec::new(c.gpu_to_host_path(Rank(0), 0), ByteSize::from_mib(20));
        let p2 = ProbeSpec::new(c.gpu_to_host_path(Rank(2), 1), ByteSize::from_mib(20));
        let solo = runner.run_one(&p0);
        let both = runner.run_concurrent(&[p0, p2]);
        assert!((both[0].as_secs() - solo.as_secs()).abs() / solo.as_secs() < 0.05);
    }

    #[test]
    fn repeated_probe_scales_with_n() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let one = runner.run_repeated(&path, ByteSize::from_mib(1), 1);
        let five = runner.run_repeated(&path, ByteSize::from_mib(1), 5);
        assert!((five.as_secs() / one.as_secs() - 5.0).abs() < 0.01);
    }

    #[test]
    fn noise_is_reproducible() {
        let c = Cluster::homogeneous_a100(1);
        let path = c.intra_path(Rank(0), Rank(1));
        let probe = ProbeSpec::new(path, ByteSize::from_mib(8));
        let a = ProbeRunner::new(&c, 7).run_one(&probe);
        let b = ProbeRunner::new(&c, 7).run_one(&probe);
        assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
    }

    #[test]
    fn capacity_factor_mirrors_into_probes() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let probe = ProbeSpec::new(path.clone(), ByteSize::from_mib(16));
        let fast = runner.run_one(&probe);
        runner.set_capacity_factor(c.nic_egress_link(InstanceId(0)), 0.5);
        let slow = runner.run_one(&probe);
        assert!(slow.as_secs() > fast.as_secs() * 1.8);
        runner.clear_capacity_factors();
        let fast2 = runner.run_one(&probe);
        assert!((fast2.as_secs() - fast.as_secs()).abs() / fast.as_secs() < 0.01);
    }
}
