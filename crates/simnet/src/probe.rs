//! Timed micro-probes over the simulated fabric.
//!
//! The AdapCC detector and profiler never see the cluster's ground
//! truth; they see what real software sees — wall-clock durations of
//! small transfers, optionally perturbed by measurement noise. This
//! module is that measurement layer.

use adapcc_telemetry::Telemetry;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::cluster::{Cluster, Path};
use crate::engine::NetSim;
use crate::rng::seeded_rng;
use crate::time::SimDuration;
use crate::units::ByteSize;

/// One probe: a transfer of `size` bytes along `path`.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Route of the probe flow.
    pub path: Path,
    /// Payload size.
    pub size: ByteSize,
}

impl ProbeSpec {
    /// Creates a probe.
    pub fn new(path: Path, size: ByteSize) -> Self {
        ProbeSpec { path, size }
    }
}

/// Runs timed probes against a cluster, with reproducible measurement
/// noise.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, Rank};
/// use adapcc_simnet::probe::{ProbeRunner, ProbeSpec};
/// use adapcc_simnet::units::ByteSize;
///
/// let cluster = Cluster::homogeneous_a100(1);
/// let mut runner = ProbeRunner::new(&cluster, 42);
/// let path = cluster.intra_path(Rank(0), Rank(1));
/// let t = runner.run_one(&ProbeSpec::new(path, ByteSize::from_mib(4)));
/// assert!(t.as_micros() > 0.0);
/// ```
#[derive(Debug)]
pub struct ProbeRunner<'c> {
    cluster: &'c Cluster,
    rng: ChaCha8Rng,
    noise_sigma: f64,
    /// Capacity factors applied to the probe simulations, mirroring any
    /// trace modulation active on the real fabric.
    factors: Vec<(crate::cluster::LinkId, f64)>,
    /// Injected probe losses: the next `count` measurements crossing
    /// `link` time out and are retried internally.
    losses: Vec<(crate::cluster::LinkId, u32)>,
    /// Wall-clock charged per lost probe before the retry.
    loss_timeout: SimDuration,
    /// Total retries performed so far.
    retries: u64,
    /// Accumulated timeout wall-clock not yet collected by the caller.
    lost_time: SimDuration,
    telemetry: Telemetry,
}

impl<'c> ProbeRunner<'c> {
    /// A runner with the default 1% multiplicative measurement noise.
    pub fn new(cluster: &'c Cluster, seed: u64) -> Self {
        ProbeRunner {
            cluster,
            rng: seeded_rng(seed),
            noise_sigma: 0.01,
            factors: Vec::new(),
            losses: Vec::new(),
            loss_timeout: SimDuration::from_millis(50.0),
            retries: 0,
            lost_time: SimDuration::ZERO,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: measurements bump the
    /// `probe.measurements` / `probe.bytes` / `probe.retries` counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Overrides the relative noise level (0 disables noise).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        self.noise_sigma = sigma;
        self
    }

    /// Mirrors a capacity factor (e.g. from an active bandwidth trace)
    /// into subsequent probe measurements.
    pub fn set_capacity_factor(&mut self, link: crate::cluster::LinkId, factor: f64) {
        self.factors.retain(|(l, _)| *l != link);
        self.factors.push((link, factor));
    }

    /// Clears all mirrored capacity factors.
    pub fn clear_capacity_factors(&mut self) {
        self.factors.clear();
    }

    /// Injects transient probe loss: the next `count` measurements
    /// whose path crosses `link` time out once each and are retried
    /// internally. Measurements stay clean (the retry's duration is
    /// returned); the timeout cost accumulates and is collected with
    /// [`ProbeRunner::take_lost_time`].
    pub fn inject_probe_loss(&mut self, link: crate::cluster::LinkId, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(e) = self.losses.iter_mut().find(|(l, _)| *l == link) {
            e.1 += count;
        } else {
            self.losses.push((link, count));
        }
    }

    /// Overrides the wall-clock charged per lost probe (default 50 ms).
    pub fn with_loss_timeout(mut self, timeout: SimDuration) -> Self {
        self.loss_timeout = timeout;
        self
    }

    /// Total probe retries performed by this runner.
    pub fn probe_retries(&self) -> u64 {
        self.retries
    }

    /// Returns and clears the accumulated timeout wall-clock from lost
    /// probes; callers fold it into their elapsed-time accounting.
    pub fn take_lost_time(&mut self) -> SimDuration {
        std::mem::replace(&mut self.lost_time, SimDuration::ZERO)
    }

    /// Consumes pending losses hit by a measurement over `paths`:
    /// each call models one timed-out attempt. Returns true while the
    /// measurement keeps getting lost.
    fn measurement_lost<'p>(&mut self, paths: impl Iterator<Item = &'p Path>) -> bool {
        let crossed: Vec<crate::cluster::LinkId> =
            paths.flat_map(|p| p.links.iter().copied()).collect();
        let mut hit = false;
        for (l, n) in &mut self.losses {
            if *n > 0 && crossed.contains(l) {
                *n -= 1;
                hit = true;
            }
        }
        if hit {
            self.losses.retain(|(_, n)| *n > 0);
            self.retries += 1;
            self.lost_time += self.loss_timeout;
            self.telemetry.add_counter("probe.retries", 1.0);
        }
        hit
    }

    /// Runs a single isolated probe and returns its measured duration.
    pub fn run_one(&mut self, probe: &ProbeSpec) -> SimDuration {
        self.run_concurrent(std::slice::from_ref(probe))
            .pop()
            .expect("one probe yields one duration")
    }

    /// Starts all probes at the same instant (they contend for shared
    /// links) and returns each probe's measured duration, in input
    /// order.
    pub fn run_concurrent(&mut self, probes: &[ProbeSpec]) -> Vec<SimDuration> {
        // Lost measurements time out and retry until the injected loss
        // budget for the crossed links is spent.
        while self.measurement_lost(probes.iter().map(|p| &p.path)) {}
        self.telemetry
            .add_counter("probe.measurements", probes.len() as f64);
        self.telemetry
            .add_counter("probe.bytes", probes.iter().map(|p| p.size.as_f64()).sum());
        let mut sim = NetSim::new(self.cluster);
        for (l, f) in &self.factors {
            sim.set_capacity_factor(*l, *f);
        }
        for (i, p) in probes.iter().enumerate() {
            sim.submit_transfer(&p.path, p.size, i as u64);
        }
        let mut out = vec![SimDuration::ZERO; probes.len()];
        for ev in sim.drain() {
            out[ev.token() as usize] = SimDuration::from_secs(ev.at().as_secs());
        }
        for d in &mut out {
            *d = self.perturb(*d);
        }
        out
    }

    /// Sends `size` bytes `n` times back-to-back along `path` and
    /// returns the total duration — the paper's n(α + βs) measurement.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn run_repeated(&mut self, path: &Path, size: ByteSize, n: usize) -> SimDuration {
        assert!(n > 0, "need at least one repetition");
        while self.measurement_lost(std::iter::once(path)) {}
        self.telemetry.add_counter("probe.measurements", n as f64);
        self.telemetry
            .add_counter("probe.bytes", size.as_f64() * n as f64);
        let mut total = SimDuration::ZERO;
        // Back-to-back: each send starts when the previous finishes; in
        // an otherwise idle fabric the durations are additive, so run n
        // isolated one-shot simulations and sum them.
        for _ in 0..n {
            let mut s = NetSim::new(self.cluster);
            for (l, f) in &self.factors {
                s.set_capacity_factor(*l, *f);
            }
            s.submit_transfer(path, size, 0);
            let ev = s.step().expect("probe completes");
            total += SimDuration::from_secs(ev.at().as_secs());
        }
        self.perturb(total)
    }

    fn perturb(&mut self, d: SimDuration) -> SimDuration {
        if self.noise_sigma == 0.0 {
            return d;
        }
        // Symmetric multiplicative noise, clamped to stay positive.
        let eps: f64 = self.rng.gen_range(-3.0..3.0) * self.noise_sigma;
        d.scale((1.0 + eps).max(0.01))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{InstanceId, Rank};

    #[test]
    fn concurrent_probes_contend() {
        let c = Cluster::homogeneous_a100(1);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        // Two GPUs under the same switch copying to host share the
        // switch uplink: each sees half bandwidth.
        let p0 = ProbeSpec::new(c.gpu_to_host_path(Rank(0), 0), ByteSize::from_mib(20));
        let p1 = ProbeSpec::new(c.gpu_to_host_path(Rank(1), 0), ByteSize::from_mib(20));
        let solo = runner.run_one(&p0);
        let both = runner.run_concurrent(&[p0, p1]);
        assert!(both[0].as_secs() > solo.as_secs() * 1.7);
    }

    #[test]
    fn different_switch_probes_do_not_contend() {
        let c = Cluster::homogeneous_a100(1);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let p0 = ProbeSpec::new(c.gpu_to_host_path(Rank(0), 0), ByteSize::from_mib(20));
        let p2 = ProbeSpec::new(c.gpu_to_host_path(Rank(2), 1), ByteSize::from_mib(20));
        let solo = runner.run_one(&p0);
        let both = runner.run_concurrent(&[p0, p2]);
        assert!((both[0].as_secs() - solo.as_secs()).abs() / solo.as_secs() < 0.05);
    }

    #[test]
    fn repeated_probe_scales_with_n() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let one = runner.run_repeated(&path, ByteSize::from_mib(1), 1);
        let five = runner.run_repeated(&path, ByteSize::from_mib(1), 5);
        assert!((five.as_secs() / one.as_secs() - 5.0).abs() < 0.01);
    }

    #[test]
    fn noise_is_reproducible() {
        let c = Cluster::homogeneous_a100(1);
        let path = c.intra_path(Rank(0), Rank(1));
        let probe = ProbeSpec::new(path, ByteSize::from_mib(8));
        let a = ProbeRunner::new(&c, 7).run_one(&probe);
        let b = ProbeRunner::new(&c, 7).run_one(&probe);
        assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
    }

    #[test]
    fn injected_losses_retry_cleanly() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let probe = ProbeSpec::new(path.clone(), ByteSize::from_mib(8));
        let clean = runner.run_one(&probe);
        runner.inject_probe_loss(c.nic_egress_link(InstanceId(0)), 2);
        let retried = runner.run_one(&probe);
        // The measurement itself is unaffected by the losses...
        assert_eq!(retried.as_secs().to_bits(), clean.as_secs().to_bits());
        // ...but the retries and their timeout cost are accounted.
        assert_eq!(runner.probe_retries(), 2);
        assert!((runner.take_lost_time().as_secs() - 0.1).abs() < 1e-12);
        assert_eq!(runner.take_lost_time(), SimDuration::ZERO);
        // Budget spent: further probes are clean.
        let after = runner.run_one(&probe);
        assert_eq!(after.as_secs().to_bits(), clean.as_secs().to_bits());
        assert_eq!(runner.probe_retries(), 2);
    }

    #[test]
    fn losses_on_other_links_do_not_trigger() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        runner.inject_probe_loss(c.nic_egress_link(InstanceId(1)), 3);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let _ = runner.run_one(&ProbeSpec::new(path, ByteSize::from_mib(1)));
        // Path uses instance 0 egress + instance 1 *ingress*; the
        // injected loss on instance 1 *egress* is untouched.
        assert_eq!(runner.probe_retries(), 0);
    }

    #[test]
    fn capacity_factor_mirrors_into_probes() {
        let c = Cluster::homogeneous_a100(2);
        let mut runner = ProbeRunner::new(&c, 1).with_noise(0.0);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let probe = ProbeSpec::new(path.clone(), ByteSize::from_mib(16));
        let fast = runner.run_one(&probe);
        runner.set_capacity_factor(c.nic_egress_link(InstanceId(0)), 0.5);
        let slow = runner.run_one(&probe);
        assert!(slow.as_secs() > fast.as_secs() * 1.8);
        runner.clear_capacity_factors();
        let fast2 = runner.run_one(&probe);
        assert!((fast2.as_secs() - fast.as_secs()).abs() / fast.as_secs() < 0.01);
    }
}
