//! The simulated cluster: servers, GPUs, NUMA nodes, PCIe switches,
//! NICs, and the directed capacity resources (links) connecting them.
//!
//! The cluster is a *physical* model — it knows where every PCIe switch
//! sits. The AdapCC detector (crate `adapcc-topo`) must *re-discover*
//! this structure through timing probes, exactly as the real system does
//! on real hardware; nothing in the control path reads the ground truth
//! directly (tests do, to validate the inference).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hardware::{InstanceSpec, NvlinkTopology};
use crate::time::SimDuration;
use crate::units::Bandwidth;

/// Index of a server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub usize);

/// Global worker rank: GPUs are ranked instance-major, local-rank-minor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub usize);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// A node in the physical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A directed capacity resource in the physical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// What a physical node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A GPU: `(instance, local index)`.
    Gpu(InstanceId, usize),
    /// A NUMA node (CPU socket): `(instance, socket index)`.
    Numa(InstanceId, usize),
    /// A PCIe switch: `(instance, switch index)`.
    PcieSwitch(InstanceId, usize),
    /// The instance's NIC.
    Nic(InstanceId),
}

/// The physical medium a link models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Direct GPU-to-GPU NVLink.
    NvLink,
    /// A PCIe hop (GPU<->switch, switch<->root complex, NIC<->switch).
    Pcie,
    /// The inter-socket interconnect (UPI / Infinity Fabric).
    InterSocket,
    /// The NIC's egress port onto the datacenter fabric.
    NicEgress,
    /// The NIC's ingress port from the datacenter fabric.
    NicIngress,
    /// A pod's shared uplink into the spine (oversubscribed fat-tree
    /// tier): every cross-pod flow leaving the pod crosses it.
    PodUplink,
    /// A pod's shared downlink from the spine: every cross-pod flow
    /// entering the pod crosses it.
    PodDownlink,
}

/// A directed link with an α–β cost: `alpha` latency plus
/// `capacity`-limited fluid throughput shared among traversing flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDef {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Medium.
    pub kind: LinkKind,
    /// Propagation/setup latency of one traversal.
    pub alpha: SimDuration,
    /// Nominal capacity (before any trace modulation).
    pub capacity: Bandwidth,
    /// Per-flow rate ceiling, if the medium imposes one (TCP streams).
    pub per_flow_cap: Option<Bandwidth>,
}

/// A multi-hop route through the physical graph: the ordered links a
/// transfer occupies simultaneously (fluid model), plus any extra fixed
/// latency not attributable to a single link (e.g. wire latency).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Path {
    /// Links occupied by the flow, in traversal order.
    pub links: Vec<LinkId>,
    /// Additional fixed latency beyond the links' own alphas.
    pub extra_alpha: SimDuration,
}

impl Path {
    /// A path over the given links with no extra latency.
    pub fn new(links: Vec<LinkId>) -> Self {
        Path {
            links,
            extra_alpha: SimDuration::ZERO,
        }
    }

    /// Adds fixed latency to the path.
    pub fn with_extra_alpha(mut self, alpha: SimDuration) -> Self {
        self.extra_alpha = alpha;
        self
    }
}

/// The simulated cluster.
///
/// Build one with [`ClusterBuilder`] or a preset such as
/// [`Cluster::paper_testbed`].
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::Cluster;
///
/// let cluster = Cluster::paper_testbed();
/// assert_eq!(cluster.instance_count(), 6);
/// assert_eq!(cluster.gpu_count(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    specs: Vec<InstanceSpec>,
    nodes: Vec<NodeKind>,
    links: Vec<LinkDef>,
    gpu_nodes: Vec<Vec<NodeId>>,
    numa_nodes: Vec<Vec<NodeId>>,
    switch_nodes: Vec<Vec<NodeId>>,
    nic_nodes: Vec<NodeId>,
    nic_egress: Vec<LinkId>,
    nic_ingress: Vec<LinkId>,
    /// Directed link lookup: (src, dst) -> link.
    link_by_ends: HashMap<(NodeId, NodeId), LinkId>,
    /// Which PCIe switch each GPU hangs off: per instance, per local gpu.
    gpu_switch: Vec<Vec<usize>>,
    /// Which NUMA node each switch hangs off.
    switch_numa: Vec<Vec<usize>>,
    /// Which pod each instance belongs to (all zero on a flat fabric).
    pod_of: Vec<usize>,
    /// Per-pod shared uplink into the spine; empty on a flat fabric.
    pod_uplink: Vec<LinkId>,
    /// Per-pod shared downlink from the spine; empty on a flat fabric.
    pod_downlink: Vec<LinkId>,
}

impl Cluster {
    /// The paper's six-server testbed: four A100 servers and two V100
    /// servers, all RDMA.
    pub fn paper_testbed() -> Self {
        let mut b = ClusterBuilder::new();
        for _ in 0..4 {
            b.add_instance(InstanceSpec::a100_server());
        }
        for _ in 0..2 {
            b.add_instance(InstanceSpec::v100_server());
        }
        b.build()
    }

    /// Largest fleet still modeled as a flat, non-blocking NIC fabric.
    /// Above this, presets switch to an oversubscribed pod fabric —
    /// real clusters at that scale are fat-trees, not crossbars.
    pub const FLAT_FABRIC_MAX: usize = 16;

    /// Servers per pod (leaf switch) on the preset fat-tree fabrics.
    pub const POD_SIZE: usize = 16;

    /// The paper's homogeneous setting: `n` A100 servers, RDMA.
    ///
    /// Up to [`Cluster::FLAT_FABRIC_MAX`] servers the NIC fabric is flat
    /// (the paper's testbed). Larger fleets are grouped into pods of
    /// [`Cluster::POD_SIZE`] with oversubscription that grows with the
    /// pod count — `f = clamp(ceil(log2(pods)), 1, 4)` — so NIC sizing
    /// scales the way production fat-trees do instead of assuming the
    /// testbed's crossbar.
    pub fn homogeneous_a100(n: usize) -> Self {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server(), n);
        Self::pod_defaults(&mut b, n);
        b.build()
    }

    /// A fat-tree cluster of `servers` A100-class instances with
    /// `gpus_per_server` GPUs each, using the same pod sizing rules as
    /// [`Cluster::homogeneous_a100`]. This is the scale-sweep builder:
    /// `fat_tree(128, 8)` is a 1024-GPU cluster.
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `gpus_per_server` is zero.
    pub fn fat_tree(servers: usize, gpus_per_server: usize) -> Self {
        assert!(servers > 0, "fat_tree needs at least one server");
        let spec = InstanceSpec::a100_server().with_gpu_count(gpus_per_server);
        let mut b = ClusterBuilder::new();
        b.add_instances(spec, servers);
        Self::pod_defaults(&mut b, servers);
        b.build()
    }

    /// Applies the preset pod policy: flat up to `FLAT_FABRIC_MAX`
    /// servers, pods of `POD_SIZE` with log-scaled oversubscription
    /// beyond.
    fn pod_defaults(b: &mut ClusterBuilder, servers: usize) {
        if servers > Self::FLAT_FABRIC_MAX {
            let pods = servers.div_ceil(Self::POD_SIZE);
            let f = (pods as f64).log2().ceil().clamp(1.0, 4.0);
            b.with_pod_size(Self::POD_SIZE).with_oversubscription(f);
        }
    }

    /// The paper's heterogeneous training setting: two A100 + two V100
    /// servers.
    pub fn heterogeneous_2a100_2v100() -> Self {
        let mut b = ClusterBuilder::new();
        for _ in 0..2 {
            b.add_instance(InstanceSpec::a100_server());
        }
        for _ in 0..2 {
            b.add_instance(InstanceSpec::v100_server());
        }
        b.build()
    }

    /// Number of servers.
    pub fn instance_count(&self) -> usize {
        self.specs.len()
    }

    /// Specification of one server.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn spec(&self, id: InstanceId) -> &InstanceSpec {
        &self.specs[id.0]
    }

    /// All server specifications, in instance order.
    pub fn specs(&self) -> &[InstanceSpec] {
        &self.specs
    }

    /// Total number of GPUs (= worker ranks).
    pub fn gpu_count(&self) -> usize {
        self.gpu_nodes.iter().map(Vec::len).sum()
    }

    /// Number of GPUs on one server.
    pub fn gpus_on(&self, id: InstanceId) -> usize {
        self.gpu_nodes[id.0].len()
    }

    /// Maps a global rank to `(instance, local gpu index)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is out of range.
    pub fn locate(&self, rank: Rank) -> (InstanceId, usize) {
        let mut r = rank.0;
        for (i, gpus) in self.gpu_nodes.iter().enumerate() {
            if r < gpus.len() {
                return (InstanceId(i), r);
            }
            r -= gpus.len();
        }
        panic!(
            "rank {} out of range (cluster has {} GPUs)",
            rank.0,
            self.gpu_count()
        );
    }

    /// Maps `(instance, local gpu index)` to the global rank.
    pub fn rank_of(&self, instance: InstanceId, local: usize) -> Rank {
        let before: usize = self.gpu_nodes[..instance.0].iter().map(Vec::len).sum();
        Rank(before + local)
    }

    /// The physical node of a rank's GPU.
    pub fn gpu_node(&self, rank: Rank) -> NodeId {
        let (inst, local) = self.locate(rank);
        self.gpu_nodes[inst.0][local]
    }

    /// The physical node of an instance's NIC.
    pub fn nic_node(&self, id: InstanceId) -> NodeId {
        self.nic_nodes[id.0]
    }

    /// The physical node of a NUMA socket.
    pub fn numa_node(&self, id: InstanceId, socket: usize) -> NodeId {
        self.numa_nodes[id.0][socket]
    }

    /// All link definitions.
    pub fn links(&self) -> &[LinkDef] {
        &self.links
    }

    /// One link definition.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &LinkDef {
        &self.links[id.0]
    }

    /// The directed link between two adjacent nodes, if one exists.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.link_by_ends.get(&(src, dst)).copied()
    }

    /// The NVLink between two local GPUs of the same instance, if wired.
    pub fn nvlink_between(&self, a: Rank, b: Rank) -> Option<LinkId> {
        let na = self.gpu_node(a);
        let nb = self.gpu_node(b);
        self.link_between(na, nb)
            .filter(|l| self.links[l.0].kind == LinkKind::NvLink)
    }

    /// Ground-truth: the PCIe switch index a GPU hangs off (tests and
    /// detection validation only — the control path must infer this).
    pub fn gpu_switch_index(&self, rank: Rank) -> usize {
        let (inst, local) = self.locate(rank);
        self.gpu_switch[inst.0][local]
    }

    /// Ground-truth NUMA socket nearest to the instance NIC (the NIC is
    /// attached under switch 0, which hangs off socket 0).
    pub fn nic_numa_index(&self, _id: InstanceId) -> usize {
        0
    }

    /// The route a GPU-to-GPU transfer takes *within* one instance:
    /// the NVLink if wired, otherwise the PCIe path through switches and
    /// sockets.
    ///
    /// # Panics
    ///
    /// Panics if the ranks live on different instances or are equal.
    pub fn intra_path(&self, a: Rank, b: Rank) -> Path {
        let (ia, la) = self.locate(a);
        let (ib, lb) = self.locate(b);
        assert_eq!(ia, ib, "intra_path requires ranks on one instance");
        assert_ne!(a, b, "intra_path requires distinct ranks");
        if let Some(l) = self.nvlink_between(a, b) {
            return Path::new(vec![l]);
        }
        // PCIe route: gpu -> switch [-> numa -> numa] -> switch -> gpu.
        let sa = self.gpu_switch[ia.0][la];
        let sb = self.gpu_switch[ib.0][lb];
        let gpu_a = self.gpu_nodes[ia.0][la];
        let gpu_b = self.gpu_nodes[ib.0][lb];
        let sw_a = self.switch_nodes[ia.0][sa];
        let sw_b = self.switch_nodes[ib.0][sb];
        let mut links = vec![self.expect_link(gpu_a, sw_a)];
        if sa != sb {
            let na = self.switch_numa[ia.0][sa];
            let nb = self.switch_numa[ib.0][sb];
            let numa_a = self.numa_nodes[ia.0][na];
            let numa_b = self.numa_nodes[ib.0][nb];
            links.push(self.expect_link(sw_a, numa_a));
            if na != nb {
                links.push(self.expect_link(numa_a, numa_b));
            }
            links.push(self.expect_link(numa_b, sw_b));
        }
        links.push(self.expect_link(sw_b, gpu_b));
        Path::new(links)
    }

    /// The route of a GPU's copy to host memory on a given socket
    /// (used by detection probes).
    pub fn gpu_to_host_path(&self, rank: Rank, socket: usize) -> Path {
        let (inst, local) = self.locate(rank);
        let s = self.gpu_switch[inst.0][local];
        let gpu = self.gpu_nodes[inst.0][local];
        let sw = self.switch_nodes[inst.0][s];
        let home = self.switch_numa[inst.0][s];
        let mut links = vec![
            self.expect_link(gpu, sw),
            self.expect_link(sw, self.numa_nodes[inst.0][home]),
        ];
        if home != socket {
            links.push(self.expect_link(
                self.numa_nodes[inst.0][home],
                self.numa_nodes[inst.0][socket],
            ));
        }
        Path::new(links)
    }

    /// The route of a host (socket) loopback to the instance NIC
    /// (used by NUMA-affinity detection).
    pub fn host_to_nic_path(&self, id: InstanceId, socket: usize) -> Path {
        // The NIC is attached under switch 0, whose home socket is 0.
        let mut links = Vec::new();
        let numa = self.numa_nodes[id.0][socket];
        let numa0 = self.numa_nodes[id.0][0];
        if socket != 0 {
            links.push(self.expect_link(numa, numa0));
        }
        let sw0 = self.switch_nodes[id.0][0];
        links.push(self.expect_link(numa0, sw0));
        links.push(self.expect_link(sw0, self.nic_nodes[id.0]));
        Path::new(links)
    }

    /// The reverse of [`Cluster::host_to_nic_path`]: data flowing from
    /// the NIC back into a socket's memory (the receive half of a
    /// loopback, which contends with GPU-to-host copies on the switch
    /// downlink).
    pub fn nic_to_host_path(&self, id: InstanceId, socket: usize) -> Path {
        let mut links = Vec::new();
        let sw0 = self.switch_nodes[id.0][0];
        links.push(self.expect_link(self.nic_nodes[id.0], sw0));
        let numa0 = self.numa_nodes[id.0][0];
        links.push(self.expect_link(sw0, numa0));
        if socket != 0 {
            links.push(self.expect_link(numa0, self.numa_nodes[id.0][socket]));
        }
        Path::new(links)
    }

    /// The route of an inter-instance transfer between two NICs: the
    /// source egress port and destination ingress port, with the wire
    /// latency of the slower transport as extra alpha.
    ///
    /// # Panics
    ///
    /// Panics if both NICs belong to the same instance.
    pub fn net_path(&self, from: InstanceId, to: InstanceId) -> Path {
        assert_ne!(from, to, "net_path requires distinct instances");
        let wire = self.specs[from.0]
            .nic
            .wire_latency()
            .max(self.specs[to.0].nic.wire_latency());
        let mut links = vec![self.nic_egress[from.0]];
        if !self.pod_uplink.is_empty() {
            let (pf, pt) = (self.pod_of[from.0], self.pod_of[to.0]);
            if pf != pt {
                // Cross-pod traffic shares the pod's uplink and the
                // destination pod's downlink — this is where fat-tree
                // oversubscription bites.
                links.push(self.pod_uplink[pf]);
                links.push(self.pod_downlink[pt]);
            }
        }
        links.push(self.nic_ingress[to.0]);
        Path::new(links).with_extra_alpha(wire)
    }

    /// Number of pods in the fabric (1 on a flat fabric).
    pub fn pod_count(&self) -> usize {
        self.pod_uplink.len().max(1)
    }

    /// The pod an instance belongs to (always 0 on a flat fabric).
    pub fn pod_of(&self, id: InstanceId) -> usize {
        self.pod_of[id.0]
    }

    /// True when the fabric has an oversubscribed pod tier (i.e. it is
    /// not the testbed's flat crossbar).
    pub fn has_pods(&self) -> bool {
        !self.pod_uplink.is_empty()
    }

    /// The shared uplink of a pod, if the fabric has a pod tier.
    pub fn pod_uplink_link(&self, pod: usize) -> Option<LinkId> {
        self.pod_uplink.get(pod).copied()
    }

    /// The shared downlink of a pod, if the fabric has a pod tier.
    pub fn pod_downlink_link(&self, pod: usize) -> Option<LinkId> {
        self.pod_downlink.get(pod).copied()
    }

    /// The NIC egress port resource of an instance.
    pub fn nic_egress_link(&self, id: InstanceId) -> LinkId {
        self.nic_egress[id.0]
    }

    /// The NIC ingress port resource of an instance.
    pub fn nic_ingress_link(&self, id: InstanceId) -> LinkId {
        self.nic_ingress[id.0]
    }

    /// Sum of link alphas plus the path's extra alpha.
    pub fn path_alpha(&self, path: &Path) -> SimDuration {
        let mut a = path.extra_alpha;
        for l in &path.links {
            a += self.links[l.0].alpha;
        }
        a
    }

    fn expect_link(&self, src: NodeId, dst: NodeId) -> LinkId {
        self.link_between(src, dst)
            .unwrap_or_else(|| panic!("no link {src:?} -> {dst:?}"))
    }
}

/// Incremental construction of a [`Cluster`].
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::ClusterBuilder;
/// use adapcc_simnet::hardware::InstanceSpec;
///
/// let mut b = ClusterBuilder::new();
/// b.add_instance(InstanceSpec::a100_server());
/// b.add_instance(InstanceSpec::v100_server());
/// let cluster = b.build();
/// assert_eq!(cluster.gpu_count(), 8);
/// ```
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    specs: Vec<InstanceSpec>,
    pod_size: Option<usize>,
    oversubscription: Option<f64>,
}

impl ClusterBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Appends one server.
    pub fn add_instance(&mut self, spec: InstanceSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Appends `n` identical servers.
    pub fn add_instances(&mut self, spec: InstanceSpec, n: usize) -> &mut Self {
        for _ in 0..n {
            self.specs.push(spec);
        }
        self
    }

    /// Groups instances into pods of `size` behind shared spine links.
    /// Without this the fabric is a flat crossbar (the paper testbed).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_pod_size(&mut self, size: usize) -> &mut Self {
        assert!(size > 0, "pod size must be positive");
        self.pod_size = Some(size);
        self
    }

    /// Sets the pod-tier oversubscription factor `f`: a pod's uplink
    /// and downlink each carry `sum(member NIC bandwidth) / f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not at least 1.
    pub fn with_oversubscription(&mut self, f: f64) -> &mut Self {
        assert!(f.is_finite() && f >= 1.0, "oversubscription must be >= 1");
        self.oversubscription = Some(f);
        self
    }

    /// Materializes the cluster graph.
    ///
    /// # Panics
    ///
    /// Panics if no instances were added.
    pub fn build(&self) -> Cluster {
        assert!(
            !self.specs.is_empty(),
            "cluster needs at least one instance"
        );
        let inter_socket_bw = Bandwidth::from_gbytes_per_sec(35.0);
        let inter_socket_alpha = SimDuration::from_nanos(300.0);
        let nvlink_alpha = SimDuration::from_nanos(700.0);

        let mut nodes = Vec::new();
        let mut links: Vec<LinkDef> = Vec::new();
        let mut link_by_ends = HashMap::new();
        let mut gpu_nodes = Vec::new();
        let mut numa_nodes = Vec::new();
        let mut switch_nodes = Vec::new();
        let mut nic_nodes = Vec::new();
        let mut nic_egress = Vec::new();
        let mut nic_ingress = Vec::new();
        let mut gpu_switch = Vec::new();
        let mut switch_numa = Vec::new();

        let push_node = |nodes: &mut Vec<NodeKind>, kind: NodeKind| -> NodeId {
            nodes.push(kind);
            NodeId(nodes.len() - 1)
        };
        let push_link = |links: &mut Vec<LinkDef>,
                         map: &mut HashMap<(NodeId, NodeId), LinkId>,
                         def: LinkDef|
         -> LinkId {
            links.push(def);
            let id = LinkId(links.len() - 1);
            map.insert((def.src, def.dst), id);
            id
        };
        // Duplex helper: adds both directions with identical parameters.
        let push_duplex = |links: &mut Vec<LinkDef>,
                           map: &mut HashMap<(NodeId, NodeId), LinkId>,
                           a: NodeId,
                           b: NodeId,
                           kind: LinkKind,
                           alpha: SimDuration,
                           cap: Bandwidth| {
            for (s, d) in [(a, b), (b, a)] {
                links.push(LinkDef {
                    src: s,
                    dst: d,
                    kind,
                    alpha,
                    capacity: cap,
                    per_flow_cap: None,
                });
                map.insert((s, d), LinkId(links.len() - 1));
            }
        };

        for (idx, spec) in self.specs.iter().enumerate() {
            let inst = InstanceId(idx);
            let sockets = spec.numa_nodes.max(1);
            let switches = sockets;
            let numa: Vec<NodeId> = (0..sockets)
                .map(|s| push_node(&mut nodes, NodeKind::Numa(inst, s)))
                .collect();
            let sw: Vec<NodeId> = (0..switches)
                .map(|s| push_node(&mut nodes, NodeKind::PcieSwitch(inst, s)))
                .collect();
            let gpus: Vec<NodeId> = (0..spec.gpu_count)
                .map(|g| push_node(&mut nodes, NodeKind::Gpu(inst, g)))
                .collect();
            let nic = push_node(&mut nodes, NodeKind::Nic(inst));

            // Socket interconnect: full mesh among sockets.
            for a in 0..sockets {
                for b in (a + 1)..sockets {
                    push_duplex(
                        &mut links,
                        &mut link_by_ends,
                        numa[a],
                        numa[b],
                        LinkKind::InterSocket,
                        inter_socket_alpha,
                        inter_socket_bw,
                    );
                }
            }
            // Switch uplinks: switch s hangs off socket s.
            let pcie_bw = spec.pcie.bandwidth();
            let pcie_alpha = spec.pcie.latency();
            let mut sn = Vec::new();
            for (s, &sw_node) in sw.iter().enumerate() {
                push_duplex(
                    &mut links,
                    &mut link_by_ends,
                    sw_node,
                    numa[s % sockets],
                    LinkKind::Pcie,
                    pcie_alpha,
                    pcie_bw,
                );
                sn.push(s % sockets);
            }
            // GPUs distributed over switches in contiguous blocks.
            let per_switch = spec.gpu_count.div_ceil(switches);
            let mut gs = Vec::new();
            for (g, &gpu_node) in gpus.iter().enumerate() {
                let s = (g / per_switch).min(switches - 1);
                push_duplex(
                    &mut links,
                    &mut link_by_ends,
                    gpu_node,
                    sw[s],
                    LinkKind::Pcie,
                    pcie_alpha,
                    pcie_bw,
                );
                gs.push(s);
            }
            // NVLink wiring.
            let nv_bw = spec.gpu.nvlink_pair_bandwidth();
            let wire = |a: usize, b: usize, links: &mut Vec<LinkDef>, map: &mut _| {
                push_duplex(
                    links,
                    map,
                    gpus[a],
                    gpus[b],
                    LinkKind::NvLink,
                    nvlink_alpha,
                    nv_bw,
                );
            };
            match spec.nvlink {
                NvlinkTopology::FullMesh => {
                    for a in 0..spec.gpu_count {
                        for b in (a + 1)..spec.gpu_count {
                            wire(a, b, &mut links, &mut link_by_ends);
                        }
                    }
                }
                NvlinkTopology::Ring => {
                    if spec.gpu_count == 2 {
                        wire(0, 1, &mut links, &mut link_by_ends);
                    } else if spec.gpu_count > 2 {
                        for a in 0..spec.gpu_count {
                            let b = (a + 1) % spec.gpu_count;
                            wire(a.min(b), a.max(b), &mut links, &mut link_by_ends);
                        }
                    }
                }
                NvlinkTopology::Pairs => {
                    let mut a = 0;
                    while a + 1 < spec.gpu_count {
                        wire(a, a + 1, &mut links, &mut link_by_ends);
                        a += 2;
                    }
                }
                NvlinkTopology::None => {}
            }
            // NIC hangs under switch 0 (home socket 0).
            push_duplex(
                &mut links,
                &mut link_by_ends,
                nic,
                sw[0],
                LinkKind::Pcie,
                pcie_alpha,
                pcie_bw,
            );
            // Network port resources. Self-loops in the graph sense: they
            // connect the NIC to the (implicit, non-blocking) fabric, so
            // src == dst == nic; they are addressed by id, never by ends.
            let eg = push_link(
                &mut links,
                &mut link_by_ends,
                LinkDef {
                    src: nic,
                    dst: nic,
                    kind: LinkKind::NicEgress,
                    alpha: SimDuration::ZERO,
                    capacity: spec.nic.bandwidth,
                    per_flow_cap: spec.nic.per_flow_cap(),
                },
            );
            // push_link registered (nic, nic) -> eg; the ingress link will
            // overwrite that map entry, which is harmless: port resources
            // are never looked up by endpoints.
            let ing = push_link(
                &mut links,
                &mut link_by_ends,
                LinkDef {
                    src: nic,
                    dst: nic,
                    kind: LinkKind::NicIngress,
                    alpha: SimDuration::ZERO,
                    capacity: spec.nic.bandwidth,
                    per_flow_cap: spec.nic.per_flow_cap(),
                },
            );

            gpu_nodes.push(gpus);
            numa_nodes.push(numa);
            switch_nodes.push(sw);
            nic_nodes.push(nic);
            nic_egress.push(eg);
            nic_ingress.push(ing);
            gpu_switch.push(gs);
            switch_numa.push(sn);
        }

        // Pod tier: instances grouped behind shared, possibly
        // oversubscribed spine links. Like the NIC ports, pod links are
        // self-loops in the graph sense (anchored on a member NIC node)
        // and are addressed by id, never by endpoints.
        let n = self.specs.len();
        let mut pod_of = vec![0usize; n];
        let mut pod_uplink = Vec::new();
        let mut pod_downlink = Vec::new();
        if let Some(ps) = self.pod_size {
            let pods = n.div_ceil(ps);
            if pods >= 2 {
                let f = self.oversubscription.unwrap_or(1.0);
                let fabric_alpha = SimDuration::from_nanos(600.0);
                for (i, p) in pod_of.iter_mut().enumerate() {
                    *p = i / ps;
                }
                for pod in 0..pods {
                    let members = pod * ps..((pod + 1) * ps).min(n);
                    let anchor = nic_nodes[members.start];
                    let nic_sum: f64 = members
                        .map(|i| self.specs[i].nic.bandwidth.as_bytes_per_sec())
                        .sum();
                    let cap = Bandwidth::from_bytes_per_sec(nic_sum / f);
                    for kind in [LinkKind::PodUplink, LinkKind::PodDownlink] {
                        let id = push_link(
                            &mut links,
                            &mut link_by_ends,
                            LinkDef {
                                src: anchor,
                                dst: anchor,
                                kind,
                                alpha: fabric_alpha,
                                capacity: cap,
                                per_flow_cap: None,
                            },
                        );
                        match kind {
                            LinkKind::PodUplink => pod_uplink.push(id),
                            _ => pod_downlink.push(id),
                        }
                    }
                }
            }
        }

        Cluster {
            specs: self.specs.clone(),
            nodes,
            links,
            gpu_nodes,
            numa_nodes,
            switch_nodes,
            nic_nodes,
            nic_egress,
            nic_ingress,
            link_by_ends,
            gpu_switch,
            switch_numa,
            pod_of,
            pod_uplink,
            pod_downlink,
        }
    }
}

impl Cluster {
    /// What a node is.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0]
    }

    /// Number of nodes in the physical graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::{GpuGeneration, Transport};

    #[test]
    fn paper_testbed_shape() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.instance_count(), 6);
        assert_eq!(c.gpu_count(), 24);
        assert_eq!(c.spec(InstanceId(0)).gpu, GpuGeneration::A100);
        assert_eq!(c.spec(InstanceId(5)).gpu, GpuGeneration::V100);
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let c = Cluster::paper_testbed();
        for r in 0..c.gpu_count() {
            let (inst, local) = c.locate(Rank(r));
            assert_eq!(c.rank_of(inst, local), Rank(r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_bad_rank() {
        let c = Cluster::homogeneous_a100(1);
        let _ = c.locate(Rank(99));
    }

    #[test]
    fn nvlink_full_mesh_connects_all_pairs() {
        let c = Cluster::homogeneous_a100(1);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(c.nvlink_between(Rank(a), Rank(b)).is_some());
                }
            }
        }
    }

    #[test]
    fn pairs_topology_leaves_gaps() {
        let spec = InstanceSpec::a100_server().with_nvlink(NvlinkTopology::Pairs);
        let mut b = ClusterBuilder::new();
        b.add_instance(spec);
        let c = b.build();
        assert!(c.nvlink_between(Rank(0), Rank(1)).is_some());
        assert!(c.nvlink_between(Rank(2), Rank(3)).is_some());
        assert!(c.nvlink_between(Rank(1), Rank(2)).is_none());
        // The PCIe fallback path between 1 and 2 crosses both switches.
        let p = c.intra_path(Rank(1), Rank(2));
        assert!(p.links.len() >= 4);
    }

    #[test]
    fn intra_path_uses_nvlink_when_available() {
        let c = Cluster::homogeneous_a100(1);
        let p = c.intra_path(Rank(0), Rank(3));
        assert_eq!(p.links.len(), 1);
        assert_eq!(c.link(p.links[0]).kind, LinkKind::NvLink);
    }

    #[test]
    fn net_path_uses_ports_and_wire_latency() {
        let c = Cluster::paper_testbed();
        let p = c.net_path(InstanceId(0), InstanceId(5));
        assert_eq!(p.links.len(), 2);
        assert_eq!(c.link(p.links[0]).kind, LinkKind::NicEgress);
        assert_eq!(c.link(p.links[1]).kind, LinkKind::NicIngress);
        assert!(p.extra_alpha > SimDuration::ZERO);
    }

    #[test]
    fn tcp_ports_carry_per_flow_cap() {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server().with_tcp(), 2);
        let c = b.build();
        assert_eq!(c.spec(InstanceId(0)).nic.transport, Transport::Tcp);
        let eg = c.nic_egress_link(InstanceId(0));
        assert!(c.link(eg).per_flow_cap.is_some());
    }

    #[test]
    fn gpu_switch_ground_truth_blocks() {
        let c = Cluster::homogeneous_a100(1);
        assert_eq!(c.gpu_switch_index(Rank(0)), 0);
        assert_eq!(c.gpu_switch_index(Rank(1)), 0);
        assert_eq!(c.gpu_switch_index(Rank(2)), 1);
        assert_eq!(c.gpu_switch_index(Rank(3)), 1);
    }

    #[test]
    fn host_to_nic_is_longer_from_far_socket() {
        let c = Cluster::homogeneous_a100(1);
        let near = c.host_to_nic_path(InstanceId(0), 0);
        let far = c.host_to_nic_path(InstanceId(0), 1);
        assert!(c.path_alpha(&far) > c.path_alpha(&near));
    }

    #[test]
    fn gpu_to_host_crosses_socket_when_needed() {
        let c = Cluster::homogeneous_a100(1);
        let same = c.gpu_to_host_path(Rank(0), 0);
        let cross = c.gpu_to_host_path(Rank(0), 1);
        assert_eq!(cross.links.len(), same.links.len() + 1);
    }

    #[test]
    fn small_fleets_stay_on_the_flat_fabric() {
        // The paper-scale presets must keep their historical shape:
        // no pod tier, two-link net paths.
        for n in [1, 2, 4, 16] {
            let c = Cluster::homogeneous_a100(n);
            assert!(!c.has_pods(), "n={n}");
            assert_eq!(c.pod_count(), 1);
            if n >= 2 {
                assert_eq!(c.net_path(InstanceId(0), InstanceId(n - 1)).links.len(), 2);
            }
        }
    }

    #[test]
    fn per_tier_bandwidth_scales_oversubscription_with_n() {
        // 32 servers -> 2 pods, f = clamp(ceil(log2(2)), 1, 4) = 1:
        // each pod uplink carries the full 16 x 12.5 GB/s = 200 GB/s.
        let c = Cluster::homogeneous_a100(32);
        assert!(c.has_pods());
        assert_eq!(c.pod_count(), 2);
        let up = c.pod_uplink_link(0).unwrap();
        let gbs = c.link(up).capacity.as_gbytes_per_sec();
        assert!((gbs - 200.0).abs() < 1e-6, "2-pod uplink {gbs}");

        // 512 servers -> 32 pods, f = clamp(ceil(log2(32)), 1, 4) = 4:
        // 200 GB/s / 4 = 50 GB/s per tier link, both directions.
        let c = Cluster::homogeneous_a100(512);
        assert_eq!(c.instance_count(), 512);
        assert_eq!(c.pod_count(), 32);
        for pod in [0, 31] {
            let up = c.link(c.pod_uplink_link(pod).unwrap()).capacity;
            let down = c.link(c.pod_downlink_link(pod).unwrap()).capacity;
            assert!((up.as_gbytes_per_sec() - 50.0).abs() < 1e-6);
            assert!((down.as_gbytes_per_sec() - 50.0).abs() < 1e-6);
        }
        // Per-NIC egress is unchanged by the pod tier.
        let eg = c.nic_egress_link(InstanceId(0));
        assert!((c.link(eg).capacity.as_gbytes_per_sec() - 12.5).abs() < 1e-6);
    }

    #[test]
    fn cross_pod_paths_traverse_the_spine() {
        let c = Cluster::homogeneous_a100(32);
        // Same pod: flat two-link path.
        let intra = c.net_path(InstanceId(0), InstanceId(15));
        assert_eq!(intra.links.len(), 2);
        // Cross pod: egress -> uplink -> downlink -> ingress.
        let cross = c.net_path(InstanceId(0), InstanceId(16));
        assert_eq!(cross.links.len(), 4);
        assert_eq!(c.link(cross.links[1]).kind, LinkKind::PodUplink);
        assert_eq!(c.link(cross.links[2]).kind, LinkKind::PodDownlink);
        assert!(c.path_alpha(&cross) > c.path_alpha(&intra));
        assert_eq!(c.pod_of(InstanceId(0)), 0);
        assert_eq!(c.pod_of(InstanceId(16)), 1);
    }

    #[test]
    fn fat_tree_builder_scales_to_512_instances() {
        let c = Cluster::fat_tree(128, 8);
        assert_eq!(c.instance_count(), 128);
        assert_eq!(c.gpu_count(), 1024);
        assert_eq!(c.pod_count(), 8);
        // 8 pods -> f = 3; uplink = 16 x 12.5 / 3 GB/s.
        let up = c.pod_uplink_link(0).unwrap();
        let want = 16.0 * 12.5 / 3.0;
        assert!((c.link(up).capacity.as_gbytes_per_sec() - want).abs() < 1e-6);
        // The big homogeneous preset builds and ranks round-trip.
        let big = Cluster::homogeneous_a100(512);
        assert_eq!(big.gpu_count(), 2048);
        let (inst, local) = big.locate(Rank(2047));
        assert_eq!(big.rank_of(inst, local), Rank(2047));
    }
}
