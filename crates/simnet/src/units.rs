//! Data-size and bandwidth units.
//!
//! Network gear is specified in decimal gigabits per second while GPU
//! interconnects are quoted in binary gigabytes per second; mixing the
//! two raw `f64`s is a classic source of silent 8x errors. [`ByteSize`]
//! and [`Bandwidth`] keep the dimensions distinct ([C-NEWTYPE]) and the
//! constructors spell out the unit.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul};

use crate::time::SimDuration;

/// A number of bytes.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::units::ByteSize;
///
/// let tensor = ByteSize::from_mib(256);
/// assert_eq!(tensor.as_u64(), 256 * 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::units::Bandwidth;
///
/// let nic = Bandwidth::from_gbps(100.0);
/// assert!((nic.as_gbytes_per_sec() - 12.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from binary kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from binary mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from binary gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Returns the size in bytes.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the size in bytes as a float.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the size in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns true if the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Splits the size into `parts` nearly equal pieces (first pieces get
    /// the remainder), preserving the total.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use adapcc_simnet::units::ByteSize;
    ///
    /// let parts = ByteSize::from_bytes(10).split(3);
    /// assert_eq!(parts.iter().map(|p| p.as_u64()).collect::<Vec<_>>(), vec![4, 3, 3]);
    /// ```
    pub fn split(self, parts: usize) -> Vec<ByteSize> {
        assert!(parts > 0, "cannot split into zero parts");
        let base = self.0 / parts as u64;
        let rem = (self.0 % parts as u64) as usize;
        (0..parts)
            .map(|i| ByteSize(base + u64::from(i < rem)))
            .collect()
    }

    /// Number of chunks of size `chunk` needed to carry this size
    /// (ceiling division).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunks(self, chunk: ByteSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be positive");
        self.0.div_ceil(chunk.0)
    }
}

impl Bandwidth {
    /// Creates a rate from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is NaN, infinite or negative.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps)
    }

    /// Creates a rate from decimal gigabits per second (network style).
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Creates a rate from decimal gigabytes per second (NVLink style).
    pub fn from_gbytes_per_sec(gbs: f64) -> Self {
        Self::from_bytes_per_sec(gbs * 1e9)
    }

    /// Returns the rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in decimal gigabytes per second.
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the rate in decimal gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Returns the inverse rate (the β of the α–β model), in seconds per
    /// byte.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn inverse(self) -> f64 {
        assert!(self.0 > 0.0, "cannot invert zero bandwidth");
        1.0 / self.0
    }

    /// Time to move `size` bytes at this rate, excluding latency.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero and `size` is non-zero.
    pub fn time_for(self, size: ByteSize) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        assert!(self.0 > 0.0, "zero bandwidth cannot carry data");
        SimDuration::from_secs(size.as_f64() / self.0)
    }

    /// Returns the smaller of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;

    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;

    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;

    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;

    fn div(self, rhs: f64) -> Bandwidth {
        assert!(rhs > 0.0, "division by non-positive share count");
        Bandwidth(self.0 / rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.as_gbytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_converts_to_bytes() {
        let bw = Bandwidth::from_gbps(100.0);
        assert!((bw.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn time_for_is_linear() {
        let bw = Bandwidth::from_gbytes_per_sec(1.0);
        let t = bw.time_for(ByteSize::from_bytes(500_000_000));
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_for_zero_bytes_is_zero_even_on_dead_link() {
        let bw = Bandwidth::from_bytes_per_sec(0.0);
        assert_eq!(bw.time_for(ByteSize::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn split_preserves_total() {
        let total = ByteSize::from_bytes(1_000_003);
        let parts = total.split(7);
        assert_eq!(parts.len(), 7);
        let sum: u64 = parts.iter().map(|p| p.as_u64()).sum();
        assert_eq!(sum, total.as_u64());
        let max = parts.iter().max().unwrap().as_u64();
        let min = parts.iter().min().unwrap().as_u64();
        assert!(max - min <= 1);
    }

    #[test]
    fn chunk_count_uses_ceiling() {
        let s = ByteSize::from_bytes(10);
        assert_eq!(s.chunks(ByteSize::from_bytes(4)), 3);
        assert_eq!(s.chunks(ByteSize::from_bytes(5)), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteSize::from_mib(256)), "256.00MiB");
        assert_eq!(format!("{}", ByteSize::from_bytes(12)), "12B");
    }

    #[test]
    fn bandwidth_share_divides() {
        let bw = Bandwidth::from_gbytes_per_sec(10.0) / 4.0;
        assert!((bw.as_gbytes_per_sec() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(-1.0);
    }
}
