//! # adapcc-simnet
//!
//! Deterministic discrete-event cluster and network simulator — the
//! hardware substrate of the AdapCC reproduction.
//!
//! The paper evaluates AdapCC on a six-server GPU testbed. This crate
//! replaces that testbed with a faithful *timing* model so the entire
//! AdapCC control and data path (detection, profiling, strategy
//! synthesis, relay control, chunk-pipelined execution) runs unmodified
//! on a laptop:
//!
//! * [`cluster`] — servers built from [`hardware`] specs: GPUs, NUMA
//!   sockets, PCIe switches, NICs, NVLink/PCIe/network links.
//! * [`engine`] — fluid max-min flow transport with per-link equal
//!   sharing (the paper's eq. 3), per-flow TCP stream caps, α–β link
//!   costs, timers, trace-driven capacity modulation, and link
//!   fault states (down, degraded, permanently failed).
//! * [`faults`] — seeded fault schedules: worker crashes, NIC
//!   failures, link flaps/degradations and probe losses, armed onto a
//!   simulator timeline with offset-aware replay for retries.
//! * [`probe`] — the measurement layer the detector/profiler sees:
//!   timed transfers with reproducible noise.
//! * [`trace`] — synthetic public-cloud bandwidth/latency traces
//!   calibrated to the paper's Fig. 1, with the ×-amplification rule of
//!   Sec. VI-D.
//! * [`time`], [`units`], [`rng`] — strongly-typed instants, sizes,
//!   rates, and seeded randomness.
//!
//! # Example
//!
//! ```
//! use adapcc_simnet::cluster::{Cluster, InstanceId};
//! use adapcc_simnet::engine::NetSim;
//! use adapcc_simnet::units::ByteSize;
//!
//! // Two A100 servers; ship 256 MiB across the 100 Gbps fabric.
//! let cluster = Cluster::homogeneous_a100(2);
//! let mut sim = NetSim::new(&cluster);
//! let path = cluster.net_path(InstanceId(0), InstanceId(1));
//! sim.submit_transfer(&path, ByteSize::from_mib(256), 0);
//! let done = sim.step().expect("transfer completes");
//! assert!(done.at().as_secs() > 0.02); // ~21.5 ms at 12.5 GB/s
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod engine;
pub mod faults;
pub mod hardware;
pub mod probe;
pub mod rng;
pub mod time;
pub mod trace;
pub mod units;

pub use cluster::{Cluster, ClusterBuilder, InstanceId, LinkId, NodeId, Path, Rank};
pub use engine::{FaultAction, NetSim, SimEvent, Token};
pub use faults::{Fault, FaultSchedule};
pub use hardware::{GpuGeneration, InstanceSpec, NicSpec, NvlinkTopology, Transport};
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize};
