//! Hardware specifications: GPUs, NICs, PCIe generations and instance
//! (server) shapes.
//!
//! The defaults are calibrated to the paper's testbed (Sec. VI-B): four
//! servers with 4x A100 (PCIe 4.0, 100 Gbps Mellanox NICs) and two
//! servers with 4x V100 (PCIe 3.0, 50 Gbps NICs). Absolute values only
//! need to be realistic in *ratio* — the reproduction compares
//! communication strategies, not silicon.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;
use crate::units::{Bandwidth, ByteSize};

/// GPU generation, which fixes compute speed and NVLink bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// NVIDIA V100 (Volta): NVLink 2.0, our slow testbed half.
    V100,
    /// NVIDIA A100 (Ampere): NVLink 3.0, our fast testbed half.
    A100,
    /// NVIDIA H100 (Hopper): NVLink 4.0, used in scale sweeps.
    H100,
}

impl GpuGeneration {
    /// Relative compute throughput, normalized so A100 = 1.0.
    ///
    /// Used by the training simulator to derive per-iteration compute
    /// times on heterogeneous clusters.
    pub fn compute_factor(self) -> f64 {
        match self {
            GpuGeneration::V100 => 0.55,
            GpuGeneration::A100 => 1.0,
            GpuGeneration::H100 => 2.2,
        }
    }

    /// Point-to-point NVLink bandwidth between a directly connected GPU
    /// pair (one direction).
    pub fn nvlink_pair_bandwidth(self) -> Bandwidth {
        match self {
            GpuGeneration::V100 => Bandwidth::from_gbytes_per_sec(50.0),
            GpuGeneration::A100 => Bandwidth::from_gbytes_per_sec(100.0),
            GpuGeneration::H100 => Bandwidth::from_gbytes_per_sec(225.0),
        }
    }

    /// Effective on-GPU reduction (element-wise add) throughput.
    pub fn reduce_bandwidth(self) -> Bandwidth {
        match self {
            GpuGeneration::V100 => Bandwidth::from_gbytes_per_sec(350.0),
            GpuGeneration::A100 => Bandwidth::from_gbytes_per_sec(700.0),
            GpuGeneration::H100 => Bandwidth::from_gbytes_per_sec(1400.0),
        }
    }

    /// Short human-readable name ("A100").
    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::V100 => "V100",
            GpuGeneration::A100 => "A100",
            GpuGeneration::H100 => "H100",
        }
    }
}

/// PCIe generation of the host root complex and switches (x16 links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// PCIe 3.0 x16: ~16 GB/s per direction.
    Gen3,
    /// PCIe 4.0 x16: ~32 GB/s per direction.
    Gen4,
    /// PCIe 5.0 x16: ~64 GB/s per direction.
    Gen5,
}

impl PcieGeneration {
    /// Per-direction bandwidth of an x16 link.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            PcieGeneration::Gen3 => Bandwidth::from_gbytes_per_sec(16.0),
            PcieGeneration::Gen4 => Bandwidth::from_gbytes_per_sec(32.0),
            PcieGeneration::Gen5 => Bandwidth::from_gbytes_per_sec(64.0),
        }
    }

    /// One-way latency of a hop across this link.
    pub fn latency(self) -> SimDuration {
        SimDuration::from_micros(1.0)
    }
}

/// Inter-server transport used by a NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// RDMA over InfiniBand / RoCE: low latency, GPU-Direct, a single
    /// queue pair can saturate the NIC.
    Rdma,
    /// Kernel TCP sockets: higher latency, host-memory staging, and a
    /// per-stream throughput ceiling (~20 Gbps per the paper, Sec. VI-D)
    /// caused by kernel-space overhead.
    Tcp,
}

impl Transport {
    /// Short human-readable name ("RDMA").
    pub fn name(self) -> &'static str {
        match self {
            Transport::Rdma => "RDMA",
            Transport::Tcp => "TCP",
        }
    }
}

/// A network interface card.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Line rate per direction.
    pub bandwidth: Bandwidth,
    /// Transport stack the NIC is used with.
    pub transport: Transport,
}

impl NicSpec {
    /// A 100 Gbps RDMA NIC (the paper's A100 servers).
    pub fn rdma_100g() -> Self {
        NicSpec {
            bandwidth: Bandwidth::from_gbps(100.0),
            transport: Transport::Rdma,
        }
    }

    /// A 50 Gbps RDMA NIC (the paper's V100 servers).
    pub fn rdma_50g() -> Self {
        NicSpec {
            bandwidth: Bandwidth::from_gbps(50.0),
            transport: Transport::Rdma,
        }
    }

    /// A NIC with the given line rate and transport.
    pub fn new(bandwidth: Bandwidth, transport: Transport) -> Self {
        NicSpec {
            bandwidth,
            transport,
        }
    }

    /// Per-flow throughput ceiling, if the transport imposes one.
    ///
    /// TCP's single-stream rate is capped at ~20 Gbps (kernel-space
    /// overhead observed in the paper); RDMA flows can saturate the NIC.
    pub fn per_flow_cap(&self) -> Option<Bandwidth> {
        match self.transport {
            Transport::Rdma => None,
            Transport::Tcp => Some(Bandwidth::from_gbps(20.0).min(self.bandwidth)),
        }
    }

    /// One-way wire latency between two NICs using this transport.
    pub fn wire_latency(&self) -> SimDuration {
        match self.transport {
            Transport::Rdma => SimDuration::from_micros(4.0),
            Transport::Tcp => SimDuration::from_micros(35.0),
        }
    }

    /// Whether the transport can DMA directly between GPU and NIC
    /// (GPU-Direct). Without it each chunk pays a host staging overhead.
    pub fn gpu_direct(&self) -> bool {
        matches!(self.transport, Transport::Rdma)
    }

    /// Fixed per-chunk host staging overhead when GPU-Direct is absent.
    ///
    /// Chunk pipelining overlaps the *bandwidth* cost of staging with the
    /// wire transfer (Sec. V-B "hidden memory movements"), so only a small
    /// fixed setup cost per chunk remains.
    pub fn staging_overhead(&self) -> SimDuration {
        if self.gpu_direct() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(12.0)
        }
    }
}

/// NVLink wiring among the GPUs of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvlinkTopology {
    /// Every GPU pair is directly connected (small NVSwitch-like boards).
    FullMesh,
    /// GPUs form a ring: i is linked to (i+1) mod n.
    Ring,
    /// Only adjacent pairs (0-1, 2-3, ...) are linked; the fragmented
    /// allocation case that defeats NCCL's NVLink ring search (Sec. II-A).
    Pairs,
    /// No NVLink at all; all intra-server traffic rides PCIe.
    None,
}

/// GPU kernel-launch overhead, identical across generations for our
/// purposes.
pub fn kernel_launch_overhead() -> SimDuration {
    SimDuration::from_micros(6.0)
}

/// Specification of one server (paper: "instance").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// GPU generation installed in this server.
    pub gpu: GpuGeneration,
    /// Number of GPUs (the paper's testbed uses 4 everywhere).
    pub gpu_count: usize,
    /// NVLink wiring among the GPUs.
    pub nvlink: NvlinkTopology,
    /// PCIe generation of the host.
    pub pcie: PcieGeneration,
    /// The single NIC of the server.
    pub nic: NicSpec,
    /// Number of NUMA nodes (CPU sockets).
    pub numa_nodes: usize,
}

impl InstanceSpec {
    /// The paper's A100 server: 4x A100 + NVLink, PCIe 4.0, 100 Gbps
    /// RDMA NIC, two EPYC sockets.
    pub fn a100_server() -> Self {
        InstanceSpec {
            gpu: GpuGeneration::A100,
            gpu_count: 4,
            nvlink: NvlinkTopology::FullMesh,
            pcie: PcieGeneration::Gen4,
            nic: NicSpec::rdma_100g(),
            numa_nodes: 2,
        }
    }

    /// The paper's V100 server: 4x V100 + NVLink, PCIe 3.0, 50 Gbps
    /// RDMA NIC, two Xeon sockets.
    pub fn v100_server() -> Self {
        InstanceSpec {
            gpu: GpuGeneration::V100,
            gpu_count: 4,
            nvlink: NvlinkTopology::FullMesh,
            pcie: PcieGeneration::Gen3,
            nic: NicSpec::rdma_50g(),
            numa_nodes: 2,
        }
    }

    /// A next-generation server: 8x H100 with NVSwitch-like full-mesh
    /// NVLink, PCIe 5.0 and a 400 Gbps RDMA NIC (used by the scale
    /// sweeps; not part of the paper's testbed).
    pub fn h100_server() -> Self {
        InstanceSpec {
            gpu: GpuGeneration::H100,
            gpu_count: 8,
            nvlink: NvlinkTopology::FullMesh,
            pcie: PcieGeneration::Gen5,
            nic: NicSpec::new(Bandwidth::from_gbps(400.0), Transport::Rdma),
            numa_nodes: 2,
        }
    }

    /// A DGX-A100-style server: 8x A100, PCIe 4.0, 200 Gbps RDMA NIC.
    pub fn dgx_a100() -> Self {
        InstanceSpec {
            gpu: GpuGeneration::A100,
            gpu_count: 8,
            nvlink: NvlinkTopology::FullMesh,
            pcie: PcieGeneration::Gen4,
            nic: NicSpec::new(Bandwidth::from_gbps(200.0), Transport::Rdma),
            numa_nodes: 2,
        }
    }

    /// Switches the server's NIC to TCP at the same line rate.
    pub fn with_tcp(mut self) -> Self {
        self.nic = NicSpec::new(self.nic.bandwidth, Transport::Tcp);
        self
    }

    /// Replaces the NVLink wiring.
    pub fn with_nvlink(mut self, nvlink: NvlinkTopology) -> Self {
        self.nvlink = nvlink;
        self
    }

    /// Replaces the GPU count.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn with_gpu_count(mut self, count: usize) -> Self {
        assert!(count > 0, "an instance needs at least one GPU");
        self.gpu_count = count;
        self
    }
}

/// Typical probe payload used by the detector (Sec. IV-A uses 20 MB).
pub fn detector_probe_size() -> ByteSize {
    ByteSize::from_mib(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_factors_are_ordered() {
        assert!(GpuGeneration::V100.compute_factor() < GpuGeneration::A100.compute_factor());
        assert!(GpuGeneration::A100.compute_factor() < GpuGeneration::H100.compute_factor());
    }

    #[test]
    fn nvlink_generations_are_ordered() {
        assert!(
            GpuGeneration::V100.nvlink_pair_bandwidth()
                < GpuGeneration::A100.nvlink_pair_bandwidth()
        );
    }

    #[test]
    fn tcp_flows_are_capped_rdma_not() {
        let tcp = NicSpec::new(Bandwidth::from_gbps(100.0), Transport::Tcp);
        let rdma = NicSpec::rdma_100g();
        let cap = tcp.per_flow_cap().expect("tcp must be capped");
        assert!((cap.as_gbps() - 20.0).abs() < 1e-9);
        assert!(rdma.per_flow_cap().is_none());
    }

    #[test]
    fn slow_tcp_cap_never_exceeds_line_rate() {
        let slow = NicSpec::new(Bandwidth::from_gbps(10.0), Transport::Tcp);
        let cap = slow.per_flow_cap().unwrap();
        assert!(cap.as_gbps() <= 10.0 + 1e-9);
    }

    #[test]
    fn staging_only_for_non_gpu_direct() {
        assert_eq!(NicSpec::rdma_100g().staging_overhead(), SimDuration::ZERO);
        let tcp = NicSpec::new(Bandwidth::from_gbps(100.0), Transport::Tcp);
        assert!(tcp.staging_overhead() > SimDuration::ZERO);
    }

    #[test]
    fn paper_servers_match_testbed() {
        let a = InstanceSpec::a100_server();
        assert_eq!(a.gpu_count, 4);
        assert_eq!(a.gpu, GpuGeneration::A100);
        assert!((a.nic.bandwidth.as_gbps() - 100.0).abs() < 1e-9);
        let v = InstanceSpec::v100_server();
        assert_eq!(v.gpu, GpuGeneration::V100);
        assert!((v.nic.bandwidth.as_gbps() - 50.0).abs() < 1e-9);
        assert_eq!(v.pcie, PcieGeneration::Gen3);
    }

    #[test]
    fn next_gen_presets() {
        let h = InstanceSpec::h100_server();
        assert_eq!(h.gpu_count, 8);
        assert_eq!(h.gpu, GpuGeneration::H100);
        assert!((h.nic.bandwidth.as_gbps() - 400.0).abs() < 1e-9);
        let d = InstanceSpec::dgx_a100();
        assert_eq!(d.gpu_count, 8);
        assert_eq!(d.pcie, PcieGeneration::Gen4);
    }

    #[test]
    fn builder_style_modifiers() {
        let s = InstanceSpec::a100_server()
            .with_tcp()
            .with_nvlink(NvlinkTopology::Pairs)
            .with_gpu_count(8);
        assert_eq!(s.nic.transport, Transport::Tcp);
        assert_eq!(s.nvlink, NvlinkTopology::Pairs);
        assert_eq!(s.gpu_count, 8);
    }
}
