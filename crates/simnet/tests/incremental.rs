//! Property-based verification of the incremental (dirty-frontier)
//! allocator against its from-scratch reference.
//!
//! The contract under test (DESIGN.md §15): on any event sequence, the
//! frontier refill — which only re-fills the connected flow components
//! reachable from links the event touched — must produce an event
//! stream (tokens, kinds, ordering, completion-time *bits*) identical
//! to re-filling every live component from scratch after every event
//! (`with_paranoid_refill`). Debug builds additionally cross-check the
//! allocated rate bits after every single refill inside the engine, so
//! these runs verify rates, times, and order at once.
//!
//! A second property ties the incremental mode back to the exact
//! (fleet-wide) engine: same completion multiset, times within f64
//! rounding tolerance (the two modes differ in fold order by design).

use proptest::prelude::*;

use adapcc_simnet::cluster::{Cluster, InstanceId};
use adapcc_simnet::engine::{FaultAction, NetSim, SimEvent};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;

/// One scripted operation against the engine.
type Op = (u8, usize, usize, u64);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Exact,
    Frontier,
    Paranoid,
}

fn shape(idx: usize) -> Cluster {
    match idx % 4 {
        0 => Cluster::fat_tree(2, 1),
        1 => Cluster::fat_tree(3, 2),
        2 => Cluster::fat_tree(5, 1),
        _ => Cluster::homogeneous_a100(4),
    }
}

fn record(ev: &SimEvent, out: &mut Vec<(u8, u64, u64)>) {
    let kind = match ev {
        SimEvent::TransferDone { .. } => 0u8,
        SimEvent::TransferAborted { .. } => 1,
        SimEvent::Timer { .. } => 2,
    };
    out.push((kind, ev.token(), ev.at().as_secs().to_bits()));
}

/// Replays a random op script: submissions, timers, partial stepping
/// (so completions interleave with later arrivals), and the full fault
/// vocabulary, then drains to quiescence with all links restored.
fn run_ops(c: &Cluster, ops: &[Op], mode: Mode) -> Vec<(u8, u64, u64)> {
    let mut sim = NetSim::new(c)
        .with_incremental_allocator(mode != Mode::Exact)
        .with_paranoid_refill(mode == Mode::Paranoid);
    let n = c.instance_count();
    let mut out = Vec::new();
    let mut token = 0u64;
    for &(kind, a, b, val) in ops {
        let (a, b) = (a % n, b % n);
        match kind % 5 {
            0 => {
                if a != b {
                    let path = c.net_path(InstanceId(a), InstanceId(b));
                    sim.submit_transfer(&path, ByteSize::from_kib(val % 4096), token);
                    token += 1;
                }
            }
            1 => {
                sim.schedule_timer(
                    SimDuration::from_micros((val % 10_000) as f64),
                    1_000_000 + token,
                );
                token += 1;
            }
            2 => {
                for _ in 0..=(val % 3) {
                    match sim.step() {
                        Some(ev) => record(&ev, &mut out),
                        None => break,
                    }
                }
            }
            3 => {
                let l = c.nic_egress_link(InstanceId(a));
                match val % 4 {
                    0 => sim.apply_fault(FaultAction::LinkDown(l)),
                    1 => sim.apply_fault(FaultAction::LinkUp(l)),
                    2 => sim.apply_fault(FaultAction::SetCapacityFactor(
                        l,
                        0.25 + (val % 7) as f64 * 0.25,
                    )),
                    _ => sim.apply_fault(FaultAction::LinkFail(l)),
                }
            }
            _ => {
                let l = c.nic_ingress_link(InstanceId(b));
                let action = match val % 3 {
                    0 => FaultAction::LinkDown(l),
                    1 => FaultAction::LinkUp(l),
                    _ => FaultAction::LinkRecover(l),
                };
                sim.schedule_fault(SimDuration::from_micros((val % 5_000) as f64), action);
            }
        }
    }
    // Restore the fabric so stalled flows drain instead of hanging.
    for i in 0..n {
        for l in [
            c.nic_egress_link(InstanceId(i)),
            c.nic_ingress_link(InstanceId(i)),
        ] {
            sim.apply_fault(FaultAction::LinkRecover(l));
            sim.apply_fault(FaultAction::LinkUp(l));
        }
    }
    for ev in sim.drain() {
        record(&ev, &mut out);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The exactness contract: frontier refills reproduce the
    /// from-scratch-after-every-event reference bit for bit — same
    /// events, same order, same completion-time bits.
    #[test]
    fn frontier_refill_is_bit_identical_to_full_refill(
        shape_idx in 0usize..4,
        ops in proptest::collection::vec(
            (0u8..=255, 0usize..8, 0usize..8, 0u64..1_000_000), 1..48),
    ) {
        let c = shape(shape_idx);
        let frontier = run_ops(&c, &ops, Mode::Frontier);
        let paranoid = run_ops(&c, &ops, Mode::Paranoid);
        prop_assert_eq!(frontier, paranoid);
    }

    /// Tie-back to the exact engine: the incremental mode delivers the
    /// same completions/aborts per token, in a monotone stream, with
    /// times within f64-rounding distance of the fleet-wide filling.
    #[test]
    fn incremental_tracks_exact_engine_physics(
        shape_idx in 0usize..4,
        ops in proptest::collection::vec(
            (0u8..=255, 0usize..8, 0usize..8, 0u64..1_000_000), 1..48),
    ) {
        let c = shape(shape_idx);
        let exact = run_ops(&c, &ops, Mode::Exact);
        let inc = run_ops(&c, &ops, Mode::Frontier);
        prop_assert_eq!(exact.len(), inc.len());
        let key = |evs: &[(u8, u64, u64)]| {
            let mut k: Vec<(u8, u64)> = evs.iter().map(|&(k, t, _)| (k, t)).collect();
            k.sort_unstable();
            k
        };
        prop_assert_eq!(key(&exact), key(&inc), "event multiset differs");
        let times = |evs: &[(u8, u64, u64)]| {
            evs.iter()
                .map(|&(k, t, bits)| ((k, t), f64::from_bits(bits)))
                .collect::<std::collections::HashMap<_, _>>()
        };
        let (te, ti) = (times(&exact), times(&inc));
        for (k, e) in &te {
            let i = ti[k];
            let tol = 1e-9_f64.max(e.abs() * 1e-9);
            prop_assert!((e - i).abs() <= tol,
                "event {k:?}: exact t={e} incremental t={i}");
        }
        prop_assert!(inc.windows(2).all(|w| {
            f64::from_bits(w[0].2) <= f64::from_bits(w[1].2)
        }), "incremental stream not monotone");
    }

    /// Counter-backed gauges agree with the definitionally-correct
    /// full scans at quiescence, in both modes.
    #[test]
    fn counters_survive_random_churn(
        shape_idx in 0usize..4,
        ops in proptest::collection::vec(
            (0u8..=255, 0usize..8, 0usize..8, 0u64..1_000_000), 1..32),
    ) {
        let c = shape(shape_idx);
        for mode in [Mode::Exact, Mode::Frontier] {
            let mut sim = NetSim::new(&c)
                .with_incremental_allocator(mode != Mode::Exact);
            let n = c.instance_count();
            let mut token = 0u64;
            for &(kind, a, b, val) in &ops {
                let (a, b) = (a % n, b % n);
                match kind % 3 {
                    0 => {
                        if a != b {
                            let path = c.net_path(InstanceId(a), InstanceId(b));
                            sim.submit_transfer(
                                &path, ByteSize::from_kib(val % 2048), token);
                            token += 1;
                        }
                    }
                    1 => {
                        while sim.step().is_some() {}
                    }
                    _ => {
                        let l = c.nic_egress_link(InstanceId(a));
                        if val % 2 == 0 {
                            sim.apply_fault(FaultAction::LinkDown(l));
                        } else {
                            sim.apply_fault(FaultAction::LinkUp(l));
                        }
                    }
                }
            }
            while sim.step().is_some() {}
            // At quiescence every remaining draining flow is stalled.
            prop_assert_eq!(sim.draining_flows(), sim.stalled_flows());
        }
    }
}
