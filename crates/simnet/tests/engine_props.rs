//! Property-based tests of the fluid transport engine: conservation,
//! fairness, ordering, and determinism under random workloads.

use proptest::prelude::*;

use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::engine::{NetSim, SimEvent};
use adapcc_simnet::units::{Bandwidth, ByteSize};

fn cluster() -> &'static Cluster {
    use std::sync::OnceLock;
    static C: OnceLock<Cluster> = OnceLock::new();
    C.get_or_init(|| Cluster::homogeneous_a100(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted transfer completes exactly once, regardless of
    /// the contention pattern.
    #[test]
    fn every_transfer_completes_once(
        jobs in proptest::collection::vec((0usize..3, 0usize..3, 1u64..64), 1..40)
    ) {
        let c = cluster();
        let mut sim = NetSim::new(c);
        let mut expected = 0u64;
        for (i, (a, b, mib)) in jobs.iter().enumerate() {
            if a == b {
                continue;
            }
            let path = c.net_path(InstanceId(*a), InstanceId(*b));
            sim.submit_transfer(&path, ByteSize::from_mib(*mib), i as u64);
            expected += 1;
        }
        let events = sim.drain();
        prop_assert_eq!(events.len() as u64, expected);
        let mut tokens: Vec<u64> = events.iter().map(|e| e.token()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        prop_assert_eq!(tokens.len() as u64, expected, "no duplicate completions");
    }

    /// Completion times are lower-bounded by the uncontended time and
    /// upper-bounded by full serialization on the tightest port.
    #[test]
    fn completion_respects_physical_bounds(
        sizes in proptest::collection::vec(1u64..128, 1..12)
    ) {
        let c = cluster();
        let mut sim = NetSim::new(c);
        let path = c.net_path(InstanceId(0), InstanceId(1));
        let bw = Bandwidth::from_gbps(100.0).as_bytes_per_sec();
        let mut total = 0.0;
        for (i, mib) in sizes.iter().enumerate() {
            let b = ByteSize::from_mib(*mib);
            total += b.as_f64();
            sim.submit_transfer(&path, b, i as u64);
        }
        let events = sim.drain();
        let alpha = c.path_alpha(&path).as_secs();
        let last = events.iter().map(|e| e.at().as_secs()).fold(0.0, f64::max);
        // All flows share one egress port: total bytes / port rate is a
        // hard floor; add alpha for the latency phase.
        prop_assert!(last + 1e-9 >= total / bw, "last {last}, floor {}", total / bw);
        prop_assert!(
            last <= total / bw + alpha + 1e-6,
            "equal sharing can never exceed serialization: {last}"
        );
    }

    /// Events are delivered in non-decreasing time order.
    #[test]
    fn event_times_are_monotone(
        jobs in proptest::collection::vec((0usize..3, 0usize..3, 1u64..32), 1..30),
        timers in proptest::collection::vec(0u64..50_000, 0..10),
    ) {
        let c = cluster();
        let mut sim = NetSim::new(c);
        let mut token = 0u64;
        for (a, b, mib) in &jobs {
            if a == b {
                continue;
            }
            let path = c.net_path(InstanceId(*a), InstanceId(*b));
            sim.submit_transfer(&path, ByteSize::from_mib(*mib), token);
            token += 1;
        }
        for us in &timers {
            sim.schedule_timer(
                adapcc_simnet::time::SimDuration::from_micros(*us as f64),
                token,
            );
            token += 1;
        }
        let mut prev = 0.0;
        while let Some(ev) = sim.step() {
            let t = ev.at().as_secs();
            prop_assert!(t + 1e-12 >= prev, "time went backwards: {t} < {prev}");
            prev = t;
        }
    }

    /// Replays are bit-identical for any workload.
    #[test]
    fn engine_is_deterministic(
        jobs in proptest::collection::vec((0usize..3, 0usize..3, 1u64..64), 1..24)
    ) {
        let run = || {
            let c = cluster();
            let mut sim = NetSim::new(c);
            for (i, (a, b, mib)) in jobs.iter().enumerate() {
                if a == b {
                    continue;
                }
                let path = c.net_path(InstanceId(*a), InstanceId(*b));
                sim.submit_transfer(&path, ByteSize::from_mib(*mib), i as u64);
            }
            sim.drain()
                .into_iter()
                .map(|e| (e.token(), e.at().as_secs().to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Equal flows on one link finish together (fair sharing).
    #[test]
    fn identical_flows_share_fairly(k in 2usize..8, mib in 4u64..64) {
        let c = cluster();
        let mut sim = NetSim::new(c);
        let path = c.net_path(InstanceId(0), InstanceId(2));
        for i in 0..k {
            sim.submit_transfer(&path, ByteSize::from_mib(mib), i as u64);
        }
        let events = sim.drain();
        let times: Vec<f64> = events.iter().map(|e| e.at().as_secs()).collect();
        let spread = times.iter().cloned().fold(0.0, f64::max)
            - times.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(spread < 1e-6, "identical flows diverged by {spread}");
    }
}

#[test]
fn intra_and_inter_flows_do_not_interfere() {
    // An NVLink transfer and a network transfer share no resources.
    let c = cluster();
    let solo = {
        let mut sim = NetSim::new(c);
        sim.submit_transfer(&c.intra_path(Rank(0), Rank(1)), ByteSize::from_mib(64), 0);
        sim.drain()[0].at().as_secs()
    };
    let mut sim = NetSim::new(c);
    sim.submit_transfer(&c.intra_path(Rank(0), Rank(1)), ByteSize::from_mib(64), 0);
    sim.submit_transfer(
        &c.net_path(InstanceId(0), InstanceId(1)),
        ByteSize::from_mib(64),
        1,
    );
    let both: Vec<SimEvent> = sim.drain();
    let nv = both.iter().find(|e| e.token() == 0).unwrap().at().as_secs();
    assert!((nv - solo).abs() < 1e-9);
}
