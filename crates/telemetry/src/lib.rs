//! Deterministic telemetry for the AdapCC pipeline.
//!
//! Every phase of the pipeline — detection, profiling, synthesis,
//! execution — and every simulated transfer can report into one
//! [`Telemetry`] sink: timed *spans* on named tracks, named f64
//! *counters*, and per-link [`FlowRecord`]s carrying bytes plus
//! queueing/transmit timing. Two exporters render the sink:
//! [`Telemetry::chrome_trace`] (a `chrome://tracing` JSON timeline)
//! and [`Telemetry::metrics_summary`] (a flat JSON summary with
//! per-link utilization, flow-completion-time statistics, and the
//! relay wait/transmit split).
//!
//! All timestamps are *simulated* seconds — no wall clock is read
//! anywhere — so two runs with the same seed produce byte-identical
//! exports. That determinism is what the golden-trace test harness
//! asserts.
//!
//! The sink is an `Arc<Mutex<_>>` behind a cheap-to-clone handle; the
//! disabled default makes every recording call a no-op, so
//! instrumented hot paths cost one branch when telemetry is off.
//! Components record on their own local clock (starting at zero);
//! callers stitch phases onto one session timeline with
//! [`Telemetry::at_offset`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One timed span on a named track (e.g. phase `detect` on track
/// `phase`). Times are absolute simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span label shown on the timeline.
    pub name: String,
    /// Track (Chrome-trace thread) the span renders on.
    pub track: String,
    /// Start instant, simulated seconds.
    pub start_secs: f64,
    /// End instant, simulated seconds.
    pub end_secs: f64,
}

/// One recorded transfer over one logical link.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Logical link label, e.g. `gpu1->nic0`.
    pub link: String,
    /// Payload bytes.
    pub bytes: u64,
    /// Instant the chunk was queued behind the link (equals
    /// `start_secs` when the link was idle).
    pub enqueued_secs: f64,
    /// Instant the transfer hit the wire.
    pub start_secs: f64,
    /// Completion instant.
    pub end_secs: f64,
    /// Request index within the batch.
    pub request: usize,
    /// Sub-collective index within the lowered batch.
    pub sub: usize,
    /// Chunk index.
    pub chunk: usize,
}

impl FlowRecord {
    /// Time spent queued behind earlier chunks of the same hop.
    pub fn queue_secs(&self) -> f64 {
        self.start_secs - self.enqueued_secs
    }

    /// Time on the wire.
    pub fn transmit_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }

    /// Flow completion time (queueing included).
    pub fn completion_secs(&self) -> f64 {
        self.end_secs - self.enqueued_secs
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<Span>,
    flows: Vec<FlowRecord>,
    counters: BTreeMap<String, f64>,
}

/// A per-session telemetry sink handle.
///
/// Clones share the sink; [`Telemetry::at_offset`] derives a handle
/// whose recordings are shifted by a fixed offset, which is how
/// pipeline phases that each run on a local zero-based clock are
/// stitched onto one session timeline.
///
/// # Examples
///
/// ```
/// use adapcc_telemetry::Telemetry;
///
/// let t = Telemetry::enabled();
/// t.span("detect", "phase", 0.0, 1.5);
/// let later = t.at_offset(1.5);
/// later.span("profile", "phase", 0.0, 2.0);
/// let spans = t.spans();
/// assert_eq!(spans[1].start_secs, 1.5);
/// assert_eq!(spans[1].end_secs, 3.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
    base_secs: f64,
}

impl Telemetry {
    /// The no-op handle: every recording call returns immediately.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A fresh, empty, recording sink.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
            base_secs: 0.0,
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same sink whose local time zero maps to
    /// `secs` on the session timeline.
    pub fn at_offset(&self, secs: f64) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            base_secs: self.base_secs + secs,
        }
    }

    /// This handle's offset on the session timeline.
    pub fn base_secs(&self) -> f64 {
        self.base_secs
    }

    /// Records a span; `start`/`end` are local seconds.
    pub fn span(&self, name: &str, track: &str, start_secs: f64, end_secs: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().expect("telemetry lock").spans.push(Span {
            name: name.to_string(),
            track: track.to_string(),
            start_secs: self.base_secs + start_secs,
            end_secs: self.base_secs + end_secs,
        });
    }

    /// Adds `delta` to a named counter (created at zero).
    pub fn add_counter(&self, name: &str, delta: f64) {
        let Some(inner) = &self.inner else { return };
        *inner
            .lock()
            .expect("telemetry lock")
            .counters
            .entry(name.to_string())
            .or_insert(0.0) += delta;
    }

    /// Adds `delta` to a per-process-group counter
    /// (`group.<label>.<metric>`). Group labels come from
    /// `ProcessGroup::label()` — short, deterministic, axis-tagged — so
    /// concurrent groups get distinct, stable counter streams. A no-op
    /// when disabled, and the format allocation is skipped entirely.
    pub fn add_group_counter(&self, label: &str, metric: &str, delta: f64) {
        if self.inner.is_none() {
            return;
        }
        self.add_counter(&format!("group.{label}.{metric}"), delta);
    }

    /// Records a span on a per-process-group track (`group.<label>`),
    /// so each group's plan/execute phases render as their own lane on
    /// the stitched timeline. A no-op when disabled.
    pub fn group_span(&self, label: &str, name: &str, start_secs: f64, end_secs: f64) {
        if self.inner.is_none() {
            return;
        }
        self.span(name, &format!("group.{label}"), start_secs, end_secs);
    }

    /// Sets a named counter to an absolute value.
    pub fn set_counter(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .expect("telemetry lock")
            .counters
            .insert(name.to_string(), value);
    }

    /// Current value of a counter (zero when absent or disabled).
    pub fn counter(&self, name: &str) -> f64 {
        let Some(inner) = &self.inner else { return 0.0 };
        inner
            .lock()
            .expect("telemetry lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Records a flow; the record's times are local seconds and are
    /// shifted by this handle's offset.
    pub fn flow(&self, mut record: FlowRecord) {
        let Some(inner) = &self.inner else { return };
        record.enqueued_secs += self.base_secs;
        record.start_secs += self.base_secs;
        record.end_secs += self.base_secs;
        inner.lock().expect("telemetry lock").flows.push(record);
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry lock").spans.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of all recorded flows, in recording order.
    pub fn flows(&self) -> Vec<FlowRecord> {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry lock").flows.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, f64> {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry lock").counters.clone(),
            None => BTreeMap::new(),
        }
    }

    /// Renders the sink as Chrome-trace JSON (`chrome://tracing` /
    /// Perfetto). Spans become complete (`"ph": "X"`) events on pid 1
    /// with one tid per track; flows become complete events on pid 2
    /// with one tid per link. Event order and tid assignment depend
    /// only on recorded content, so equal recordings render to
    /// byte-identical JSON.
    pub fn chrome_trace(&self) -> String {
        let (spans, flows) = (self.spans(), self.flows());
        let track_tids: BTreeMap<&str, usize> = spans
            .iter()
            .map(|s| s.track.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .zip(0..)
            .collect();
        let link_tids: BTreeMap<&str, usize> = flows
            .iter()
            .map(|f| f.link.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .zip(0..)
            .collect();
        let mut events = Vec::new();
        for s in &spans {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape(&s.name),
                escape(&s.track),
                fmt_us(s.start_secs),
                fmt_us(s.end_secs - s.start_secs),
                track_tids[s.track.as_str()],
            ));
        }
        for f in &flows {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":2,\"tid\":{},\
                 \"args\":{{\"bytes\":{},\"request\":{},\"sub\":{},\"chunk\":{},\"queue_us\":{}}}}}",
                escape(&f.link),
                fmt_us(f.start_secs),
                fmt_us(f.transmit_secs()),
                link_tids[f.link.as_str()],
                f.bytes,
                f.request,
                f.sub,
                f.chunk,
                fmt_us(f.queue_secs()),
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",\n")
        )
    }

    /// Renders the sink as a flat JSON metrics summary: all counters,
    /// the phase spans, per-link aggregates (flow count, bytes, busy
    /// and queue time, utilization = busy time over the link's active
    /// window — above 1 means overlapping flows shared the link), flow
    /// completion time statistics, and the relay wait/transmit split
    /// (from the `relay.wait_secs` / `relay.transmit_secs` counters).
    pub fn metrics_summary(&self) -> String {
        let (spans, flows, counters) = (self.spans(), self.flows(), self.counters());
        let mut out = String::from("{\n  \"counters\": {");
        let entries: Vec<String> = counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", escape(k), fmt_num(*v)))
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("},\n  \"phases\": [");
        let phase_entries: Vec<String> = spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"track\": \"{}\", \"start_us\": {}, \"dur_us\": {}}}",
                    escape(&s.name),
                    escape(&s.track),
                    fmt_us(s.start_secs),
                    fmt_us(s.end_secs - s.start_secs),
                )
            })
            .collect();
        out.push_str(&phase_entries.join(", "));
        out.push_str("],\n  \"links\": [");
        #[derive(Default)]
        struct LinkAgg {
            flows: u64,
            bytes: u64,
            busy_secs: f64,
            queue_secs: f64,
            first: f64,
            last: f64,
        }
        let mut links: BTreeMap<&str, LinkAgg> = BTreeMap::new();
        for f in &flows {
            let agg = links.entry(f.link.as_str()).or_insert(LinkAgg {
                first: f.start_secs,
                last: f.end_secs,
                ..Default::default()
            });
            agg.flows += 1;
            agg.bytes += f.bytes;
            agg.busy_secs += f.transmit_secs();
            agg.queue_secs += f.queue_secs();
            agg.first = agg.first.min(f.start_secs);
            agg.last = agg.last.max(f.end_secs);
        }
        let link_entries: Vec<String> = links
            .iter()
            .map(|(link, a)| {
                let window = a.last - a.first;
                let util = if window > 0.0 {
                    a.busy_secs / window
                } else {
                    0.0
                };
                format!(
                    "{{\"link\": \"{}\", \"flows\": {}, \"bytes\": {}, \"busy_us\": {}, \
                     \"queue_us\": {}, \"utilization\": {}}}",
                    escape(link),
                    a.flows,
                    a.bytes,
                    fmt_us(a.busy_secs),
                    fmt_us(a.queue_secs),
                    fmt_num(util),
                )
            })
            .collect();
        out.push_str(&link_entries.join(",\n    "));
        let (mut fct_max, mut fct_sum) = (0.0f64, 0.0f64);
        for f in &flows {
            fct_max = fct_max.max(f.completion_secs());
            fct_sum += f.completion_secs();
        }
        let fct_mean = if flows.is_empty() {
            0.0
        } else {
            fct_sum / flows.len() as f64
        };
        out.push_str(&format!(
            "],\n  \"fct\": {{\"flows\": {}, \"mean_us\": {}, \"max_us\": {}}},\n",
            flows.len(),
            fmt_us(fct_mean),
            fmt_us(fct_max),
        ));
        let wait = counters.get("relay.wait_secs").copied().unwrap_or(0.0);
        let transmit = counters.get("relay.transmit_secs").copied().unwrap_or(0.0);
        out.push_str(&format!(
            "  \"relay\": {{\"wait_secs\": {}, \"transmit_secs\": {}}}\n}}\n",
            fmt_num(wait),
            fmt_num(transmit),
        ));
        out
    }
}

/// Microseconds with fixed three-decimal formatting — deterministic
/// for equal inputs, and the natural Chrome-trace unit.
fn fmt_us(secs: f64) -> String {
    format!("{:.3}", secs * 1e6)
}

/// A counter value: integers print without a fraction, everything
/// else uses Rust's shortest-roundtrip f64 formatting (deterministic
/// for equal values).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(link: &str, bytes: u64, enq: f64, start: f64, end: f64) -> FlowRecord {
        FlowRecord {
            link: link.into(),
            bytes,
            enqueued_secs: enq,
            start_secs: start,
            end_secs: end,
            request: 0,
            sub: 0,
            chunk: 0,
        }
    }

    #[test]
    fn disabled_handle_is_a_noop() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.span("a", "phase", 0.0, 1.0);
        t.add_counter("x", 1.0);
        t.flow(flow("l", 1, 0.0, 0.0, 1.0));
        assert!(t.spans().is_empty());
        assert!(t.flows().is_empty());
        assert_eq!(t.counter("x"), 0.0);
        assert_eq!(
            t.chrome_trace(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
        );
    }

    #[test]
    fn counters_add_and_set() {
        let t = Telemetry::enabled();
        t.add_counter("a", 2.0);
        t.add_counter("a", 3.0);
        t.set_counter("b", 7.5);
        assert_eq!(t.counter("a"), 5.0);
        assert_eq!(t.counter("b"), 7.5);
        assert_eq!(t.counter("missing"), 0.0);
    }

    #[test]
    fn offsets_stack_and_shift_recordings() {
        let t = Telemetry::enabled();
        let a = t.at_offset(1.0);
        let b = a.at_offset(0.5);
        assert_eq!(b.base_secs(), 1.5);
        b.span("s", "phase", 0.0, 1.0);
        b.flow(flow("l", 10, 0.0, 0.1, 0.2));
        let spans = t.spans();
        assert_eq!(spans[0].start_secs, 1.5);
        assert_eq!(spans[0].end_secs, 2.5);
        let flows = t.flows();
        assert_eq!(flows[0].enqueued_secs, 1.5);
        assert_eq!(flows[0].start_secs, 1.6);
        assert!((flows[0].end_secs - 1.7).abs() < 1e-12);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::enabled();
        let c = t.clone();
        c.add_counter("shared", 1.0);
        assert_eq!(t.counter("shared"), 1.0);
    }

    #[test]
    fn chrome_trace_renders_spans_and_flows() {
        let t = Telemetry::enabled();
        t.span("detect", "phase", 0.0, 0.001);
        t.flow(flow("gpu0->nic0", 4096, 0.001, 0.0015, 0.002));
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"detect\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1000.000"));
        assert!(json.contains("\"name\":\"gpu0->nic0\""));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.contains("\"queue_us\":500.000"));
    }

    #[test]
    fn chrome_trace_is_deterministic_for_equal_recordings() {
        let record = |t: &Telemetry| {
            t.span("profile", "phase", 0.0, 0.25);
            t.flow(flow("nic0->nic1", 1 << 20, 0.0, 0.0, 0.1));
            t.flow(flow("nic1->nic0", 1 << 20, 0.0, 0.05, 0.15));
            t.add_counter("exec.bytes_on_wire", 2.0 * (1 << 20) as f64);
        };
        let (a, b) = (Telemetry::enabled(), Telemetry::enabled());
        record(&a);
        record(&b);
        assert_eq!(a.chrome_trace(), b.chrome_trace());
        assert_eq!(a.metrics_summary(), b.metrics_summary());
    }

    #[test]
    fn metrics_summary_aggregates_links_and_fct() {
        let t = Telemetry::enabled();
        // Two sequential flows on one link: 1 MiB each, 0.1 s on the
        // wire, second queued 0.1 s.
        t.flow(flow("nic0->nic1", 1 << 20, 0.0, 0.0, 0.1));
        t.flow(flow("nic0->nic1", 1 << 20, 0.0, 0.1, 0.2));
        let m = t.metrics_summary();
        assert!(m.contains("\"link\": \"nic0->nic1\""));
        assert!(m.contains("\"flows\": 2"));
        assert!(m.contains(&format!("\"bytes\": {}", 2u64 << 20)));
        // busy 0.2 s over a 0.2 s window: fully utilized.
        assert!(m.contains("\"utilization\": 1"), "{m}");
        // FCTs are 0.1 s and 0.2 s.
        assert!(m.contains("\"mean_us\": 150000.000"), "{m}");
        assert!(m.contains("\"max_us\": 200000.000"), "{m}");
    }

    #[test]
    fn relay_split_surfaces_in_summary() {
        let t = Telemetry::enabled();
        t.add_counter("relay.wait_secs", 0.02);
        t.add_counter("relay.transmit_secs", 0.05);
        let m = t.metrics_summary();
        assert!(m.contains("\"wait_secs\": 0.02"), "{m}");
        assert!(m.contains("\"transmit_secs\": 0.05"), "{m}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let t = Telemetry::enabled();
        t.span("we\"ird", "ph\\ase", 0.0, 1.0);
        let json = t.chrome_trace();
        assert!(json.contains("we\\\"ird"));
        assert!(json.contains("ph\\\\ase"));
    }

    #[test]
    fn flow_record_timing_helpers() {
        let f = flow("l", 1, 1.0, 1.5, 2.5);
        assert!((f.queue_secs() - 0.5).abs() < 1e-12);
        assert!((f.transmit_secs() - 1.0).abs() < 1e-12);
        assert!((f.completion_secs() - 1.5).abs() < 1e-12);
    }
}
