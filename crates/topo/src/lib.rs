//! # adapcc-topo
//!
//! Topology detection for AdapCC (paper Sec. IV-A): infers GPU
//! placement, PCIe switch sharing, NIC NUMA affinity and NVLink wiring
//! from timing probes, and assembles the logical communication graph
//! (Fig. 5(a)) consumed by the profiler and synthesizer.
//!
//! The detector sees only probe timings — never the simulator's ground
//! truth — so the inference logic is exactly what would run against real
//! hardware.
//!
//! # Example
//!
//! ```
//! use adapcc_simnet::cluster::Cluster;
//! use adapcc_topo::detect::Detector;
//!
//! let cluster = Cluster::paper_testbed();
//! let report = Detector::new(&cluster, 42).run();
//! let topo = report.logical_topology(&cluster);
//! assert_eq!(topo.gpu_nodes().len(), 24);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
pub mod logical;

pub use detect::{DetectionReport, Detector, InstanceDetection};
pub use logical::{EdgeId, EdgeKind, LogicalEdge, LogicalNode, LogicalTopology};
