//! The logical topology (paper Fig. 5(a)): the graph the synthesizer
//! routes over.
//!
//! Nodes are GPUs and NICs. Edges are NVLink GPU pairs, PCIe peer
//! routes between unlinked same-instance GPU pairs, host links between
//! each GPU and its instance NIC, and the fully connected NIC-to-NIC
//! network. All edges are directed; physical duplex media produce two
//! edges.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::{Cluster, InstanceId, Path, Rank};

/// A node of the logical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LogicalNode {
    /// A worker's GPU, identified by global rank.
    Gpu(Rank),
    /// An instance's NIC.
    Nic(InstanceId),
}

impl fmt::Display for LogicalNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalNode::Gpu(r) => write!(f, "gpu{}", r.0),
            LogicalNode::Nic(i) => write!(f, "nic{}", i.0),
        }
    }
}

/// The medium class of a logical edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Direct NVLink between two GPUs of one instance.
    NvLink,
    /// PCIe peer route between two GPUs of one instance that lack a
    /// direct NVLink (the paper's dotted lines).
    PciePeer,
    /// Host link between a GPU and its instance's NIC (PCIe; the paper
    /// does not profile these — staging overlaps with the network).
    HostLink,
    /// NIC-to-NIC datacenter network connection.
    Network,
}

/// Index of an edge within a [`LogicalTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// A directed logical edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalEdge {
    /// Tail node.
    pub from: LogicalNode,
    /// Head node.
    pub to: LogicalNode,
    /// Medium class.
    pub kind: EdgeKind,
}

/// The logical communication graph over one training job.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::Cluster;
/// use adapcc_topo::detect::Detector;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let report = Detector::new(&cluster, 1).run();
/// let topo = report.logical_topology(&cluster);
/// assert_eq!(topo.gpu_nodes().len(), 8);
/// assert_eq!(topo.nic_nodes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalTopology {
    nodes: Vec<LogicalNode>,
    edges: Vec<LogicalEdge>,
    #[serde(skip)]
    out_edges: HashMap<LogicalNode, Vec<EdgeId>>,
    #[serde(skip)]
    in_edges: HashMap<LogicalNode, Vec<EdgeId>>,
    #[serde(skip)]
    by_ends: HashMap<(LogicalNode, LogicalNode), EdgeId>,
}

impl LogicalTopology {
    /// Builds a topology from explicit nodes and edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node not in `nodes`, if a
    /// duplicate directed edge exists, or if an edge is a self-loop.
    pub fn new(nodes: Vec<LogicalNode>, edges: Vec<LogicalEdge>) -> Self {
        let mut topo = LogicalTopology {
            nodes,
            edges,
            out_edges: HashMap::new(),
            in_edges: HashMap::new(),
            by_ends: HashMap::new(),
        };
        topo.reindex();
        topo
    }

    fn reindex(&mut self) {
        self.out_edges.clear();
        self.in_edges.clear();
        self.by_ends.clear();
        let node_set: std::collections::HashSet<_> = self.nodes.iter().copied().collect();
        for (i, e) in self.edges.iter().enumerate() {
            assert!(e.from != e.to, "self-loop edge {e:?}");
            assert!(
                node_set.contains(&e.from) && node_set.contains(&e.to),
                "edge endpoints must be nodes: {e:?}"
            );
            let id = EdgeId(i);
            self.out_edges.entry(e.from).or_default().push(id);
            self.in_edges.entry(e.to).or_default().push(id);
            let prev = self.by_ends.insert((e.from, e.to), id);
            assert!(prev.is_none(), "duplicate edge {:?} -> {:?}", e.from, e.to);
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[LogicalNode] {
        &self.nodes
    }

    /// All edges, indexable by [`EdgeId`].
    pub fn edges(&self) -> &[LogicalEdge] {
        &self.edges
    }

    /// One edge.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> &LogicalEdge {
        &self.edges[id.0]
    }

    /// GPU nodes, in rank order.
    pub fn gpu_nodes(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                LogicalNode::Gpu(r) => Some(*r),
                LogicalNode::Nic(_) => None,
            })
            .collect();
        v.sort();
        v
    }

    /// NIC nodes, in instance order.
    pub fn nic_nodes(&self) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                LogicalNode::Nic(i) => Some(*i),
                LogicalNode::Gpu(_) => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Outgoing edges of a node (empty for unknown nodes).
    pub fn edges_from(&self, node: LogicalNode) -> &[EdgeId] {
        self.out_edges.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Incoming edges of a node (empty for unknown nodes).
    pub fn edges_into(&self, node: LogicalNode) -> &[EdgeId] {
        self.in_edges.get(&node).map_or(&[], Vec::as_slice)
    }

    /// The directed edge between two nodes, if present.
    pub fn edge_between(&self, from: LogicalNode, to: LogicalNode) -> Option<EdgeId> {
        self.by_ends.get(&(from, to)).copied()
    }

    /// Maps a logical edge onto the physical route it rides, for
    /// execution or probing.
    ///
    /// # Panics
    ///
    /// Panics if the edge endpoints are inconsistent with its kind
    /// (cannot happen for topologies built by this crate).
    pub fn edge_path(&self, cluster: &Cluster, id: EdgeId) -> Path {
        let e = self.edge(id);
        match (e.from, e.to, e.kind) {
            (LogicalNode::Gpu(a), LogicalNode::Gpu(b), EdgeKind::NvLink)
            | (LogicalNode::Gpu(a), LogicalNode::Gpu(b), EdgeKind::PciePeer) => {
                cluster.intra_path(a, b)
            }
            (LogicalNode::Gpu(g), LogicalNode::Nic(i), EdgeKind::HostLink) => {
                // GPU -> host -> NIC staging route.
                let (inst, _) = cluster.locate(g);
                assert_eq!(inst, i, "host link must stay on one instance");
                let mut p = cluster.gpu_to_host_path(g, cluster.nic_numa_index(i));
                p.links
                    .extend(cluster.host_to_nic_path(i, cluster.nic_numa_index(i)).links);
                p
            }
            (LogicalNode::Nic(i), LogicalNode::Gpu(g), EdgeKind::HostLink) => {
                let (inst, _) = cluster.locate(g);
                assert_eq!(inst, i, "host link must stay on one instance");
                let mut p = cluster.nic_to_host_path(i, cluster.nic_numa_index(i));
                // Reverse of the gpu_to_host route.
                let fwd = cluster.gpu_to_host_path(g, cluster.nic_numa_index(i));
                let mut rev: Vec<_> = fwd
                    .links
                    .iter()
                    .rev()
                    .map(|l| {
                        let d = cluster.link(*l);
                        cluster
                            .link_between(d.dst, d.src)
                            .expect("duplex physical link")
                    })
                    .collect();
                p.links.append(&mut rev);
                p
            }
            (LogicalNode::Nic(a), LogicalNode::Nic(b), EdgeKind::Network) => cluster.net_path(a, b),
            _ => panic!("inconsistent edge {e:?}"),
        }
    }

    /// Edges of one kind.
    pub fn edges_of_kind(&self, kind: EdgeKind) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == kind)
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LogicalTopology {
        let g0 = LogicalNode::Gpu(Rank(0));
        let g1 = LogicalNode::Gpu(Rank(1));
        let n0 = LogicalNode::Nic(InstanceId(0));
        LogicalTopology::new(
            vec![g0, g1, n0],
            vec![
                LogicalEdge {
                    from: g0,
                    to: g1,
                    kind: EdgeKind::NvLink,
                },
                LogicalEdge {
                    from: g1,
                    to: g0,
                    kind: EdgeKind::NvLink,
                },
                LogicalEdge {
                    from: g0,
                    to: n0,
                    kind: EdgeKind::HostLink,
                },
            ],
        )
    }

    #[test]
    fn adjacency_indexes() {
        let t = tiny();
        let g0 = LogicalNode::Gpu(Rank(0));
        let g1 = LogicalNode::Gpu(Rank(1));
        assert_eq!(t.edges_from(g0).len(), 2);
        assert_eq!(t.edges_into(g0).len(), 1);
        assert!(t.edge_between(g0, g1).is_some());
        assert!(t
            .edge_between(g1, LogicalNode::Nic(InstanceId(0)))
            .is_none());
    }

    #[test]
    fn node_listings_sorted() {
        let t = tiny();
        assert_eq!(t.gpu_nodes(), vec![Rank(0), Rank(1)]);
        assert_eq!(t.nic_nodes(), vec![InstanceId(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let g0 = LogicalNode::Gpu(Rank(0));
        let g1 = LogicalNode::Gpu(Rank(1));
        let e = LogicalEdge {
            from: g0,
            to: g1,
            kind: EdgeKind::NvLink,
        };
        let _ = LogicalTopology::new(vec![g0, g1], vec![e, e]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let g0 = LogicalNode::Gpu(Rank(0));
        let e = LogicalEdge {
            from: g0,
            to: g0,
            kind: EdgeKind::NvLink,
        };
        let _ = LogicalTopology::new(vec![g0], vec![e]);
    }

    #[test]
    fn kind_filter() {
        let t = tiny();
        assert_eq!(t.edges_of_kind(EdgeKind::NvLink).len(), 2);
        assert_eq!(t.edges_of_kind(EdgeKind::Network).len(), 0);
    }
}
