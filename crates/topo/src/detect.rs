//! Topology detection (paper Sec. IV-A).
//!
//! Run at job initialization (or when a worker joins during elastic
//! scaling), the detector coordinates the GPUs of each instance to send
//! timing probes and infers, *without reading any ground truth*:
//!
//! 1. the NUMA affinity of the NIC (socket-loopback latency from each
//!    socket — the nearest socket sees the smallest latency);
//! 2. which GPU pairs share a PCIe switch (simultaneous GPU-to-host
//!    copies collapse in bandwidth when the uplink is shared);
//! 3. which GPUs share a PCIe switch with the NIC (a GPU-to-host copy
//!    concurrent with a host-NIC loopback is slowed only when the
//!    route is shared);
//! 4. which GPU pairs have a direct NVLink (peer-copy bandwidth far
//!    above any PCIe route).
//!
//! Instance-to-instance connectivity is then taken as a full mesh
//! (the paper's assumption), yielding the [`LogicalTopology`].

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::hardware::detector_probe_size;
use adapcc_simnet::probe::{ProbeRunner, ProbeSpec};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;

use crate::logical::{EdgeKind, LogicalEdge, LogicalNode, LogicalTopology};

/// Bandwidth collapse ratio under contention that implies a shared
/// PCIe route (measured/solo below this → shared).
const CONTENTION_RATIO: f64 = 0.75;

/// Peer-copy bandwidth above this implies a direct NVLink.
const NVLINK_THRESHOLD_GBS: f64 = 40.0;

/// Fixed software overhead of one NUMA-bind + socket loopback test.
fn numa_bind_overhead() -> SimDuration {
    SimDuration::from_millis(150.0)
}

/// Fixed software overhead of one contention probe (spawning the 8
/// parallel transmissions of the paper's recipe).
fn pair_probe_overhead() -> SimDuration {
    SimDuration::from_millis(60.0)
}

/// Fixed software overhead of one peer-copy probe.
fn peer_probe_overhead() -> SimDuration {
    SimDuration::from_millis(20.0)
}

/// What was inferred about one instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceDetection {
    /// Socket nearest to the NIC.
    pub nic_numa: usize,
    /// Partition of local GPU indices into shared-switch groups.
    pub switch_groups: Vec<Vec<usize>>,
    /// Local GPUs inferred to share a PCIe switch with the NIC.
    pub nic_colocated_gpus: Vec<usize>,
    /// Local GPU pairs with a direct NVLink (a < b).
    pub nvlink_pairs: Vec<(usize, usize)>,
}

/// The full detection result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Per-instance findings, in instance order.
    pub instances: Vec<InstanceDetection>,
    /// Wall-clock cost of detection. Instances probe concurrently, so
    /// this is the slowest instance's probe schedule (the paper
    /// measures ~1.2 s, constant in job scale).
    pub elapsed: SimDuration,
}

impl DetectionReport {
    /// Builds the logical topology (Fig. 5(a)) implied by the report:
    /// NVLink edges where detected, PCIe peer edges between unlinked
    /// same-instance pairs, host links between every GPU and its NIC,
    /// and a full NIC-to-NIC mesh.
    pub fn logical_topology(&self, cluster: &Cluster) -> LogicalTopology {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for r in 0..cluster.gpu_count() {
            nodes.push(LogicalNode::Gpu(Rank(r)));
        }
        for i in 0..cluster.instance_count() {
            nodes.push(LogicalNode::Nic(InstanceId(i)));
        }
        let push_pair = |edges: &mut Vec<LogicalEdge>, a, b, kind| {
            edges.push(LogicalEdge {
                from: a,
                to: b,
                kind,
            });
            edges.push(LogicalEdge {
                from: b,
                to: a,
                kind,
            });
        };
        for (i, det) in self.instances.iter().enumerate() {
            let inst = InstanceId(i);
            let n = cluster.gpus_on(inst);
            let nvlinked: std::collections::HashSet<(usize, usize)> =
                det.nvlink_pairs.iter().copied().collect();
            for a in 0..n {
                for b in (a + 1)..n {
                    let ra = LogicalNode::Gpu(cluster.rank_of(inst, a));
                    let rb = LogicalNode::Gpu(cluster.rank_of(inst, b));
                    let kind = if nvlinked.contains(&(a, b)) {
                        EdgeKind::NvLink
                    } else {
                        EdgeKind::PciePeer
                    };
                    push_pair(&mut edges, ra, rb, kind);
                }
                let g = LogicalNode::Gpu(cluster.rank_of(inst, a));
                push_pair(&mut edges, g, LogicalNode::Nic(inst), EdgeKind::HostLink);
            }
        }
        for a in 0..cluster.instance_count() {
            for b in (a + 1)..cluster.instance_count() {
                push_pair(
                    &mut edges,
                    LogicalNode::Nic(InstanceId(a)),
                    LogicalNode::Nic(InstanceId(b)),
                    EdgeKind::Network,
                );
            }
        }
        LogicalTopology::new(nodes, edges)
    }
}

/// The probing detector.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::Cluster;
/// use adapcc_topo::detect::Detector;
///
/// let cluster = Cluster::homogeneous_a100(1);
/// let report = Detector::new(&cluster, 7).run();
/// // 4 GPUs in two switch groups of two.
/// assert_eq!(report.instances[0].switch_groups.len(), 2);
/// ```
#[derive(Debug)]
pub struct Detector<'c> {
    cluster: &'c Cluster,
    runner: ProbeRunner<'c>,
    telemetry: adapcc_telemetry::Telemetry,
}

impl<'c> Detector<'c> {
    /// A detector over the given cluster with seeded probe noise.
    pub fn new(cluster: &'c Cluster, seed: u64) -> Self {
        Detector {
            cluster,
            runner: ProbeRunner::new(cluster, seed),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
        }
    }

    /// Disables measurement noise (tests).
    pub fn without_noise(mut self) -> Self {
        self.runner = ProbeRunner::new(self.cluster, 0).with_noise(0.0);
        self
    }

    /// Attaches a telemetry sink: [`Detector::run`] emits a `detect`
    /// span covering the pass (local time zero = pass start) plus
    /// `topo.*` counters, and the probe layer counts its measurements.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.runner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Above this fleet size, detection probes one representative per
    /// distinct instance spec and replicates its findings across the
    /// identical servers. Every [`InstanceDetection`] field is a local
    /// GPU/socket index, so same-spec instances always detect the same
    /// shape — the replication is lossless, and it turns detection cost
    /// from O(instances) probe schedules into O(distinct specs). At or
    /// below the threshold every instance is probed individually
    /// (bit-identical to the historical behaviour).
    pub const DEDUP_THRESHOLD: usize = 16;

    /// Runs all probes and returns the report. Fleets larger than
    /// [`Detector::DEDUP_THRESHOLD`] probe one representative per
    /// distinct instance spec (see the constant's docs).
    pub fn run(&mut self) -> DetectionReport {
        let total = self.cluster.instance_count();
        let dedup = total > Self::DEDUP_THRESHOLD;
        let mut instances: Vec<InstanceDetection> = Vec::with_capacity(total);
        let mut slowest = SimDuration::ZERO;
        let mut reps: Vec<(adapcc_simnet::hardware::InstanceSpec, usize)> = Vec::new();
        let mut probed = 0usize;
        for i in 0..total {
            if dedup {
                let spec = *self.cluster.spec(InstanceId(i));
                if let Some(&(_, rep)) = reps.iter().find(|(s, _)| *s == spec) {
                    let det = instances[rep].clone();
                    instances.push(det);
                    continue;
                }
                reps.push((spec, i));
            }
            let (det, took) = self.detect_instance(InstanceId(i));
            slowest = slowest.max(took);
            probed += 1;
            instances.push(det);
        }
        self.telemetry
            .span("detect", "phase", 0.0, slowest.as_secs());
        self.telemetry
            .set_counter("topo.instances", self.cluster.instance_count() as f64);
        self.telemetry
            .set_counter("topo.gpus", self.cluster.gpu_count() as f64);
        self.telemetry
            .set_counter("topo.probed_instances", probed as f64);
        DetectionReport {
            instances,
            elapsed: slowest,
        }
    }

    fn detect_instance(&mut self, inst: InstanceId) -> (InstanceDetection, SimDuration) {
        let n = self.cluster.gpus_on(inst);
        let sockets = self.cluster.spec(inst).numa_nodes;
        let size = detector_probe_size();
        let mut elapsed = SimDuration::ZERO;

        // (1) NIC NUMA affinity: smallest loopback latency wins. A tiny
        // payload isolates the α term.
        let mut best = (0usize, f64::INFINITY);
        for s in 0..sockets {
            let t = self.runner.run_one(&ProbeSpec::new(
                self.cluster.host_to_nic_path(inst, s),
                ByteSize::from_kib(4),
            ));
            elapsed += numa_bind_overhead() + t;
            if t.as_secs() < best.1 {
                best = (s, t.as_secs());
            }
        }
        let nic_numa = best.0;

        // (2) Shared-switch inference. Baseline: each GPU's solo
        // host-copy; then each pair copies simultaneously.
        let mut solo = Vec::with_capacity(n);
        for g in 0..n {
            let rank = self.cluster.rank_of(inst, g);
            let t = self.runner.run_one(&ProbeSpec::new(
                self.cluster.gpu_to_host_path(rank, 0),
                size,
            ));
            elapsed += pair_probe_overhead() + t;
            solo.push(t.as_secs());
        }
        // Union-find over shared-switch relations.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        #[allow(clippy::needless_range_loop)] // pairs (a, b) index solo[]
        for a in 0..n {
            for b in (a + 1)..n {
                let ra = self.cluster.rank_of(inst, a);
                let rb = self.cluster.rank_of(inst, b);
                let both = self.runner.run_concurrent(&[
                    ProbeSpec::new(self.cluster.gpu_to_host_path(ra, 0), size),
                    ProbeSpec::new(self.cluster.gpu_to_host_path(rb, 0), size),
                ]);
                elapsed += pair_probe_overhead() + both[0].max(both[1]);
                let ratio = solo[a] / both[0].as_secs();
                if ratio < CONTENTION_RATIO {
                    let (x, y) = (find(&mut parent, a), find(&mut parent, b));
                    if x != y {
                        parent[x] = y;
                    }
                }
            }
        }
        let mut groups_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for g in 0..n {
            let root = find(&mut parent, g);
            groups_map.entry(root).or_default().push(g);
        }
        let switch_groups: Vec<Vec<usize>> = groups_map.into_values().collect();

        // (3) NIC PCIe locality: GPU copy concurrent with a host-NIC
        // loopback (send + receive halves); collapse implies the GPU
        // shares the NIC's switch.
        let mut nic_colocated_gpus = Vec::new();
        #[allow(clippy::needless_range_loop)] // g indexes solo[] alongside
        for g in 0..n {
            let rank = self.cluster.rank_of(inst, g);
            let res = self.runner.run_concurrent(&[
                ProbeSpec::new(self.cluster.gpu_to_host_path(rank, 0), size),
                ProbeSpec::new(self.cluster.host_to_nic_path(inst, nic_numa), size),
                ProbeSpec::new(self.cluster.nic_to_host_path(inst, nic_numa), size),
            ]);
            elapsed += pair_probe_overhead() + res[0];
            let ratio = solo[g] / res[0].as_secs();
            if ratio < CONTENTION_RATIO {
                nic_colocated_gpus.push(g);
            }
        }

        // (4) NVLink detection: peer-copy bandwidth far above PCIe.
        let mut nvlink_pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let ra = self.cluster.rank_of(inst, a);
                let rb = self.cluster.rank_of(inst, b);
                let t = self
                    .runner
                    .run_one(&ProbeSpec::new(self.cluster.intra_path(ra, rb), size));
                elapsed += peer_probe_overhead() + t;
                let gbs = size.as_f64() / t.as_secs() / 1e9;
                if gbs > NVLINK_THRESHOLD_GBS {
                    nvlink_pairs.push((a, b));
                }
            }
        }

        (
            InstanceDetection {
                nic_numa,
                switch_groups,
                nic_colocated_gpus,
                nvlink_pairs,
            },
            elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::ClusterBuilder;
    use adapcc_simnet::hardware::{InstanceSpec, NvlinkTopology};

    #[test]
    fn detects_switch_groups_on_a100() {
        let c = Cluster::homogeneous_a100(1);
        let report = Detector::new(&c, 3).run();
        let det = &report.instances[0];
        assert_eq!(det.switch_groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn detects_nic_affinity_and_locality() {
        let c = Cluster::homogeneous_a100(1);
        let report = Detector::new(&c, 3).run();
        let det = &report.instances[0];
        assert_eq!(det.nic_numa, 0);
        // The NIC hangs off switch 0, shared with GPUs 0 and 1.
        assert_eq!(det.nic_colocated_gpus, vec![0, 1]);
    }

    #[test]
    fn detects_full_mesh_nvlink() {
        let c = Cluster::homogeneous_a100(1);
        let report = Detector::new(&c, 3).run();
        let det = &report.instances[0];
        assert_eq!(det.nvlink_pairs.len(), 6);
    }

    #[test]
    fn detects_fragmented_nvlink_pairs() {
        let mut b = ClusterBuilder::new();
        b.add_instance(InstanceSpec::a100_server().with_nvlink(NvlinkTopology::Pairs));
        let c = b.build();
        let report = Detector::new(&c, 3).run();
        let det = &report.instances[0];
        assert_eq!(det.nvlink_pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn detection_matches_ground_truth_across_noise_seeds() {
        let c = Cluster::paper_testbed();
        for seed in [1, 2, 3] {
            let report = Detector::new(&c, seed).run();
            for (i, det) in report.instances.iter().enumerate() {
                let inst = InstanceId(i);
                for group in &det.switch_groups {
                    let switches: std::collections::HashSet<usize> = group
                        .iter()
                        .map(|&g| c.gpu_switch_index(c.rank_of(inst, g)))
                        .collect();
                    assert_eq!(switches.len(), 1, "group crosses switches");
                }
                assert_eq!(det.nic_numa, c.nic_numa_index(inst));
            }
        }
    }

    #[test]
    fn elapsed_is_scale_independent() {
        let small = Detector::new(&Cluster::homogeneous_a100(1), 1).run();
        let big = Detector::new(&Cluster::homogeneous_a100(4), 1).run();
        // Instances probe concurrently: elapsed grows with per-instance
        // work, not with instance count (paper: ~1.2 s constant).
        let ratio = big.elapsed.as_secs() / small.elapsed.as_secs();
        assert!(
            ratio < 1.2,
            "elapsed should not scale with instances: {ratio}"
        );
        assert!(small.elapsed.as_secs() > 0.8 && small.elapsed.as_secs() < 2.0);
    }

    #[test]
    fn large_fleet_detection_dedupes_by_spec() {
        let c = Cluster::homogeneous_a100(32);
        let report = Detector::new(&c, 5).run();
        assert_eq!(report.instances.len(), 32);
        // One representative probed; every identical server carries the
        // same findings, which still match ground truth.
        for det in &report.instances {
            assert_eq!(det, &report.instances[0]);
        }
        assert_eq!(
            report.instances[0].switch_groups,
            vec![vec![0, 1], vec![2, 3]]
        );
        assert_eq!(report.instances[0].nvlink_pairs.len(), 6);
        // Detection stays ~constant-time at fleet scale.
        let small = Detector::new(&Cluster::homogeneous_a100(1), 5).run();
        assert!(report.elapsed.as_secs() / small.elapsed.as_secs() < 1.2);
    }

    #[test]
    fn logical_topology_shape() {
        let c = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        // 8 GPUs + 2 NICs.
        assert_eq!(topo.nodes().len(), 10);
        // Per instance: 6 GPU pairs * 2 + 4 host links * 2 = 20; plus
        // 1 NIC pair * 2 = 2. Total 42.
        assert_eq!(topo.edge_count(), 42);
        assert_eq!(topo.edges_of_kind(EdgeKind::Network).len(), 2);
    }
}
