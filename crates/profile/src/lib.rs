//! # adapcc-profile
//!
//! The AdapCC link profiler (paper Sec. IV-B): measures α–β costs for
//! every NVLink and NIC-to-NIC connection of the detected logical
//! topology, on the fly, using the paper's interference-free
//! multi-round schedule. Results feed the strategy synthesizer and the
//! re-synthesis trigger.
//!
//! # Example
//!
//! ```
//! use adapcc_simnet::cluster::Cluster;
//! use adapcc_topo::detect::Detector;
//! use adapcc_profile::profiler::Profiler;
//!
//! let cluster = Cluster::paper_testbed();
//! let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
//! let report = Profiler::new(&cluster, &topo, 1).run();
//! assert_eq!(report.rounds, cluster.instance_count() - 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alphabeta;
pub mod profiler;

pub use alphabeta::AlphaBeta;
pub use profiler::{LinkProfile, ProfileConfig, ProfileReport, Profiler};
