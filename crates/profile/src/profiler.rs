//! The on-the-fly link profiler (paper Sec. IV-B).
//!
//! Given the detected [`LogicalTopology`], the profiler measures an
//! [`AlphaBeta`] cost for every NVLink / PCIe-peer edge and every
//! NIC-to-NIC network connection:
//!
//! * **Intra-instance**: between each GPU pair, a payload `s` is sent
//!   `n` times back-to-back (cost `n(α + βs)`), then once as a grouped
//!   `n·s` payload (cost `α + βns`); repeating for several `(n, s)`
//!   points and least-squares fitting recovers `α` and `β`.
//! * **Inter-instance**: with `N` instances, `N−1` rounds run, each
//!   ending with a barrier; in round `i`, instance `n` probes instance
//!   `(n+i) mod N`. The round structure guarantees at most one probe
//!   flow in any ingress or egress port at a time, so measurements are
//!   interference-free and maximally parallel.
//!
//! Host links (GPU↔NIC) are deliberately *not* profiled — their data
//! movement overlaps with network transfers — and carry an empirical
//! PCIe cost instead, exactly as the paper does.
//!
//! Training is blocked while profiling runs; [`ProfileReport::elapsed`]
//! is the cost charged to the training timeline.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use adapcc_simnet::cluster::{Cluster, InstanceId, LinkId};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::probe::{ProbeRunner, ProbeSpec};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::{Bandwidth, ByteSize};
use adapcc_topo::logical::{EdgeId, EdgeKind, LogicalNode, LogicalTopology};

use crate::alphabeta::AlphaBeta;

/// Measured α–β costs for the logical edges.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkProfile {
    costs: HashMap<usize, AlphaBeta>,
    /// Aggregate ingress capacity per NIC from the fan-in probe phase
    /// (bytes/sec, keyed by instance id). Pairwise probes are capped by
    /// the slower peer, so only a concurrent fan-in exposes a fat NIC's
    /// true sink capacity.
    ingress: HashMap<usize, f64>,
}

impl LinkProfile {
    /// An empty profile.
    pub fn new() -> Self {
        LinkProfile::default()
    }

    /// Records the cost of an edge.
    pub fn insert(&mut self, edge: EdgeId, cost: AlphaBeta) {
        self.costs.insert(edge.0, cost);
    }

    /// The cost of an edge, if profiled.
    pub fn get(&self, edge: EdgeId) -> Option<AlphaBeta> {
        self.costs.get(&edge.0).copied()
    }

    /// Records a NIC's measured aggregate ingress capacity.
    pub fn set_nic_ingress(&mut self, inst: InstanceId, bw: Bandwidth) {
        self.ingress.insert(inst.0, bw.as_bytes_per_sec());
    }

    /// A NIC's measured aggregate ingress capacity, if the fan-in
    /// phase ran.
    pub fn nic_ingress(&self, inst: InstanceId) -> Option<Bandwidth> {
        self.ingress
            .get(&inst.0)
            .map(|b| Bandwidth::from_bytes_per_sec(*b))
    }

    /// Number of profiled edges.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True if nothing has been profiled.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Largest relative bandwidth change versus an older profile, over
    /// edges present in both (the synthesizer re-runs only when this
    /// exceeds its threshold).
    pub fn max_bandwidth_delta(&self, older: &LinkProfile) -> f64 {
        let mut worst: f64 = 0.0;
        for (edge, cost) in &self.costs {
            if let Some(old) = older.costs.get(edge) {
                worst = worst.max(cost.bandwidth_delta(old));
            }
        }
        worst
    }
}

/// Profiling payload schedule: the `(repetitions, payload)` points
/// measured per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// `(n, s)` points for the repeated-send measurements.
    pub points: Vec<(usize, ByteSize)>,
    /// Per-round barrier/synchronization overhead.
    pub barrier_overhead: SimDuration,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            points: vec![
                (4, ByteSize::from_kib(512)),
                (4, ByteSize::from_mib(4)),
                (2, ByteSize::from_mib(16)),
            ],
            barrier_overhead: SimDuration::from_millis(2.0),
        }
    }
}

/// Result of one profiling pass.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Fitted costs per logical edge.
    pub links: LinkProfile,
    /// Wall-clock cost of the pass (training is blocked this long),
    /// including timeout cost of any lost-and-retried probes.
    pub elapsed: SimDuration,
    /// Number of inter-instance rounds executed: `N − 1` for the full
    /// schedule, or the distinct pair-class count in sampled mode (see
    /// [`Profiler::SAMPLE_THRESHOLD`]).
    pub rounds: usize,
    /// Probes lost in flight and retried during the pass.
    pub probe_retries: u64,
}

/// The profiler.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::Cluster;
/// use adapcc_topo::detect::Detector;
/// use adapcc_profile::profiler::Profiler;
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
/// let report = Profiler::new(&cluster, &topo, 1).run();
/// assert_eq!(report.rounds, 1);
/// assert!(!report.links.is_empty());
/// ```
#[derive(Debug)]
pub struct Profiler<'c, 't> {
    cluster: &'c Cluster,
    topo: &'t LogicalTopology,
    runner: ProbeRunner<'c>,
    config: ProfileConfig,
    telemetry: adapcc_telemetry::Telemetry,
}

impl<'c, 't> Profiler<'c, 't> {
    /// A profiler with the default measurement schedule.
    pub fn new(cluster: &'c Cluster, topo: &'t LogicalTopology, seed: u64) -> Self {
        Profiler {
            cluster,
            topo,
            runner: ProbeRunner::new(cluster, seed),
            config: ProfileConfig::default(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: [`Profiler::run`] emits
    /// `profile.intra` / `profile.inter` / `profile.fanin` spans
    /// (local time zero = pass start) plus per-NIC aggregate-ingress
    /// counters, and the probe layer counts its measurements.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.runner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Overrides the measurement schedule.
    pub fn with_config(mut self, config: ProfileConfig) -> Self {
        self.config = config;
        self
    }

    /// Disables measurement noise (tests).
    pub fn without_noise(mut self) -> Self {
        self.runner = ProbeRunner::new(self.cluster, 0).with_noise(0.0);
        self
    }

    /// Mirrors a live capacity factor (trace modulation) into the
    /// measurements, so re-profiling observes current conditions.
    pub fn set_capacity_factor(&mut self, link: LinkId, factor: f64) {
        self.runner.set_capacity_factor(link, factor);
    }

    /// Injects transient probe loss on a link: affected measurements
    /// time out and retry, and the timeout cost is charged to the
    /// pass's elapsed time.
    pub fn inject_probe_loss(&mut self, link: LinkId, count: u32) {
        self.runner.inject_probe_loss(link, count);
    }

    /// Above this fleet size, [`Profiler::run`] switches to sampled
    /// profiling: one representative instance per distinct spec is
    /// measured intra-instance, one representative pair per
    /// (spec-class, spec-class, same-pod) triple is measured across the
    /// network, and one fan-in batch runs per target spec class — the
    /// fits replicate to every identical edge. The full `N − 1` round
    /// schedule is quadratic in fleet size and would block training for
    /// minutes at 512 instances; sampling keeps the pass near-constant
    /// while still measuring every distinct link population.
    pub const SAMPLE_THRESHOLD: usize = 16;

    /// Runs the full pass: concurrent per-instance intra profiling,
    /// then `N − 1` interference-free inter-instance rounds. Fleets
    /// larger than [`Profiler::SAMPLE_THRESHOLD`] run the sampled
    /// schedule instead (see the constant's docs).
    pub fn run(&mut self) -> ProfileReport {
        if self.cluster.instance_count() > Self::SAMPLE_THRESHOLD {
            return self.run_sampled();
        }
        let retries_before = self.runner.probe_retries();
        let mut links = LinkProfile::new();
        // Intra phase: instances profile concurrently; the phase costs
        // as much as the slowest instance.
        let mut intra_slowest = SimDuration::ZERO;
        for i in 0..self.cluster.instance_count() {
            let took = self.profile_instance(InstanceId(i), &mut links);
            intra_slowest = intra_slowest.max(took);
        }
        // Host links carry the empirical PCIe cost.
        for e in self.topo.edges_of_kind(EdgeKind::HostLink) {
            links.insert(e, AlphaBeta::empirical_pcie());
        }
        // Inter phase.
        let n = self.cluster.instance_count();
        let mut inter_elapsed = SimDuration::ZERO;
        let rounds = n.saturating_sub(1);
        for round in 1..=rounds {
            inter_elapsed += self.profile_round(round, &mut links);
            inter_elapsed += self.config.barrier_overhead;
        }
        // Fan-in phase: one batch per NIC measures its aggregate
        // ingress capacity.
        let fanin_elapsed = self.profile_fanin(&mut links);
        let (t_intra, t_inter) = (intra_slowest.as_secs(), inter_elapsed.as_secs());
        self.telemetry.span("profile.intra", "phase", 0.0, t_intra);
        self.telemetry
            .span("profile.inter", "phase", t_intra, t_intra + t_inter);
        self.telemetry.span(
            "profile.fanin",
            "phase",
            t_intra + t_inter,
            t_intra + t_inter + fanin_elapsed.as_secs(),
        );
        self.telemetry
            .set_counter("profile.edges", links.len() as f64);
        ProfileReport {
            links,
            elapsed: intra_slowest + inter_elapsed + fanin_elapsed + self.runner.take_lost_time(),
            rounds,
            probe_retries: self.runner.probe_retries() - retries_before,
        }
    }

    /// The sampled pass for large fleets: representatives per spec
    /// class / pair class are measured; fits replicate to every edge of
    /// the same population. `elapsed` is the cost of the reduced
    /// schedule actually executed — that reduction is the point.
    fn run_sampled(&mut self) -> ProfileReport {
        let retries_before = self.runner.probe_retries();
        let mut links = LinkProfile::new();
        let n = self.cluster.instance_count();
        // Spec classes in first-seen instance order.
        let mut classes: Vec<InstanceSpec> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(n);
        let mut rep_of: Vec<usize> = Vec::new();
        for i in 0..n {
            let spec = *self.cluster.spec(InstanceId(i));
            match classes.iter().position(|s| *s == spec) {
                Some(c) => class_of.push(c),
                None => {
                    class_of.push(classes.len());
                    rep_of.push(i);
                    classes.push(spec);
                }
            }
        }
        // Intra phase: representatives probe concurrently; identical
        // servers inherit their class representative's fits (all
        // endpoints are local GPU indices, so the mapping is exact).
        let mut intra_slowest = SimDuration::ZERO;
        for &rep in &rep_of {
            let took = self.profile_instance(InstanceId(rep), &mut links);
            intra_slowest = intra_slowest.max(took);
        }
        for kind in [EdgeKind::NvLink, EdgeKind::PciePeer] {
            for eid in self.topo.edges_of_kind(kind) {
                let edge = self.topo.edge(eid);
                let (LogicalNode::Gpu(ra), LogicalNode::Gpu(rb)) = (edge.from, edge.to) else {
                    continue;
                };
                let (ia, la) = self.cluster.locate(ra);
                let (ib, lb) = self.cluster.locate(rb);
                if ia != ib {
                    continue;
                }
                let rep = InstanceId(rep_of[class_of[ia.0]]);
                if rep == ia {
                    continue;
                }
                let rep_edge = self.topo.edge_between(
                    LogicalNode::Gpu(self.cluster.rank_of(rep, la)),
                    LogicalNode::Gpu(self.cluster.rank_of(rep, lb)),
                );
                if let Some(fit) = rep_edge.and_then(|re| links.get(re)) {
                    links.insert(eid, fit);
                }
            }
        }
        for e in self.topo.edges_of_kind(EdgeKind::HostLink) {
            links.insert(e, AlphaBeta::empirical_pcie());
        }
        // Inter phase: one representative ordered pair per
        // (sender class, receiver class, same-pod) population. Pod
        // membership is part of the key because cross-pod paths ride
        // the oversubscribed spine and profile differently.
        let mut pair_keys: Vec<(usize, usize, bool)> = Vec::new();
        let mut pair_reps: Vec<(InstanceId, InstanceId)> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let same_pod =
                    self.cluster.pod_of(InstanceId(a)) == self.cluster.pod_of(InstanceId(b));
                let key = (class_of[a], class_of[b], same_pod);
                if !pair_keys.contains(&key) {
                    pair_keys.push(key);
                    pair_reps.push((InstanceId(a), InstanceId(b)));
                }
            }
        }
        let mut inter_elapsed = SimDuration::ZERO;
        let mut pair_fits: Vec<Option<AlphaBeta>> = Vec::with_capacity(pair_reps.len());
        for &(a, b) in &pair_reps {
            let (fit, took) = self.profile_one_pair(a, b);
            inter_elapsed += took + self.config.barrier_overhead;
            pair_fits.push(fit);
        }
        for eid in self.topo.edges_of_kind(EdgeKind::Network) {
            let edge = self.topo.edge(eid);
            let (LogicalNode::Nic(a), LogicalNode::Nic(b)) = (edge.from, edge.to) else {
                continue;
            };
            let same_pod = self.cluster.pod_of(a) == self.cluster.pod_of(b);
            let key = (class_of[a.0], class_of[b.0], same_pod);
            if let Some(k) = pair_keys.iter().position(|x| *x == key) {
                if let Some(fit) = pair_fits[k] {
                    links.insert(eid, fit);
                }
            }
        }
        // Fan-in phase: one batch per target spec class, capped sender
        // count; the measured aggregate ingress replicates class-wide.
        let fanin_elapsed = self.profile_fanin_sampled(&class_of, &rep_of, &mut links);
        let (t_intra, t_inter) = (intra_slowest.as_secs(), inter_elapsed.as_secs());
        self.telemetry.span("profile.intra", "phase", 0.0, t_intra);
        self.telemetry
            .span("profile.inter", "phase", t_intra, t_intra + t_inter);
        self.telemetry.span(
            "profile.fanin",
            "phase",
            t_intra + t_inter,
            t_intra + t_inter + fanin_elapsed.as_secs(),
        );
        self.telemetry
            .set_counter("profile.edges", links.len() as f64);
        self.telemetry
            .set_counter("profile.sampled_pairs", pair_reps.len() as f64);
        ProfileReport {
            links,
            elapsed: intra_slowest + inter_elapsed + fanin_elapsed + self.runner.take_lost_time(),
            rounds: pair_reps.len(),
            probe_retries: self.runner.probe_retries() - retries_before,
        }
    }

    /// Probes one NIC pair with the standard three payloads plus the
    /// four-stream aggregate probe, returning the fitted cost.
    fn profile_one_pair(
        &mut self,
        a: InstanceId,
        b: InstanceId,
    ) -> (Option<AlphaBeta>, SimDuration) {
        let sizes = [
            ByteSize::from_kib(256),
            ByteSize::from_mib(4),
            ByteSize::from_mib(16),
        ];
        let mut meas = Vec::new();
        let mut elapsed = SimDuration::ZERO;
        for s in sizes {
            let d = self
                .runner
                .run_one(&ProbeSpec::new(self.cluster.net_path(a, b), s));
            elapsed += d;
            meas.push((s, d));
        }
        const STREAMS: usize = 4;
        let probe = ByteSize::from_mib(8);
        let specs: Vec<ProbeSpec> = (0..STREAMS)
            .map(|_| ProbeSpec::new(self.cluster.net_path(a, b), probe))
            .collect();
        let durs = self.runner.run_concurrent(&specs);
        let slowest = durs
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        elapsed += slowest;
        let aggregate = probe.as_f64() * STREAMS as f64 / slowest.as_secs();
        let fit = AlphaBeta::fit(&meas)
            .map(|f| f.with_port_bandwidth(Bandwidth::from_bytes_per_sec(aggregate)));
        (fit, elapsed)
    }

    /// Sampled fan-in: one batch per target spec class with at most
    /// eight senders; the measured ingress replicates to every instance
    /// of the class.
    fn profile_fanin_sampled(
        &mut self,
        class_of: &[usize],
        rep_of: &[usize],
        links: &mut LinkProfile,
    ) -> SimDuration {
        let n = self.cluster.instance_count();
        if n < 2 {
            return SimDuration::ZERO;
        }
        const MAX_SENDERS: usize = 8;
        let probe = ByteSize::from_mib(8);
        let mut elapsed = SimDuration::ZERO;
        for (c, &rep) in rep_of.iter().enumerate() {
            let target = InstanceId(rep);
            let specs: Vec<ProbeSpec> = (0..n)
                .filter(|k| *k != rep)
                .take(MAX_SENDERS)
                .map(|k| ProbeSpec::new(self.cluster.net_path(InstanceId(k), target), probe))
                .collect();
            let durs = self.runner.run_concurrent(&specs);
            let batch_max = durs
                .iter()
                .copied()
                .fold(SimDuration::ZERO, SimDuration::max);
            elapsed += batch_max + self.config.barrier_overhead;
            let aggregate: f64 = durs
                .iter()
                .filter(|d| d.as_secs() > 0.0)
                .map(|d| probe.as_f64() / d.as_secs())
                .sum();
            self.telemetry.set_counter(
                &format!("profile.nic_ingress_gbps.inst{rep}"),
                aggregate / 1e9,
            );
            for (i, &ci) in class_of.iter().enumerate() {
                if ci == c {
                    links.set_nic_ingress(InstanceId(i), Bandwidth::from_bytes_per_sec(aggregate));
                }
            }
        }
        elapsed
    }

    /// Fan-in rounds: for each target instance, every other instance
    /// sends a probe to it concurrently. The flows share only the
    /// target's ingress port (each sender's egress carries one flow),
    /// so the sum of per-flow rates is the port's achievable aggregate
    /// ingress — the quantity pairwise probes undersell, because a
    /// pairwise measurement is capped by min(sender, receiver).
    fn profile_fanin(&mut self, links: &mut LinkProfile) -> SimDuration {
        let n = self.cluster.instance_count();
        if n < 2 {
            return SimDuration::ZERO;
        }
        let probe = ByteSize::from_mib(8);
        let mut elapsed = SimDuration::ZERO;
        for t in 0..n {
            let target = InstanceId(t);
            let specs: Vec<ProbeSpec> = (0..n)
                .filter(|k| *k != t)
                .map(|k| ProbeSpec::new(self.cluster.net_path(InstanceId(k), target), probe))
                .collect();
            let durs = self.runner.run_concurrent(&specs);
            let batch_max = durs
                .iter()
                .copied()
                .fold(SimDuration::ZERO, SimDuration::max);
            elapsed += batch_max + self.config.barrier_overhead;
            let aggregate: f64 = durs
                .iter()
                .filter(|d| d.as_secs() > 0.0)
                .map(|d| probe.as_f64() / d.as_secs())
                .sum();
            self.telemetry.set_counter(
                &format!("profile.nic_ingress_gbps.inst{t}"),
                aggregate / 1e9,
            );
            links.set_nic_ingress(target, Bandwidth::from_bytes_per_sec(aggregate));
        }
        elapsed
    }

    /// Profiles every NVLink / PCIe-peer edge of one instance; returns
    /// the instance's sequential probe time.
    fn profile_instance(&mut self, inst: InstanceId, links: &mut LinkProfile) -> SimDuration {
        let mut elapsed = SimDuration::ZERO;
        for kind in [EdgeKind::NvLink, EdgeKind::PciePeer] {
            for eid in self.topo.edges_of_kind(kind) {
                let edge = self.topo.edge(eid);
                let (from_inst, _) = match edge.from {
                    LogicalNode::Gpu(r) => self.cluster.locate(r),
                    LogicalNode::Nic(_) => continue,
                };
                if from_inst != inst {
                    continue;
                }
                let path = self.topo.edge_path(self.cluster, eid);
                let mut meas = Vec::new();
                for &(n, s) in &self.config.points {
                    // n sends of s: total = n(α + βs)  →  per-send point (s, t/n).
                    let t = self.runner.run_repeated(&path, s, n);
                    elapsed += t;
                    meas.push((s, t.scale(1.0 / n as f64)));
                    // One grouped send of n·s: t = α + β·ns.
                    let grouped = ByteSize::from_bytes(s.as_u64() * n as u64);
                    let tg = self.runner.run_repeated(&path, grouped, 1);
                    elapsed += tg;
                    meas.push((grouped, tg));
                }
                if let Some(fit) = AlphaBeta::fit(&meas) {
                    links.insert(eid, fit);
                }
            }
        }
        elapsed
    }

    /// One inter-instance round: instance `k` probes `(k + round) % N`,
    /// all pairs concurrently; by construction each egress and ingress
    /// port carries exactly one probe flow.
    fn profile_round(&mut self, round: usize, links: &mut LinkProfile) -> SimDuration {
        let n = self.cluster.instance_count();
        let pairs: Vec<(InstanceId, InstanceId)> = (0..n)
            .map(|k| (InstanceId(k), InstanceId((k + round) % n)))
            .collect();
        // Two concurrent batches at different payloads give each pair a
        // two-point fit; two extra points improve conditioning.
        let sizes = [
            ByteSize::from_kib(256),
            ByteSize::from_mib(4),
            ByteSize::from_mib(16),
        ];
        let mut per_pair: Vec<Vec<(ByteSize, SimDuration)>> = vec![Vec::new(); pairs.len()];
        let mut elapsed = SimDuration::ZERO;
        for s in sizes {
            let specs: Vec<ProbeSpec> = pairs
                .iter()
                .map(|(a, b)| ProbeSpec::new(self.cluster.net_path(*a, *b), s))
                .collect();
            let durs = self.runner.run_concurrent(&specs);
            let batch_max = durs
                .iter()
                .copied()
                .fold(SimDuration::ZERO, SimDuration::max);
            elapsed += batch_max;
            for (i, d) in durs.into_iter().enumerate() {
                per_pair[i].push((s, d));
            }
        }
        // Multi-stream probe: 4 concurrent streams per pair expose the
        // port's aggregate capacity, which exceeds a single stream on
        // kernel-TCP links (paper Sec. VI-D observes ~20 Gbps/stream on
        // a 100 Gbps NIC). Still interference-free: each port carries
        // only its own pair's streams.
        const STREAMS: usize = 4;
        let probe = ByteSize::from_mib(8);
        let specs: Vec<ProbeSpec> = pairs
            .iter()
            .flat_map(|(a, b)| {
                (0..STREAMS).map(|_| ProbeSpec::new(self.cluster.net_path(*a, *b), probe))
            })
            .collect();
        let durs = self.runner.run_concurrent(&specs);
        elapsed += durs
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let mut port_bw = Vec::with_capacity(pairs.len());
        for (i, _) in pairs.iter().enumerate() {
            let batch = &durs[i * STREAMS..(i + 1) * STREAMS];
            let slowest = batch
                .iter()
                .copied()
                .fold(SimDuration::ZERO, SimDuration::max);
            let aggregate = probe.as_f64() * STREAMS as f64 / slowest.as_secs();
            port_bw.push(adapcc_simnet::units::Bandwidth::from_bytes_per_sec(
                aggregate,
            ));
        }
        for (i, meas) in per_pair.iter().enumerate() {
            let (a, b) = pairs[i];
            if let Some(eid) = self
                .topo
                .edge_between(LogicalNode::Nic(a), LogicalNode::Nic(b))
            {
                if let Some(fit) = AlphaBeta::fit(meas) {
                    links.insert(eid, fit.with_port_bandwidth(port_bw[i]));
                }
            }
        }
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_simnet::units::Bandwidth;
    use adapcc_topo::detect::Detector;

    fn profiled(cluster: &Cluster) -> (LogicalTopology, ProfileReport) {
        let topo = Detector::new(cluster, 1).run().logical_topology(cluster);
        let report = Profiler::new(cluster, &topo, 1).without_noise().run();
        (topo, report)
    }

    #[test]
    fn recovers_nvlink_bandwidth() {
        let c = Cluster::homogeneous_a100(1);
        let (topo, report) = profiled(&c);
        for e in topo.edges_of_kind(EdgeKind::NvLink) {
            let fit = report.links.get(e).expect("profiled");
            let gbs = fit.bandwidth().as_gbytes_per_sec();
            assert!((gbs - 100.0).abs() < 3.0, "nvlink fit {gbs}");
        }
    }

    #[test]
    fn recovers_heterogeneous_nic_bandwidths() {
        let c = Cluster::paper_testbed();
        let (topo, report) = profiled(&c);
        // A100 (0..4) pairs see 12.5 GB/s; any edge touching a V100
        // instance (4, 5) is limited by the 50 Gbps NIC (6.25 GB/s).
        let a_edge = topo
            .edge_between(
                LogicalNode::Nic(InstanceId(0)),
                LogicalNode::Nic(InstanceId(1)),
            )
            .unwrap();
        let v_edge = topo
            .edge_between(
                LogicalNode::Nic(InstanceId(0)),
                LogicalNode::Nic(InstanceId(5)),
            )
            .unwrap();
        let a = report
            .links
            .get(a_edge)
            .unwrap()
            .bandwidth()
            .as_gbytes_per_sec();
        let v = report
            .links
            .get(v_edge)
            .unwrap()
            .bandwidth()
            .as_gbytes_per_sec();
        assert!((a - 12.5).abs() < 0.5, "a100-a100 {a}");
        assert!((v - 6.25).abs() < 0.3, "a100-v100 {v}");
    }

    #[test]
    fn round_count_is_n_minus_one() {
        let c = Cluster::paper_testbed();
        let (_, report) = profiled(&c);
        assert_eq!(report.rounds, 5);
    }

    #[test]
    fn all_network_edges_profiled() {
        let c = Cluster::paper_testbed();
        let (topo, report) = profiled(&c);
        for e in topo.edges_of_kind(EdgeKind::Network) {
            assert!(report.links.get(e).is_some(), "edge {e:?} missing");
        }
    }

    #[test]
    fn profiling_observes_trace_modulation() {
        let c = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let mut p = Profiler::new(&c, &topo, 1).without_noise();
        p.set_capacity_factor(c.nic_egress_link(InstanceId(0)), 0.5);
        let report = p.run();
        let eid = topo
            .edge_between(
                LogicalNode::Nic(InstanceId(0)),
                LogicalNode::Nic(InstanceId(1)),
            )
            .unwrap();
        let bw = report
            .links
            .get(eid)
            .unwrap()
            .bandwidth()
            .as_gbytes_per_sec();
        assert!((bw - 6.25).abs() < 0.3, "modulated fit {bw}");
        // Reverse direction unaffected.
        let rev = topo
            .edge_between(
                LogicalNode::Nic(InstanceId(1)),
                LogicalNode::Nic(InstanceId(0)),
            )
            .unwrap();
        let bw_rev = report
            .links
            .get(rev)
            .unwrap()
            .bandwidth()
            .as_gbytes_per_sec();
        assert!((bw_rev - 12.5).abs() < 0.5, "reverse fit {bw_rev}");
    }

    #[test]
    fn elapsed_blocks_training_briefly() {
        let c = Cluster::paper_testbed();
        let (_, report) = profiled(&c);
        // The pass should cost well under a second of training time.
        assert!(report.elapsed.as_secs() < 1.0, "elapsed {}", report.elapsed);
        assert!(report.elapsed.as_secs() > 0.001);
    }

    #[test]
    fn delta_detection_between_profiles() {
        let c = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let base = Profiler::new(&c, &topo, 1).without_noise().run();
        let mut slow = Profiler::new(&c, &topo, 1).without_noise();
        slow.set_capacity_factor(c.nic_egress_link(InstanceId(0)), 0.6);
        let after = slow.run();
        let delta = after.links.max_bandwidth_delta(&base.links);
        assert!(delta > 0.3, "delta {delta}");
        let none = base.links.max_bandwidth_delta(&base.links);
        assert!(none < 1e-9);
    }

    #[test]
    fn lost_probes_retry_without_poisoning_the_fit() {
        let c = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let clean = Profiler::new(&c, &topo, 1).without_noise().run();
        let mut lossy = Profiler::new(&c, &topo, 1).without_noise();
        lossy.inject_probe_loss(c.nic_egress_link(InstanceId(0)), 3);
        let report = lossy.run();
        assert_eq!(report.probe_retries, 3);
        // Retried measurements produce the same fits as a clean pass...
        let eid = topo
            .edge_between(
                LogicalNode::Nic(InstanceId(0)),
                LogicalNode::Nic(InstanceId(1)),
            )
            .unwrap();
        assert_eq!(report.links.get(eid), clean.links.get(eid));
        // ...but the pass is charged the timeout wall-clock.
        assert!(report.elapsed > clean.elapsed);
        assert_eq!(clean.probe_retries, 0);
    }

    #[test]
    fn sampled_profiling_covers_large_fleets() {
        // 24 instances (> SAMPLE_THRESHOLD) with two pods: one spec
        // class, so two pair classes (same-pod, cross-pod).
        let c = Cluster::homogeneous_a100(24);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let report = Profiler::new(&c, &topo, 1).without_noise().run();
        for kind in [
            EdgeKind::NvLink,
            EdgeKind::PciePeer,
            EdgeKind::HostLink,
            EdgeKind::Network,
        ] {
            for e in topo.edges_of_kind(kind) {
                assert!(report.links.get(e).is_some(), "{kind:?} edge unprofiled");
            }
        }
        assert_eq!(report.rounds, 2, "one spec class x same/cross pod");
        // Every instance carries a fan-in ingress measurement.
        for i in 0..24 {
            assert!(report.links.nic_ingress(InstanceId(i)).is_some());
        }
        // Replicated intra fits match the representative's measurement.
        let rep = topo
            .edge_between(
                LogicalNode::Gpu(c.rank_of(InstanceId(0), 0)),
                LogicalNode::Gpu(c.rank_of(InstanceId(0), 1)),
            )
            .unwrap();
        let far = topo
            .edge_between(
                LogicalNode::Gpu(c.rank_of(InstanceId(23), 0)),
                LogicalNode::Gpu(c.rank_of(InstanceId(23), 1)),
            )
            .unwrap();
        assert_eq!(report.links.get(rep), report.links.get(far));
        // The pass stays near-constant instead of scaling with N^2.
        assert!(
            report.elapsed.as_secs() < 2.0,
            "sampled elapsed {}",
            report.elapsed
        );
    }

    #[test]
    fn host_links_carry_empirical_cost() {
        let c = Cluster::homogeneous_a100(1);
        let (topo, report) = profiled(&c);
        for e in topo.edges_of_kind(EdgeKind::HostLink) {
            let fit = report.links.get(e).expect("empirical");
            assert_eq!(fit, AlphaBeta::empirical_pcie());
        }
        let _ = Bandwidth::from_gbps(1.0);
    }
}
