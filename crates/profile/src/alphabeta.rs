//! The α–β link cost model (paper Sec. IV-B, borrowed from TACCL).
//!
//! A transfer of `s` bytes over a link costs `α + β·s`: `α` is the
//! latency (seconds) and `β` the inverse bandwidth (seconds per byte).
//! [`AlphaBeta::fit`] recovers both from timed measurements by ordinary
//! least squares, which is exactly what the paper's profiler does with
//! its repeated-send / grouped-send scheme.

use serde::{Deserialize, Serialize};

use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::{Bandwidth, ByteSize};

/// An α–β cost for one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBeta {
    /// Link latency in seconds.
    pub alpha_secs: f64,
    /// Inverse *single-stream* bandwidth in seconds per byte.
    pub beta_secs_per_byte: f64,
    /// Inverse *port* (multi-stream aggregate) bandwidth in seconds per
    /// byte; equals `beta_secs_per_byte` on media where one stream
    /// saturates the link (NVLink, RDMA) and is smaller on media with a
    /// per-stream ceiling (kernel TCP) — the property AdapCC's parallel
    /// sub-collectives exploit (paper Sec. VI-D).
    pub port_beta_secs_per_byte: f64,
}

impl AlphaBeta {
    /// A cost from explicit latency and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn new(alpha: SimDuration, bandwidth: Bandwidth) -> Self {
        let beta = bandwidth.inverse();
        AlphaBeta {
            alpha_secs: alpha.as_secs(),
            beta_secs_per_byte: beta,
            port_beta_secs_per_byte: beta,
        }
    }

    /// Records a measured multi-stream (port) bandwidth, clamped so the
    /// port is never slower than a single stream.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn with_port_bandwidth(mut self, port: Bandwidth) -> Self {
        self.port_beta_secs_per_byte = port.inverse().min(self.beta_secs_per_byte);
        self
    }

    /// The aggregate (multi-stream) port bandwidth.
    pub fn port_bandwidth(&self) -> Bandwidth {
        assert!(self.port_beta_secs_per_byte > 0.0, "degenerate port beta");
        Bandwidth::from_bytes_per_sec(1.0 / self.port_beta_secs_per_byte)
    }

    /// Empirical PCIe host-link cost, used for the GPU↔NIC staging
    /// links the paper deliberately does not profile (their movement
    /// overlaps with network transfers).
    pub fn empirical_pcie() -> Self {
        AlphaBeta {
            alpha_secs: 2e-6,
            beta_secs_per_byte: 1.0 / 16e9,
            port_beta_secs_per_byte: 1.0 / 16e9,
        }
    }

    /// Least-squares fit of `t = α + β·s` over `(payload, duration)`
    /// measurements.
    ///
    /// Returns `None` when the system is degenerate (fewer than two
    /// distinct payload sizes) or produces a non-physical fit (negative
    /// β). A slightly negative fitted α (measurement noise around a
    /// near-zero latency) is clamped to zero.
    pub fn fit(measurements: &[(ByteSize, SimDuration)]) -> Option<AlphaBeta> {
        if measurements.len() < 2 {
            return None;
        }
        let n = measurements.len() as f64;
        let sx: f64 = measurements.iter().map(|(s, _)| s.as_f64()).sum();
        let sy: f64 = measurements.iter().map(|(_, t)| t.as_secs()).sum();
        let sxx: f64 = measurements.iter().map(|(s, _)| s.as_f64().powi(2)).sum();
        let sxy: f64 = measurements
            .iter()
            .map(|(s, t)| s.as_f64() * t.as_secs())
            .sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-18 {
            return None;
        }
        let beta = (n * sxy - sx * sy) / denom;
        let alpha = (sy - beta * sx) / n;
        if beta <= 0.0 || !beta.is_finite() || !alpha.is_finite() {
            return None;
        }
        Some(AlphaBeta {
            alpha_secs: alpha.max(0.0),
            beta_secs_per_byte: beta,
            port_beta_secs_per_byte: beta,
        })
    }

    /// Predicted transfer time of `size` bytes.
    pub fn transfer_time(&self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs(self.alpha_secs + self.beta_secs_per_byte * size.as_f64())
    }

    /// The link latency.
    pub fn alpha(&self) -> SimDuration {
        SimDuration::from_secs(self.alpha_secs)
    }

    /// The link bandwidth (1/β).
    ///
    /// # Panics
    ///
    /// Panics if β is zero (cannot happen for fitted or constructed
    /// values).
    pub fn bandwidth(&self) -> Bandwidth {
        assert!(self.beta_secs_per_byte > 0.0, "degenerate beta");
        Bandwidth::from_bytes_per_sec(1.0 / self.beta_secs_per_byte)
    }

    /// Relative difference in bandwidth against another cost, as a
    /// fraction of the other's bandwidth (used to decide whether a
    /// re-profile changed the picture enough to re-synthesize).
    pub fn bandwidth_delta(&self, other: &AlphaBeta) -> f64 {
        let a = self.bandwidth().as_bytes_per_sec();
        let b = other.bandwidth().as_bytes_per_sec();
        (a - b).abs() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let truth = AlphaBeta {
            alpha_secs: 5e-6,
            beta_secs_per_byte: 1.0 / 12.5e9,
            port_beta_secs_per_byte: 1.0 / 12.5e9,
        };
        let meas: Vec<_> = [64 * 1024, 1024 * 1024, 8 * 1024 * 1024]
            .iter()
            .map(|&b| {
                let s = ByteSize::from_bytes(b);
                (s, truth.transfer_time(s))
            })
            .collect();
        let fit = AlphaBeta::fit(&meas).expect("fits");
        assert!((fit.alpha_secs - truth.alpha_secs).abs() < 1e-9);
        assert!((fit.beta_secs_per_byte / truth.beta_secs_per_byte - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = AlphaBeta {
            alpha_secs: 4e-6,
            beta_secs_per_byte: 1.0 / 50e9,
            port_beta_secs_per_byte: 1.0 / 50e9,
        };
        let noise = [1.01, 0.99, 1.004, 0.996];
        let meas: Vec<_> = [
            256 * 1024u64,
            1024 * 1024,
            4 * 1024 * 1024,
            16 * 1024 * 1024,
        ]
        .iter()
        .zip(noise.iter())
        .map(|(&b, &k)| {
            let s = ByteSize::from_bytes(b);
            (s, truth.transfer_time(s).scale(k))
        })
        .collect();
        let fit = AlphaBeta::fit(&meas).expect("fits");
        assert!((fit.bandwidth().as_gbytes_per_sec() - 50.0).abs() < 2.0);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(AlphaBeta::fit(&[]).is_none());
        let s = ByteSize::from_mib(1);
        let t = SimDuration::from_micros(100.0);
        assert!(AlphaBeta::fit(&[(s, t)]).is_none());
        // Same payload twice: no slope information.
        assert!(AlphaBeta::fit(&[(s, t), (s, t)]).is_none());
    }

    #[test]
    fn fit_clamps_small_negative_alpha() {
        // Noisy measurements that regress to a slightly negative alpha.
        let meas = [
            (ByteSize::from_mib(1), SimDuration::from_micros(80.0)),
            (ByteSize::from_mib(2), SimDuration::from_micros(165.0)),
            (ByteSize::from_mib(4), SimDuration::from_micros(330.0)),
        ];
        let fit = AlphaBeta::fit(&meas).expect("fits");
        assert!(fit.alpha_secs >= 0.0);
    }

    #[test]
    fn bandwidth_delta_symmetry_in_sign() {
        let a = AlphaBeta {
            alpha_secs: 0.0,
            beta_secs_per_byte: 1.0 / 10e9,
            port_beta_secs_per_byte: 1.0 / 10e9,
        };
        let b = AlphaBeta {
            alpha_secs: 0.0,
            beta_secs_per_byte: 1.0 / 8e9,
            port_beta_secs_per_byte: 1.0 / 8e9,
        };
        assert!((a.bandwidth_delta(&b) - 0.25).abs() < 1e-12);
    }
}
