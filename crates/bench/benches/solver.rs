//! Criterion micro-benchmarks for the synthesizer: candidate
//! generation + annealing, and a single cost-model evaluation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use adapcc_bench::harness::profiled;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::cost::CostModel;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;

fn bench_solver(c: &mut Criterion) {
    let cluster = Cluster::paper_testbed();
    let (topo, profile) = profiled(&cluster, 1);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let tensor = ByteSize::from_mib(256);
    let req = SynthRequest::new(Primitive::AllReduce, tensor, 4, ranks);

    let mut group = c.benchmark_group("synthesizer");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    group.warm_up_time(Duration::from_secs(2));
    group.bench_function("generators_only", |b| {
        b.iter(|| {
            Synthesizer::new(&topo, &profile)
                .with_config(SynthConfig {
                    anneal_iters: 0,
                    ..Default::default()
                })
                .synthesize(&req)
        })
    });
    group.bench_function("annealed_240", |b| {
        b.iter(|| Synthesizer::new(&topo, &profile).synthesize(&req))
    });
    // Same anneal budget, explicit single chain: the incremental
    // (delta-cost) sequential path, named separately so the BENCH_*
    // trajectory can track it against the historical full-eval cost.
    group.bench_function("annealed_240_delta", |b| {
        b.iter(|| {
            Synthesizer::new(&topo, &profile)
                .with_config(SynthConfig {
                    anneal_chains: 1,
                    solver_threads: 1,
                    ..Default::default()
                })
                .synthesize(&req)
        })
    });
    // The 240-iteration budget split over K parallel chains.
    for chains in [2usize, 4] {
        group.bench_function(format!("annealed_240_par{chains}"), |b| {
            b.iter(|| {
                Synthesizer::new(&topo, &profile)
                    .with_config(SynthConfig {
                        anneal_chains: chains,
                        solver_threads: chains,
                        ..Default::default()
                    })
                    .synthesize(&req)
            })
        });
    }
    let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
    let model = CostModel::new(&topo, &profile);
    group.bench_function("cost_model_evaluate", |b| {
        b.iter(|| model.evaluate(&strategy, tensor))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
