//! Criterion micro-benchmarks: one AllReduce per system on the same
//! simulated fabric (wall-clock cost of the *simulation*, useful for
//! tracking executor performance regressions).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::harness::profiled;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;

fn bench_collectives(c: &mut Criterion) {
    let cluster = Cluster::homogeneous_a100(2);
    let (topo, profile) = profiled(&cluster, 1);
    let runner = Runner::new(&cluster, &topo, &profile);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let tensor = ByteSize::from_mib(32);
    let mut group = c.benchmark_group("allreduce_32mib");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    group.warm_up_time(Duration::from_secs(2));
    for sys in System::all() {
        group.bench_with_input(BenchmarkId::from_parameter(sys.name()), &sys, |b, &sys| {
            b.iter(|| {
                runner.run(
                    sys,
                    Primitive::AllReduce,
                    tensor,
                    &ranks,
                    &Default::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
