//! Criterion micro-benchmarks for the fluid transport engine: many
//! contending flows with frequent rate recomputation.

use criterion::{criterion_group, criterion_main, Criterion};

use adapcc_simnet::cluster::{Cluster, InstanceId};
use adapcc_simnet::engine::NetSim;
use adapcc_simnet::units::ByteSize;

fn bench_engine(c: &mut Criterion) {
    let cluster = Cluster::homogeneous_a100(4);
    let mut group = c.benchmark_group("netsim");
    group.sample_size(20);
    group.bench_function("500_contending_transfers", |b| {
        b.iter(|| {
            let mut sim = NetSim::new(&cluster);
            for i in 0..500u64 {
                let from = InstanceId((i % 4) as usize);
                let to = InstanceId(((i + 1 + i / 4) % 4) as usize);
                if from != to {
                    let path = cluster.net_path(from, to);
                    sim.submit_transfer(&path, ByteSize::from_kib(256), i);
                }
            }
            sim.drain().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
