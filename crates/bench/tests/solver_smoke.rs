//! CI bench smoke: the multi-chain annealer's determinism and
//! incremental-evaluation contracts, cheap enough for every CI run.
//! A full criterion pass stays manual (`cargo bench -p adapcc-bench`);
//! this pins the two properties that would silently rot — strategy
//! digests across thread counts, and delta evaluation actually
//! engaging on the annealed path.

use adapcc_bench::harness::profiled;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;
use adapcc_telemetry::Telemetry;

/// Synthesizes the paper-testbed AllReduce with 4 chains on `threads`
/// workers, returning the strategy and the run's telemetry sink.
fn run(threads: usize) -> (adapcc_synth::strategy::Strategy, Telemetry) {
    let cluster = Cluster::paper_testbed();
    let (topo, profile) = profiled(&cluster, 1);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let req = SynthRequest::new(Primitive::AllReduce, ByteSize::from_mib(256), 4, ranks);
    let telemetry = Telemetry::enabled();
    let strategy = Synthesizer::new(&topo, &profile)
        .with_config(SynthConfig {
            anneal_chains: 4,
            solver_threads: threads,
            ..Default::default()
        })
        .with_telemetry(telemetry.clone())
        .synthesize(&req);
    (strategy, telemetry)
}

#[test]
fn strategy_digest_is_identical_for_1_and_4_threads() {
    let (seq, _) = run(1);
    let (par, _) = run(4);
    assert_eq!(
        seq, par,
        "solver threads changed the synthesized strategy — the \
         deterministic chain reduction is broken"
    );
}

#[test]
fn annealed_path_uses_delta_evaluation() {
    let (_, telemetry) = run(4);
    assert!(
        telemetry.counter("synth.delta_evals") > 0.0,
        "annealed synthesis fell back to full evaluation on every step"
    );
    assert_eq!(telemetry.counter("synth.chains"), 4.0);
    assert!(telemetry.counter("synth.full_evals") > 0.0);
}
