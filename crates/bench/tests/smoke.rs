//! Smoke tests: every quick figure harness runs and emits sane rows.
//! The long harnesses (fig11-18) are exercised by the figures binary;
//! here we cover the cheap ones plus the shared plumbing.

use adapcc_bench::{figure_names, run_figure};

#[test]
fn figure_registry_is_complete() {
    let names = figure_names();
    assert_eq!(names.len(), 16);
    assert!(names.contains(&"fig19b"));
    assert!(names.contains(&"ablation"));
}

#[test]
fn fig1_reports_paper_degradations() {
    let lines = run_figure("fig1");
    let tail = lines.last().unwrap();
    assert!(tail.contains("34%"), "{tail}");
    assert!(tail.contains("17%"), "{tail}");
}

#[test]
fn fig19d_p90_is_under_paper_bound() {
    let lines = run_figure("fig19d");
    let p90_line = lines.iter().find(|l| l.contains("p90 =")).unwrap();
    let value: f64 = p90_line
        .split("p90 = ")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(value < 1.5, "p90 {value} ms");
}

#[test]
#[should_panic(expected = "unknown figure")]
fn unknown_figure_panics() {
    let _ = run_figure("fig99");
}
