//! The `adapcc-sim parallel3d` benchmark: one 3D-parallel + MoE
//! training step on a fat tree, group-oblivious versus
//! contention-aware co-scheduled synthesis.
//!
//! Each phase of [`ParallelLayout::three_d_step`] is a set of process
//! groups running the same collective at once over shared NICs. The
//! oblivious variant solves every group on an empty fabric (what a
//! per-group AdapCC instance would do today); the aware variant runs
//! the [`co_schedule`] fix-point loop, each group re-solving against
//! its peers' pinned background load. Both variants are then *executed*
//! as one concurrent batch per phase on the same simulated fabric —
//! the executed makespans, not the model's opinion, decide the
//! comparison.

use adapcc::{ExecutionRequest, Executor};
use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::Cluster;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::coschedule::{co_schedule, CoScheduleOptions};
use adapcc_synth::solver::SynthConfig;
use adapcc_topo::logical::LogicalTopology;
use adapcc_train::parallel::ParallelLayout;

/// One parallel3d run, ready to benchmark.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Fat-tree servers.
    pub servers: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// The (dp, tp, pp) grid; must cover the fleet exactly.
    pub layout: ParallelLayout,
    /// Model parameter bytes (sharded over tp·pp).
    pub model: ByteSize,
    /// Parallel sub-collectives per strategy (`M`).
    pub parallelism: usize,
    /// Profiling/synthesis seed.
    pub seed: u64,
    /// Synthesis effort for every per-group solve.
    pub synth: SynthConfig,
    /// Fix-point sweep cap for the aware variant.
    pub max_rounds: usize,
}

/// One phase's modeled and executed outcomes under both variants.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase label (`tp.allreduce`, `moe.alltoall`, …).
    pub name: &'static str,
    /// Concurrent groups in the phase.
    pub groups: usize,
    /// Modeled contended makespan of the oblivious strategies.
    pub oblivious_modeled_s: f64,
    /// Modeled contended makespan after co-scheduling.
    pub aware_modeled_s: f64,
    /// Executed makespan of the oblivious strategies (one concurrent
    /// batch on the shared fabric).
    pub oblivious_executed_s: f64,
    /// Executed makespan of the co-scheduled strategies.
    pub aware_executed_s: f64,
    /// Fix-point sweeps the co-scheduler ran.
    pub rounds: usize,
}

/// The whole step: per-phase outcomes plus their totals.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Per-phase outcomes, in step order.
    pub phases: Vec<PhaseOutcome>,
}

impl ParallelReport {
    /// Executed step time under group-oblivious synthesis (phases run
    /// back to back).
    pub fn oblivious_executed_s(&self) -> f64 {
        self.phases.iter().map(|p| p.oblivious_executed_s).sum()
    }

    /// Executed step time under contention-aware co-scheduling.
    pub fn aware_executed_s(&self) -> f64 {
        self.phases.iter().map(|p| p.aware_executed_s).sum()
    }

    /// Modeled step time under group-oblivious synthesis.
    pub fn oblivious_modeled_s(&self) -> f64 {
        self.phases.iter().map(|p| p.oblivious_modeled_s).sum()
    }

    /// Modeled step time under contention-aware co-scheduling.
    pub fn aware_modeled_s(&self) -> f64 {
        self.phases.iter().map(|p| p.aware_modeled_s).sum()
    }
}

/// Runs one 3D-parallel step under both variants on a pre-profiled
/// fabric.
///
/// # Panics
///
/// Panics when the layout does not cover the cluster exactly.
pub fn run_parallel3d(
    cluster: &Cluster,
    topo: &LogicalTopology,
    profile: &LinkProfile,
    cfg: &ParallelConfig,
) -> ParallelReport {
    assert_eq!(
        cfg.layout.world_size(),
        cluster.gpu_count(),
        "layout must cover the fleet exactly"
    );
    let telemetry = adapcc_telemetry::Telemetry::disabled();
    let opts = CoScheduleOptions {
        max_rounds: cfg.max_rounds,
    };
    let executor = Executor::new(cluster, topo);
    let mut phases = Vec::new();
    for phase in cfg.layout.three_d_step(cfg.model) {
        let mut reqs = phase.synth_requests(cfg.parallelism);
        for r in &mut reqs {
            r.seed ^= cfg.seed;
        }
        let cs = co_schedule(topo, profile, &cfg.synth, &telemetry, &reqs, &opts);
        let execute = |strategies: &[adapcc_synth::strategy::Strategy]| -> f64 {
            let batch: Vec<ExecutionRequest<'_>> = strategies
                .iter()
                .map(|s| ExecutionRequest::timing(s, phase.tensor))
                .collect();
            executor
                .try_execute(&batch)
                .expect("phase strategies validate")
                .finish
                .as_secs()
        };
        phases.push(PhaseOutcome {
            name: phase.name,
            groups: phase.groups.len(),
            oblivious_modeled_s: cs.oblivious_makespan(),
            aware_modeled_s: cs.contended_makespan(),
            oblivious_executed_s: execute(&cs.oblivious),
            aware_executed_s: execute(&cs.strategies),
            rounds: cs.rounds,
        });
    }
    ParallelReport { phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::profiled;

    fn quick_cfg(servers: usize, gpus: usize, layout: ParallelLayout) -> ParallelConfig {
        ParallelConfig {
            servers,
            gpus_per_server: gpus,
            layout,
            model: ByteSize::from_mib(64),
            parallelism: 2,
            seed: 7,
            synth: SynthConfig {
                anneal_iters: 32,
                ..Default::default()
            },
            max_rounds: 2,
        }
    }

    #[test]
    fn step_runs_all_phases_and_never_loses_modeled() {
        let cluster = Cluster::fat_tree(2, 4);
        let (topo, profile) = profiled(&cluster, 7);
        let cfg = quick_cfg(2, 4, ParallelLayout::new(2, 2, 2));
        let report = run_parallel3d(&cluster, &topo, &profile, &cfg);
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "tp.allreduce",
                "moe.alltoall",
                "pp.boundary",
                "dp.allreduce"
            ]
        );
        // The co-scheduler only accepts strict modeled improvements,
        // so the aware modeled step never exceeds the oblivious one.
        assert!(report.aware_modeled_s() <= report.oblivious_modeled_s() + 1e-12);
        for p in &report.phases {
            assert!(p.oblivious_executed_s > 0.0 && p.aware_executed_s > 0.0);
        }
    }

    #[test]
    fn parallel3d_is_deterministic() {
        let cluster = Cluster::fat_tree(2, 4);
        let (topo, profile) = profiled(&cluster, 7);
        let cfg = quick_cfg(2, 4, ParallelLayout::new(2, 2, 2));
        let a = run_parallel3d(&cluster, &topo, &profile, &cfg);
        let b = run_parallel3d(&cluster, &topo, &profile, &cfg);
        for (x, y) in a.phases.iter().zip(&b.phases) {
            assert_eq!(
                x.oblivious_executed_s.to_bits(),
                y.oblivious_executed_s.to_bits()
            );
            assert_eq!(x.aware_executed_s.to_bits(), y.aware_executed_s.to_bits());
        }
    }
}
