//! Many-job plan-service benchmark: M concurrent jobs on K threads
//! resolving synthesis requests against one shared
//! [`PlanService`], versus the same workload on private per-session
//! plan caches.
//!
//! The synthetic workload models a multi-tenant cluster: jobs cycle
//! through a mixed fleet of server shapes, each job issues one
//! `strategy_for_root` request per tensor size, and a configurable
//! fraction of jobs are *repeats* (same fleet shape and canonical
//! profile — the fingerprints another job already paid to solve) while
//! the rest are *unique* (same shapes but per-job profiler noise, so
//! their fingerprints share the structural half and warm-start from
//! repeat entries). A thundering-herd prologue has every thread issue
//! one identical cold request behind a barrier, so single-flight
//! coalescing is exercised deterministically.
//!
//! Both passes time only the request phase (sessions are initialized
//! before the barrier); the headline metrics are plans per second,
//! the hit/warm/cold/coalesced mix, and p50/p99 request latency.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use adapcc::{AdapCC, InitOptions};
use adapcc_planserve::{PlanService, ServiceConfig};
use adapcc_simnet::cluster::{Cluster, ClusterBuilder};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;

use crate::harness::percentile;

/// The synthetic many-job workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceWorkload {
    /// Concurrent jobs (`M`); each is one AdapCC session.
    pub jobs: usize,
    /// Worker threads (`K`) the jobs are spread over round-robin.
    pub threads: usize,
    /// Fraction of jobs whose profile is the canonical one for their
    /// fleet shape — their requests repeat fingerprints across jobs.
    /// The rest carry per-job profiler noise (warm-startable shape
    /// siblings).
    pub repeat_ratio: f64,
    /// Distinct fleet shapes jobs cycle through (alternating A100/V100
    /// fleets of growing size).
    pub shapes: usize,
    /// Per-job request sizes; each is one `strategy_for_root` call.
    pub tensors_mib: Vec<u64>,
    /// Base seed for canonical profiles (unique jobs offset from it).
    pub seed: u64,
    /// Service store stripes.
    pub shards: usize,
    /// Service byte budget over all shards.
    pub byte_budget: usize,
}

impl Default for ServiceWorkload {
    fn default() -> Self {
        ServiceWorkload {
            jobs: 32,
            threads: 8,
            repeat_ratio: 0.75,
            shapes: 2,
            tensors_mib: vec![4, 8, 16, 32],
            seed: 1,
            shards: 16,
            byte_budget: 64 << 20,
        }
    }
}

/// One pass's outcome (service-backed or private-cache baseline).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModeReport {
    /// `strategy_for_root` calls issued (herd prologue included).
    pub requests: u64,
    /// Request-phase wall milliseconds (max over threads; sessions
    /// initialize before the barrier and are never timed).
    pub wall_ms: f64,
    /// Requests per wall-clock second — the headline metric.
    pub plans_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Exact store/cache hits.
    pub hits: u64,
    /// Warm-started solves.
    pub warm_starts: u64,
    /// Cold solves.
    pub cold_solves: u64,
    /// Requests coalesced onto another thread's in-flight solve
    /// (always 0 for the baseline: private caches cannot coalesce).
    pub coalesced: u64,
}

/// Service-versus-baseline comparison over one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceBenchReport {
    /// The shared-service pass.
    pub service: ModeReport,
    /// The per-session private-cache pass of the identical workload.
    pub baseline: ModeReport,
    /// Entries left in the service store.
    pub entries: u64,
    /// Estimated bytes left in the service store.
    pub bytes: u64,
    /// Entries the service evicted to hold its byte budget.
    pub evictions: u64,
    /// `service.plans_per_sec / baseline.plans_per_sec`.
    pub speedup: f64,
}

/// One job: which fleet it runs on and the profiling seed that
/// determines whether its fingerprints repeat or drift.
#[derive(Debug, Clone, Copy)]
struct Job {
    shape: usize,
    seed: u64,
}

/// The fleet shape cycle: alternating A100/V100 server fleets that
/// grow every other index, so a 2-shape workload is heterogeneous and
/// larger values stay distinct.
fn shape_cluster(i: usize) -> Cluster {
    let mut b = ClusterBuilder::new();
    let spec = if i.is_multiple_of(2) {
        InstanceSpec::a100_server()
    } else {
        InstanceSpec::v100_server()
    };
    b.add_instances(spec, 2 + i / 2);
    b.build()
}

fn jobs_for(w: &ServiceWorkload, shapes: usize) -> Vec<Job> {
    let uniques = ((1.0 - w.repeat_ratio).clamp(0.0, 1.0) * w.jobs as f64).round() as usize;
    (0..w.jobs)
        .map(|j| {
            let shape = j % shapes;
            // Bresenham spread: unique jobs are interleaved evenly so
            // every thread sees a mix of repeats and uniques.
            let unique = (j + 1) * uniques / w.jobs.max(1) > j * uniques / w.jobs.max(1);
            Job {
                shape,
                seed: if unique {
                    w.seed + 1000 + j as u64
                } else {
                    w.seed + shape as u64
                },
            }
        })
        .collect()
}

fn session_options(seed: u64, service: Option<Arc<PlanService>>) -> InitOptions {
    InitOptions {
        seed,
        // A hair-thin quantization bucket: any cross-job profiler
        // noise flips the profile half of the fingerprint, so unique
        // jobs exercise the cross-job warm-start path instead of
        // accidentally sharing exact fingerprints with repeats.
        resynth_threshold: 1e-3,
        plan_service: service,
        ..InitOptions::default()
    }
}

/// Runs the workload once. `service` = `None` is the baseline: every
/// session keeps its private in-memory plan cache and no solve is ever
/// shared across jobs.
fn run_mode(w: &ServiceWorkload, service: Option<&Arc<PlanService>>) -> ModeReport {
    let shapes: Vec<Cluster> = (0..w.shapes.max(1)).map(shape_cluster).collect();
    let jobs = jobs_for(w, shapes.len());
    let threads = w.threads.max(1);
    let barrier = Barrier::new(threads);
    // The herd fingerprint: same canonical problem for every thread,
    // and a tensor class no main-phase request uses.
    let herd_tensor = ByteSize::from_mib(2);
    let latencies = Mutex::new(Vec::new());
    let walls = Mutex::new(Vec::new());
    let cache_stats = Mutex::new(adapcc_plancache::PlanCacheStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let jobs = &jobs;
            let shapes = &shapes;
            let latencies = &latencies;
            let walls = &walls;
            let cache_stats = &cache_stats;
            let service = service.cloned();
            scope.spawn(move || {
                // Pre-init every session this thread owns (detection +
                // profiling stay outside the timed request phase).
                let mut herd = AdapCC::init(&shapes[0], session_options(w.seed, service.clone()));
                let mut sessions: Vec<AdapCC<'_>> = jobs
                    .iter()
                    .skip(t)
                    .step_by(threads)
                    .map(|job| {
                        AdapCC::init(
                            &shapes[job.shape],
                            session_options(job.seed, service.clone()),
                        )
                    })
                    .collect();
                let mut lat = Vec::new();
                barrier.wait();
                let start = Instant::now();
                // Thundering herd: every thread asks for the same cold
                // fingerprint at once; exactly one solve happens.
                let t0 = Instant::now();
                let _ = herd.strategy_for_root(Primitive::AllReduce, herd_tensor, None);
                lat.push(t0.elapsed().as_secs_f64() * 1e6);
                for cc in &mut sessions {
                    for mib in &w.tensors_mib {
                        let t0 = Instant::now();
                        let _ = cc.strategy_for_root(
                            Primitive::AllReduce,
                            ByteSize::from_mib(*mib),
                            None,
                        );
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                let wall = start.elapsed().as_secs_f64() * 1e3;
                walls.lock().expect("walls lock").push(wall);
                latencies.lock().expect("latency lock").extend(lat);
                let mut agg = cache_stats.lock().expect("stats lock");
                for cc in sessions.iter().chain(std::iter::once(&herd)) {
                    let s = cc.plan_cache_stats();
                    agg.hits += s.hits;
                    agg.misses += s.misses;
                    agg.warm_starts += s.warm_starts;
                }
            });
        }
    });
    let lat = latencies.into_inner().expect("latency lock");
    let wall_ms = walls
        .into_inner()
        .expect("walls lock")
        .into_iter()
        .fold(0.0_f64, f64::max);
    let requests = lat.len() as u64;
    let (hits, warm_starts, cold_solves, coalesced) = match service {
        Some(svc) => {
            let s = svc.stats();
            (s.hits, s.warm, s.cold, s.coalesced)
        }
        None => {
            let s = cache_stats.into_inner().expect("stats lock");
            // Private caches see every request exactly once, so every
            // miss is a cold solve and nothing can coalesce.
            (s.hits, s.warm_starts, s.misses, 0)
        }
    };
    ModeReport {
        requests,
        wall_ms,
        plans_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
        p50_us: percentile(&lat, 50.0),
        p99_us: percentile(&lat, 99.0),
        hits,
        warm_starts,
        cold_solves,
        coalesced,
    }
}

/// Runs the workload twice — shared service, then private-cache
/// baseline — and reports both plus the plans/sec speedup.
pub fn run_service_bench(w: &ServiceWorkload) -> ServiceBenchReport {
    let service = Arc::new(PlanService::new(ServiceConfig {
        shards: w.shards.max(1),
        byte_budget: w.byte_budget,
        warm_start: true,
    }));
    let with_service = run_mode(w, Some(&service));
    let stats = service.stats();
    let baseline = run_mode(w, None);
    ServiceBenchReport {
        service: with_service,
        baseline,
        entries: stats.entries,
        bytes: stats.bytes,
        evictions: stats.evictions,
        speedup: with_service.plans_per_sec / baseline.plans_per_sec.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_shares_solves_and_coalesces() {
        let w = ServiceWorkload {
            jobs: 6,
            threads: 3,
            repeat_ratio: 1.0,
            shapes: 1,
            tensors_mib: vec![4, 8],
            ..ServiceWorkload::default()
        };
        let r = run_service_bench(&w);
        // 6 jobs x 2 tensors + 3 herd requests.
        assert_eq!(r.service.requests, 15);
        assert_eq!(r.baseline.requests, 15);
        // All jobs repeat the canonical profile: 3 distinct
        // fingerprints total (2 main + 1 herd), each solved exactly
        // once; everything else is a hit or a coalesced wait.
        assert_eq!(r.service.cold_solves, 3, "{:?}", r.service);
        assert_eq!(
            r.service.hits + r.service.coalesced + r.service.warm_starts,
            12,
            "{:?}",
            r.service
        );
        // The baseline solves per session: all 15 requests cold.
        assert_eq!(r.baseline.cold_solves, 15, "{:?}", r.baseline);
        assert_eq!(r.baseline.coalesced, 0);
        assert!(r.speedup > 1.0, "sharing must not be slower: {r:?}");
        assert_eq!(r.entries, 3);
        assert!(r.bytes > 0);
    }

    #[test]
    fn unique_jobs_warm_start_from_repeats() {
        let w = ServiceWorkload {
            jobs: 4,
            threads: 1, // sequential: repeats land before uniques
            repeat_ratio: 0.5,
            shapes: 1,
            tensors_mib: vec![4],
            ..ServiceWorkload::default()
        };
        let r = run_service_bench(&w);
        assert!(
            r.service.warm_starts >= 1,
            "drifted-profile jobs must warm-start: {:?}",
            r.service
        );
    }
}
