//! Machine-readable benchmark records: one JSON object per line,
//! appended to a shared file so successive `adapcc-sim --bench-append`
//! runs accumulate a comparable result trajectory (the seed of the
//! `BENCH_*.json` history).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One benchmark run, flattened for line-oriented appending.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// System under test (`AdapCC`, `NCCL`, ...).
    pub system: String,
    /// Collective primitive name.
    pub primitive: String,
    /// Server fleet spec, e.g. `a100:2`.
    pub servers: String,
    /// Per-rank tensor size in MiB.
    pub tensor_mib: u64,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Completion time in simulated milliseconds.
    pub comm_time_ms: f64,
    /// The paper's algorithm bandwidth in GB/s.
    pub algo_bw_gbytes: f64,
    /// Plan-cache exact hits during the run (all zero when the run had
    /// no `--plan-cache`).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (cold solves).
    pub plan_cache_misses: u64,
    /// Plan-cache warm-started solves.
    pub plan_cache_warm_starts: u64,
    /// Host wall-clock milliseconds of one cold AdapCC synthesis at
    /// the run's solver settings (0 for baseline systems). Real time,
    /// never part of the simulated timeline.
    pub solver_wall_ms: f64,
    /// `synth.full_evals` counter from that synthesis.
    pub synth_full_evals: u64,
    /// `synth.delta_evals` counter from that synthesis.
    pub synth_delta_evals: u64,
    /// `synth.chains` counter (annealing chains actually used).
    pub synth_chains: u64,
    /// Whether the run forced two-tier hierarchical synthesis
    /// (`--hierarchical`).
    pub hierarchical: bool,
    /// Host wall-clock milliseconds of the end-to-end synth + sim run
    /// (0 when not measured). Real time, never simulated.
    pub sim_wall_ms: f64,
    /// Engine throughput from the storm micro-benchmark on the same
    /// cluster, in events per wall-clock second (0 when not measured).
    pub engine_events_per_sec: f64,
}

impl BenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline). Field order is fixed, so identical runs serialize
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"system\":\"{}\",\"primitive\":\"{}\",\"servers\":\"{}\",\
             \"tensor_mib\":{},\"parallelism\":{},\"comm_time_ms\":{:.6},\
             \"algo_bw_gbytes\":{:.6},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"plan_cache_warm_starts\":{},\
             \"solver_wall_ms\":{:.3},\"synth_full_evals\":{},\
             \"synth_delta_evals\":{},\"synth_chains\":{},\
             \"hierarchical\":{},\"sim_wall_ms\":{:.3},\
             \"engine_events_per_sec\":{:.1}}}",
            escape(&self.system),
            escape(&self.primitive),
            escape(&self.servers),
            self.tensor_mib,
            self.parallelism,
            self.comm_time_ms,
            self.algo_bw_gbytes,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_warm_starts,
            self.solver_wall_ms,
            self.synth_full_evals,
            self.synth_delta_evals,
            self.synth_chains,
            self.hierarchical,
            self.sim_wall_ms,
            self.engine_events_per_sec,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// One engine-storm micro-benchmark run (see
/// [`crate::engine_bench::engine_storm`]), flattened for line-oriented
/// appending to `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchRecord {
    /// Server fleet spec, e.g. `a100:128`.
    pub servers: String,
    /// GPUs in the fleet.
    pub gpus: usize,
    /// Storm waves run.
    pub waves: usize,
    /// Workload shape: `wave` or `churn`.
    pub storm: String,
    /// Allocator that ran: `exact` or `incremental`.
    pub alloc: String,
    /// Transfers submitted.
    pub transfers: u64,
    /// Internal engine events processed.
    pub events: u64,
    /// Simulated completion milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds (machine property).
    pub wall_ms: f64,
    /// Events per wall-clock second — the headline metric.
    pub events_per_sec: f64,
    /// Filling passes the allocator ran.
    pub fillings: u64,
    /// Total flows those fillings touched (the allocator's real work:
    /// `O(frontier)` under the incremental allocator, `O(live)` per
    /// event under the exact one).
    pub frontier_flows: u64,
    /// Plan-cache exact hits. The storm runs no synthesis, so this is
    /// always zero; the field exists so every `BENCH_*.json` row
    /// carries the same cache columns.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (schema uniformity; zero for the storm).
    pub plan_cache_misses: u64,
    /// Plan-cache warm starts (schema uniformity; zero for the storm).
    pub plan_cache_warm_starts: u64,
    /// Whether two-tier hierarchical synthesis was in play (schema
    /// uniformity; always `false` for the synthesis-free storm).
    pub hierarchical: bool,
}

impl EngineBenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline), field order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"servers\":\"{}\",\"gpus\":{},\"waves\":{},\"storm\":\"{}\",\
             \"alloc\":\"{}\",\"transfers\":{},\
             \"events\":{},\"sim_ms\":{:.6},\"wall_ms\":{:.3},\
             \"events_per_sec\":{:.1},\"fillings\":{},\"frontier_flows\":{},\
             \"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"plan_cache_warm_starts\":{},\
             \"hierarchical\":{}}}",
            escape(&self.servers),
            self.gpus,
            self.waves,
            escape(&self.storm),
            escape(&self.alloc),
            self.transfers,
            self.events,
            self.sim_ms,
            self.wall_ms,
            self.events_per_sec,
            self.fillings,
            self.frontier_flows,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_warm_starts,
            self.hierarchical,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// One churn-sweep run (see [`crate::churn::run_sweep`]), flattened
/// for line-oriented appending to `BENCH_churn.json`. Carries the same
/// `plan_cache_*` / `hierarchical` columns as every other record so
/// mixed BENCH files stay schema-uniform; churn's cache counters are
/// real (membership changes re-plan through each session's cache).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnBenchRecord {
    /// Consecutive seeds swept.
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Homogeneous A100 servers per run.
    pub servers: usize,
    /// Per-rank tensor KiB of the clock-driving iterations.
    pub size_kib: u64,
    /// Churn window in simulated milliseconds.
    pub horizon_ms: f64,
    /// Settle iterations past the horizon.
    pub settle_iters: usize,
    /// Runs whose membership converged and verified.
    pub converged: usize,
    /// Runs that ended in a classified error.
    pub classified: usize,
    /// Invariant violations (must be zero for a healthy sweep).
    pub violations: usize,
    /// Ranks readmitted across the sweep.
    pub rejoins: usize,
    /// Typed errors absorbed across the sweep.
    pub errors: usize,
    /// Plan-cache exact hits summed over every session in the sweep.
    pub plan_cache_hits: u64,
    /// Plan-cache misses summed over every session in the sweep.
    pub plan_cache_misses: u64,
    /// Plan-cache warm starts summed over every session in the sweep.
    pub plan_cache_warm_starts: u64,
    /// Whether the sweep's sessions forced hierarchical synthesis
    /// (always `false` today; the column keeps the schema uniform).
    pub hierarchical: bool,
    /// Host wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
}

impl ChurnBenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline), field order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"seeds\":{},\"seed_base\":{},\"servers\":{},\"size_kib\":{},\
             \"horizon_ms\":{:.3},\"settle_iters\":{},\"converged\":{},\
             \"classified\":{},\"violations\":{},\"rejoins\":{},\"errors\":{},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
             \"plan_cache_warm_starts\":{},\"hierarchical\":{},\
             \"wall_ms\":{:.3}}}",
            self.seeds,
            self.seed_base,
            self.servers,
            self.size_kib,
            self.horizon_ms,
            self.settle_iters,
            self.converged,
            self.classified,
            self.violations,
            self.rejoins,
            self.errors,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_warm_starts,
            self.hierarchical,
            self.wall_ms,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// One many-job plan-service benchmark run (see
/// [`crate::service_bench::run_service_bench`]), flattened for
/// line-oriented appending to `BENCH_service.json`. Every row carries
/// the shared-service pass and the private-cache baseline of the
/// identical workload, so the speedup is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBenchRecord {
    /// Concurrent jobs (`M`).
    pub jobs: usize,
    /// Worker threads (`K`).
    pub threads: usize,
    /// Fraction of jobs repeating canonical fingerprints.
    pub repeat_ratio: f64,
    /// Distinct fleet shapes in the workload.
    pub shapes: usize,
    /// `strategy_for_root` requests issued per pass.
    pub requests: u64,
    /// Service pass: exact store hits.
    pub hits: u64,
    /// Service pass: cross-job warm-started solves.
    pub warm_starts: u64,
    /// Service pass: cold solves.
    pub cold_solves: u64,
    /// Service pass: requests coalesced onto in-flight solves.
    pub coalesced: u64,
    /// Entries left in the service store.
    pub entries: u64,
    /// Estimated bytes left in the service store.
    pub bytes: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
    /// Service pass: plans per wall-clock second.
    pub plans_per_sec: f64,
    /// Service pass: median request latency, microseconds.
    pub p50_us: f64,
    /// Service pass: p99 request latency, microseconds.
    pub p99_us: f64,
    /// Service pass: request-phase wall milliseconds (max over threads).
    pub wall_ms: f64,
    /// Baseline pass: plans per wall-clock second.
    pub baseline_plans_per_sec: f64,
    /// Baseline pass: median request latency, microseconds.
    pub baseline_p50_us: f64,
    /// Baseline pass: p99 request latency, microseconds.
    pub baseline_p99_us: f64,
    /// Baseline pass: request-phase wall milliseconds.
    pub baseline_wall_ms: f64,
    /// `plans_per_sec / baseline_plans_per_sec`.
    pub speedup: f64,
}

impl ServiceBenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline), field order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"jobs\":{},\"threads\":{},\"repeat_ratio\":{:.2},\"shapes\":{},\
             \"requests\":{},\"hits\":{},\"warm_starts\":{},\"cold_solves\":{},\
             \"coalesced\":{},\"entries\":{},\"bytes\":{},\"evictions\":{},\
             \"plans_per_sec\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1},\
             \"wall_ms\":{:.3},\"baseline_plans_per_sec\":{:.1},\
             \"baseline_p50_us\":{:.1},\"baseline_p99_us\":{:.1},\
             \"baseline_wall_ms\":{:.3},\"speedup\":{:.2}}}",
            self.jobs,
            self.threads,
            self.repeat_ratio,
            self.shapes,
            self.requests,
            self.hits,
            self.warm_starts,
            self.cold_solves,
            self.coalesced,
            self.entries,
            self.bytes,
            self.evictions,
            self.plans_per_sec,
            self.p50_us,
            self.p99_us,
            self.wall_ms,
            self.baseline_plans_per_sec,
            self.baseline_p50_us,
            self.baseline_p99_us,
            self.baseline_wall_ms,
            self.speedup,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// One `adapcc-sim parallel3d` run: a 3D-parallel + MoE step on a
/// fat tree, group-oblivious versus contention-aware co-scheduled
/// synthesis, flattened for line-oriented appending to
/// `BENCH_parallel.json`. Every row carries both variants' modeled
/// and *executed* step times, so the contention win is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelBenchRecord {
    /// Fat-tree servers.
    pub servers: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Total GPUs (`servers * gpus_per_server`).
    pub gpus: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Model parameter MiB.
    pub model_mib: u64,
    /// Parallel sub-collectives per strategy.
    pub parallelism: usize,
    /// Profiling/synthesis seed.
    pub seed: u64,
    /// Communication phases in the step.
    pub phases: usize,
    /// Co-scheduling fix-point sweeps, summed over phases.
    pub rounds: usize,
    /// Modeled step seconds, group-oblivious.
    pub oblivious_modeled_s: f64,
    /// Modeled step seconds, contention-aware.
    pub aware_modeled_s: f64,
    /// Executed step seconds, group-oblivious.
    pub oblivious_executed_s: f64,
    /// Executed step seconds, contention-aware.
    pub aware_executed_s: f64,
    /// Host wall-clock milliseconds for the whole comparison.
    pub wall_ms: f64,
}

impl ParallelBenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline), field order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"servers\":{},\"gpus_per_server\":{},\"gpus\":{},\"dp\":{},\
             \"tp\":{},\"pp\":{},\"model_mib\":{},\"parallelism\":{},\
             \"seed\":{},\"phases\":{},\"rounds\":{},\
             \"oblivious_modeled_s\":{:.6},\"aware_modeled_s\":{:.6},\
             \"oblivious_executed_s\":{:.6},\"aware_executed_s\":{:.6},\
             \"wall_ms\":{:.3}}}",
            self.servers,
            self.gpus_per_server,
            self.gpus,
            self.dp,
            self.tp,
            self.pp,
            self.model_mib,
            self.parallelism,
            self.seed,
            self.phases,
            self.rounds,
            self.oblivious_modeled_s,
            self.aware_modeled_s,
            self.oblivious_executed_s,
            self.aware_executed_s,
            self.wall_ms,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parallel_sample() -> ParallelBenchRecord {
        ParallelBenchRecord {
            servers: 8,
            gpus_per_server: 4,
            gpus: 32,
            dp: 8,
            tp: 2,
            pp: 2,
            model_mib: 512,
            parallelism: 4,
            seed: 1,
            phases: 4,
            rounds: 6,
            oblivious_modeled_s: 0.101234,
            aware_modeled_s: 0.091234,
            oblivious_executed_s: 0.120001,
            aware_executed_s: 0.110001,
            wall_ms: 950.5,
        }
    }

    #[test]
    fn parallel_json_is_one_line_with_fixed_fields() {
        let j = parallel_sample().to_json();
        assert!(!j.contains('\n'));
        for field in [
            "\"servers\":8",
            "\"gpus\":32",
            "\"dp\":8",
            "\"tp\":2",
            "\"pp\":2",
            "\"model_mib\":512",
            "\"phases\":4",
            "\"rounds\":6",
            "\"oblivious_executed_s\":0.120001",
            "\"aware_executed_s\":0.110001",
        ] {
            assert!(j.contains(field), "{field} missing in {j}");
        }
        assert_eq!(parallel_sample().to_json(), j, "rendering is deterministic");
    }

    #[test]
    fn parallel_record_appends_parseable_lines() {
        let dir =
            std::env::temp_dir().join(format!("adapcc-parallel-record-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_parallel.json");
        let _ = std::fs::remove_file(&path);
        parallel_sample().append_to(&path).unwrap();
        parallel_sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample() -> BenchRecord {
        BenchRecord {
            system: "AdapCC".into(),
            primitive: "allreduce".into(),
            servers: "a100:2".into(),
            tensor_mib: 256,
            parallelism: 4,
            comm_time_ms: 12.5,
            algo_bw_gbytes: 21.474836,
            plan_cache_hits: 0,
            plan_cache_misses: 1,
            plan_cache_warm_starts: 0,
            solver_wall_ms: 8.062,
            synth_full_evals: 13,
            synth_delta_evals: 360,
            synth_chains: 1,
            hierarchical: false,
            sim_wall_ms: 0.0,
            engine_events_per_sec: 0.0,
        }
    }

    #[test]
    fn json_is_one_line_with_fixed_fields() {
        let j = sample().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"system\":\"AdapCC\""));
        assert!(j.contains("\"tensor_mib\":256"));
        assert!(j.contains("\"comm_time_ms\":12.500000"));
        assert!(j.contains("\"plan_cache_hits\":0"));
        assert!(j.contains("\"plan_cache_misses\":1"));
        assert!(j.contains("\"solver_wall_ms\":8.062"));
        assert!(j.contains("\"synth_full_evals\":13"));
        assert!(j.contains("\"synth_delta_evals\":360"));
        assert!(j.contains("\"synth_chains\":1"));
        assert!(j.contains("\"hierarchical\":false"));
        assert!(j.contains("\"sim_wall_ms\":0.000"));
        assert!(j.contains("\"engine_events_per_sec\":0.0"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn engine_record_is_one_line_json() {
        let r = EngineBenchRecord {
            servers: "a100:128".into(),
            gpus: 512,
            waves: 4,
            storm: "churn".into(),
            alloc: "incremental".into(),
            transfers: 512,
            events: 4096,
            sim_ms: 1.25,
            wall_ms: 97.5,
            events_per_sec: 42010.3,
            fillings: 900,
            frontier_flows: 3100,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_warm_starts: 0,
            hierarchical: false,
        };
        let j = r.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"servers\":\"a100:128\""));
        assert!(j.contains("\"gpus\":512"));
        assert!(j.contains("\"storm\":\"churn\""));
        assert!(j.contains("\"alloc\":\"incremental\""));
        assert!(j.contains("\"events\":4096"));
        assert!(j.contains("\"events_per_sec\":42010.3"));
        assert!(j.contains("\"fillings\":900"));
        assert!(j.contains("\"frontier_flows\":3100"));
        assert!(j.ends_with('}'));
    }

    /// The schema-uniformity contract: every record type carries the
    /// same plan-cache and hierarchical columns, so a mixed BENCH file
    /// can be grouped on them without per-row schema sniffing.
    #[test]
    fn every_record_carries_the_cache_columns() {
        let engine = EngineBenchRecord {
            servers: "a100:4".into(),
            gpus: 16,
            waves: 2,
            storm: "wave".into(),
            alloc: "exact".into(),
            transfers: 8,
            events: 64,
            sim_ms: 0.5,
            wall_ms: 3.0,
            events_per_sec: 21333.3,
            fillings: 10,
            frontier_flows: 40,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_warm_starts: 0,
            hierarchical: false,
        };
        let churn = churn_sample();
        for j in [sample().to_json(), engine.to_json(), churn.to_json()] {
            for col in [
                "\"plan_cache_hits\":",
                "\"plan_cache_misses\":",
                "\"plan_cache_warm_starts\":",
                "\"hierarchical\":",
            ] {
                assert!(j.contains(col), "{j} lacks {col}");
            }
        }
    }

    fn churn_sample() -> ChurnBenchRecord {
        ChurnBenchRecord {
            seeds: 200,
            seed_base: 0,
            servers: 2,
            size_kib: 1024,
            horizon_ms: 2.0,
            settle_iters: 6,
            converged: 180,
            classified: 20,
            violations: 0,
            rejoins: 97,
            errors: 311,
            plan_cache_hits: 12,
            plan_cache_misses: 200,
            plan_cache_warm_starts: 45,
            hierarchical: false,
            wall_ms: 15321.7,
        }
    }

    #[test]
    fn churn_record_is_one_line_json() {
        let j = churn_sample().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"seeds\":200"));
        assert!(j.contains("\"converged\":180"));
        assert!(j.contains("\"violations\":0"));
        assert!(j.contains("\"rejoins\":97"));
        assert!(j.contains("\"plan_cache_warm_starts\":45"));
        assert!(j.contains("\"wall_ms\":15321.700"));
        assert!(j.ends_with('}'));
        assert_eq!(j, churn_sample().to_json(), "byte-deterministic");
    }

    #[test]
    fn identical_records_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn service_record_is_one_line_json() {
        let r = ServiceBenchRecord {
            jobs: 32,
            threads: 8,
            repeat_ratio: 0.75,
            shapes: 2,
            requests: 136,
            hits: 81,
            warm_starts: 33,
            cold_solves: 8,
            coalesced: 14,
            entries: 9,
            bytes: 4521,
            evictions: 0,
            plans_per_sec: 2891.2,
            p50_us: 45.4,
            p99_us: 21665.7,
            wall_ms: 47.039,
            baseline_plans_per_sec: 385.8,
            baseline_p50_us: 19273.0,
            baseline_p99_us: 31861.2,
            baseline_wall_ms: 352.518,
            speedup: 7.49,
        };
        let j = r.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"jobs\":32,\"threads\":8,\"repeat_ratio\":0.75"));
        assert!(j.contains("\"coalesced\":14"));
        assert!(j.contains("\"plans_per_sec\":2891.2"));
        assert!(j.contains("\"speedup\":7.49"));
        assert!(j.ends_with('}'));
        assert_eq!(j, r.to_json(), "byte-deterministic");
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut r = sample();
        r.servers = "a\"b\\c".into();
        assert!(r.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join("adapcc_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.jsonl");
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert_eq!(line, sample().to_json());
        }
        let _ = std::fs::remove_file(&path);
    }
}
