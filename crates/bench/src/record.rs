//! Machine-readable benchmark records: one JSON object per line,
//! appended to a shared file so successive `adapcc-sim --bench-append`
//! runs accumulate a comparable result trajectory (the seed of the
//! `BENCH_*.json` history).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One benchmark run, flattened for line-oriented appending.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// System under test (`AdapCC`, `NCCL`, ...).
    pub system: String,
    /// Collective primitive name.
    pub primitive: String,
    /// Server fleet spec, e.g. `a100:2`.
    pub servers: String,
    /// Per-rank tensor size in MiB.
    pub tensor_mib: u64,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Completion time in simulated milliseconds.
    pub comm_time_ms: f64,
    /// The paper's algorithm bandwidth in GB/s.
    pub algo_bw_gbytes: f64,
    /// Plan-cache exact hits during the run (all zero when the run had
    /// no `--plan-cache`).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (cold solves).
    pub plan_cache_misses: u64,
    /// Plan-cache warm-started solves.
    pub plan_cache_warm_starts: u64,
    /// Host wall-clock milliseconds of one cold AdapCC synthesis at
    /// the run's solver settings (0 for baseline systems). Real time,
    /// never part of the simulated timeline.
    pub solver_wall_ms: f64,
    /// `synth.full_evals` counter from that synthesis.
    pub synth_full_evals: u64,
    /// `synth.delta_evals` counter from that synthesis.
    pub synth_delta_evals: u64,
    /// `synth.chains` counter (annealing chains actually used).
    pub synth_chains: u64,
    /// Whether the run forced two-tier hierarchical synthesis
    /// (`--hierarchical`).
    pub hierarchical: bool,
    /// Host wall-clock milliseconds of the end-to-end synth + sim run
    /// (0 when not measured). Real time, never simulated.
    pub sim_wall_ms: f64,
    /// Engine throughput from the storm micro-benchmark on the same
    /// cluster, in events per wall-clock second (0 when not measured).
    pub engine_events_per_sec: f64,
}

impl BenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline). Field order is fixed, so identical runs serialize
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"system\":\"{}\",\"primitive\":\"{}\",\"servers\":\"{}\",\
             \"tensor_mib\":{},\"parallelism\":{},\"comm_time_ms\":{:.6},\
             \"algo_bw_gbytes\":{:.6},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"plan_cache_warm_starts\":{},\
             \"solver_wall_ms\":{:.3},\"synth_full_evals\":{},\
             \"synth_delta_evals\":{},\"synth_chains\":{},\
             \"hierarchical\":{},\"sim_wall_ms\":{:.3},\
             \"engine_events_per_sec\":{:.1}}}",
            escape(&self.system),
            escape(&self.primitive),
            escape(&self.servers),
            self.tensor_mib,
            self.parallelism,
            self.comm_time_ms,
            self.algo_bw_gbytes,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_warm_starts,
            self.solver_wall_ms,
            self.synth_full_evals,
            self.synth_delta_evals,
            self.synth_chains,
            self.hierarchical,
            self.sim_wall_ms,
            self.engine_events_per_sec,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

/// One engine-storm micro-benchmark run (see
/// [`crate::engine_bench::engine_storm`]), flattened for line-oriented
/// appending to `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchRecord {
    /// Server fleet spec, e.g. `a100:128`.
    pub servers: String,
    /// GPUs in the fleet.
    pub gpus: usize,
    /// Storm waves run.
    pub waves: usize,
    /// Transfers submitted.
    pub transfers: u64,
    /// Internal engine events processed.
    pub events: u64,
    /// Simulated completion milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds (machine property).
    pub wall_ms: f64,
    /// Events per wall-clock second — the headline metric.
    pub events_per_sec: f64,
}

impl EngineBenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline), field order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"servers\":\"{}\",\"gpus\":{},\"waves\":{},\"transfers\":{},\
             \"events\":{},\"sim_ms\":{:.6},\"wall_ms\":{:.3},\
             \"events_per_sec\":{:.1}}}",
            escape(&self.servers),
            self.gpus,
            self.waves,
            self.transfers,
            self.events,
            self.sim_ms,
            self.wall_ms,
            self.events_per_sec,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            system: "AdapCC".into(),
            primitive: "allreduce".into(),
            servers: "a100:2".into(),
            tensor_mib: 256,
            parallelism: 4,
            comm_time_ms: 12.5,
            algo_bw_gbytes: 21.474836,
            plan_cache_hits: 0,
            plan_cache_misses: 1,
            plan_cache_warm_starts: 0,
            solver_wall_ms: 8.062,
            synth_full_evals: 13,
            synth_delta_evals: 360,
            synth_chains: 1,
            hierarchical: false,
            sim_wall_ms: 0.0,
            engine_events_per_sec: 0.0,
        }
    }

    #[test]
    fn json_is_one_line_with_fixed_fields() {
        let j = sample().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"system\":\"AdapCC\""));
        assert!(j.contains("\"tensor_mib\":256"));
        assert!(j.contains("\"comm_time_ms\":12.500000"));
        assert!(j.contains("\"plan_cache_hits\":0"));
        assert!(j.contains("\"plan_cache_misses\":1"));
        assert!(j.contains("\"solver_wall_ms\":8.062"));
        assert!(j.contains("\"synth_full_evals\":13"));
        assert!(j.contains("\"synth_delta_evals\":360"));
        assert!(j.contains("\"synth_chains\":1"));
        assert!(j.contains("\"hierarchical\":false"));
        assert!(j.contains("\"sim_wall_ms\":0.000"));
        assert!(j.contains("\"engine_events_per_sec\":0.0"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn engine_record_is_one_line_json() {
        let r = EngineBenchRecord {
            servers: "a100:128".into(),
            gpus: 512,
            waves: 4,
            transfers: 512,
            events: 4096,
            sim_ms: 1.25,
            wall_ms: 97.5,
            events_per_sec: 42010.3,
        };
        let j = r.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"servers\":\"a100:128\""));
        assert!(j.contains("\"gpus\":512"));
        assert!(j.contains("\"events\":4096"));
        assert!(j.contains("\"events_per_sec\":42010.3"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn identical_records_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut r = sample();
        r.servers = "a\"b\\c".into();
        assert!(r.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join("adapcc_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.jsonl");
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert_eq!(line, sample().to_json());
        }
        let _ = std::fs::remove_file(&path);
    }
}
