//! Machine-readable benchmark records: one JSON object per line,
//! appended to a shared file so successive `adapcc-sim --bench-append`
//! runs accumulate a comparable result trajectory (the seed of the
//! `BENCH_*.json` history).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One benchmark run, flattened for line-oriented appending.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// System under test (`AdapCC`, `NCCL`, ...).
    pub system: String,
    /// Collective primitive name.
    pub primitive: String,
    /// Server fleet spec, e.g. `a100:2`.
    pub servers: String,
    /// Per-rank tensor size in MiB.
    pub tensor_mib: u64,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Completion time in simulated milliseconds.
    pub comm_time_ms: f64,
    /// The paper's algorithm bandwidth in GB/s.
    pub algo_bw_gbytes: f64,
    /// Plan-cache exact hits during the run (all zero when the run had
    /// no `--plan-cache`).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (cold solves).
    pub plan_cache_misses: u64,
    /// Plan-cache warm-started solves.
    pub plan_cache_warm_starts: u64,
    /// Host wall-clock milliseconds of one cold AdapCC synthesis at
    /// the run's solver settings (0 for baseline systems). Real time,
    /// never part of the simulated timeline.
    pub solver_wall_ms: f64,
    /// `synth.full_evals` counter from that synthesis.
    pub synth_full_evals: u64,
    /// `synth.delta_evals` counter from that synthesis.
    pub synth_delta_evals: u64,
    /// `synth.chains` counter (annealing chains actually used).
    pub synth_chains: u64,
}

impl BenchRecord {
    /// Renders the record as a single-line JSON object (no trailing
    /// newline). Field order is fixed, so identical runs serialize
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"system\":\"{}\",\"primitive\":\"{}\",\"servers\":\"{}\",\
             \"tensor_mib\":{},\"parallelism\":{},\"comm_time_ms\":{:.6},\
             \"algo_bw_gbytes\":{:.6},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"plan_cache_warm_starts\":{},\
             \"solver_wall_ms\":{:.3},\"synth_full_evals\":{},\
             \"synth_delta_evals\":{},\"synth_chains\":{}}}",
            escape(&self.system),
            escape(&self.primitive),
            escape(&self.servers),
            self.tensor_mib,
            self.parallelism,
            self.comm_time_ms,
            self.algo_bw_gbytes,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_warm_starts,
            self.solver_wall_ms,
            self.synth_full_evals,
            self.synth_delta_evals,
            self.synth_chains,
        );
        s
    }

    /// Appends the record (plus newline) to `path`, creating the file
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            system: "AdapCC".into(),
            primitive: "allreduce".into(),
            servers: "a100:2".into(),
            tensor_mib: 256,
            parallelism: 4,
            comm_time_ms: 12.5,
            algo_bw_gbytes: 21.474836,
            plan_cache_hits: 0,
            plan_cache_misses: 1,
            plan_cache_warm_starts: 0,
            solver_wall_ms: 8.062,
            synth_full_evals: 13,
            synth_delta_evals: 360,
            synth_chains: 1,
        }
    }

    #[test]
    fn json_is_one_line_with_fixed_fields() {
        let j = sample().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"system\":\"AdapCC\""));
        assert!(j.contains("\"tensor_mib\":256"));
        assert!(j.contains("\"comm_time_ms\":12.500000"));
        assert!(j.contains("\"plan_cache_hits\":0"));
        assert!(j.contains("\"plan_cache_misses\":1"));
        assert!(j.contains("\"solver_wall_ms\":8.062"));
        assert!(j.contains("\"synth_full_evals\":13"));
        assert!(j.contains("\"synth_delta_evals\":360"));
        assert!(j.contains("\"synth_chains\":1"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn identical_records_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut r = sample();
        r.servers = "a\"b\\c".into();
        assert!(r.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join("adapcc_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.jsonl");
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert_eq!(line, sample().to_json());
        }
        let _ = std::fs::remove_file(&path);
    }
}
