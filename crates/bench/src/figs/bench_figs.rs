//! Figures 11-13: algorithm bandwidth of Reduce, AllReduce and
//! AlltoAll across GPU configurations and systems, and Fig. 19(a):
//! the parallelization-degree sweep.

use std::collections::BTreeMap;

use adapcc_baselines::runner::{Runner, System};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;

use crate::harness::{benchmark_cases, geomean, header, profiled, row};

/// Tensor size of the paper's benchmarks (256 MB float).
fn bench_tensor() -> ByteSize {
    ByteSize::from_mib(256)
}

/// One collective-bandwidth figure: per case, Algo.bw for each system.
pub fn algo_bandwidth_figure(primitive: Primitive, include_blink: bool) -> Vec<String> {
    let mut out = Vec::new();
    let systems: Vec<System> = System::all()
        .into_iter()
        .filter(|s| include_blink || *s != System::Blink)
        .collect();
    let names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
    out.push(header("GPUs in the collective", &names));
    let mut ratios: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for case in benchmark_cases() {
        let (topo, profile) = profiled(&case.cluster, 1);
        let runner = Runner::new(&case.cluster, &topo, &profile);
        let mut values = Vec::new();
        let mut by_system = BTreeMap::new();
        for sys in &systems {
            let r = runner.run(
                *sys,
                primitive,
                bench_tensor(),
                &case.participants,
                &Default::default(),
            );
            values.push(r.algo_bw_gbytes);
            by_system.insert(sys.name(), r.algo_bw_gbytes);
        }
        for sys in &systems {
            if *sys != System::AdapCc {
                ratios
                    .entry(sys.name())
                    .or_default()
                    .push(by_system["AdapCC"] / by_system[sys.name()]);
            }
        }
        out.push(row(&case.label, &values));
    }
    out.push(String::new());
    for (name, r) in &ratios {
        out.push(format!(
            "AdapCC speed-up over {name}: {:.2}x-{:.2}x ({:.2}x geo-mean)",
            r.iter().copied().fold(f64::INFINITY, f64::min),
            r.iter().copied().fold(0.0, f64::max),
            geomean(r)
        ));
    }
    out
}

/// Fig. 11: Reduce algorithm bandwidth (GB/s).
pub fn fig11() -> Vec<String> {
    let mut out = vec!["Fig. 11 — Reduce Algo.bw (GB/s), 256 MB float".into()];
    out.extend(algo_bandwidth_figure(Primitive::Reduce, true));
    out
}

/// Fig. 12: AllReduce algorithm bandwidth (GB/s).
pub fn fig12() -> Vec<String> {
    let mut out = vec!["Fig. 12 — AllReduce Algo.bw (GB/s), 256 MB float".into()];
    out.extend(algo_bandwidth_figure(Primitive::AllReduce, true));
    out
}

/// Fig. 13: AlltoAll algorithm bandwidth (no Blink: it does not
/// support multi-server AlltoAll).
pub fn fig13() -> Vec<String> {
    let mut out = vec!["Fig. 13 — AlltoAll Algo.bw (GB/s), 256 MB float".into()];
    out.extend(algo_bandwidth_figure(Primitive::AllToAll, false));
    out
}

/// Fig. 19(a): AdapCC speed-up over NCCL versus the number of parallel
/// sub-collectives `M` (VGG16-sized AllReduce). Run on the TCP
/// testbed: parallel sub-collectives pay off where per-stream limits
/// bind, which on RDMA they do not (a single queue pair saturates the
/// NIC — the RDMA sweep is flat in this model).
pub fn fig19a() -> Vec<String> {
    let mut out = vec![
        "Fig. 19(a) — communication speed-up over NCCL vs parallelization degree M (TCP testbed)"
            .into(),
    ];
    let case = {
        use adapcc_simnet::cluster::ClusterBuilder;
        use adapcc_simnet::hardware::InstanceSpec;
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server().with_tcp(), 4);
        b.add_instances(InstanceSpec::v100_server().with_tcp(), 2);
        let cluster = b.build();
        let participants = (0..cluster.gpu_count())
            .map(adapcc_simnet::cluster::Rank)
            .collect();
        crate::harness::GpuCase {
            label: "A100:(4,4,4,4) V100:(4,4) TCP".into(),
            cluster,
            participants,
        }
    };
    let (topo, profile) = profiled(&case.cluster, 1);
    let tensor = ByteSize::from_mib(528); // VGG16 gradients
    let base = Runner::new(&case.cluster, &topo, &profile);
    let nccl = base
        .run(
            System::Nccl,
            Primitive::AllReduce,
            tensor,
            &case.participants,
            &Default::default(),
        )
        .comm_time
        .as_secs();
    out.push(header("M", &["speed-up"]));
    for m in [1usize, 2, 4, 8] {
        let runner = base.clone().with_parallelism(m);
        let ours = runner
            .run(
                System::AdapCc,
                Primitive::AllReduce,
                tensor,
                &case.participants,
                &Default::default(),
            )
            .comm_time
            .as_secs();
        out.push(row(&format!("M = {m}"), &[nccl / ours]));
    }
    out
}
