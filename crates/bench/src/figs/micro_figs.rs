//! Micro-benchmarks: Fig. 19(b) accuracy, Fig. 19(c) graph
//! reconstruction cost, Fig. 19(d) relay-control RPC latency, and the
//! DESIGN.md ablations.

use adapcc::{nccl_restart_cost, AdapCC, InitOptions};
use adapcc_plancache::{PlanCacheConfig, PlanCacheStats};
use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::cost::CostModel;
use adapcc_synth::solver::{SynthConfig, SynthRequest, Synthesizer};
use adapcc_synth::Primitive;
use adapcc_train::accuracy::{run_accuracy_experiment, AggregationMode};
use adapcc_train::trainer::{train, Backend, TrainConfig};
use adapcc_train::workload::DnnModel;

use crate::harness::{header, percentile, profiled, row};

/// Fig. 19(b): top-1 accuracy per epoch for the four aggregation
/// modes, trained with real gradients through real collectives.
pub fn fig19b() -> Vec<String> {
    let mut out = vec![
        "Fig. 19(b) — top-1 accuracy per epoch (real data-parallel MLP, real collectives)".into(),
    ];
    let cluster = Cluster::homogeneous_a100(1);
    let epochs = 6;
    let modes = [
        AggregationMode::RelaySync,
        AggregationMode::FullSync,
        AggregationMode::NcclGraphOrder,
        AggregationMode::RelayAsync,
    ];
    let epoch_labels: Vec<String> = (1..=epochs).map(|e| format!("ep{e}")).collect();
    let cols: Vec<&str> = epoch_labels.iter().map(String::as_str).collect();
    out.push(header("mode", &cols));
    for mode in modes {
        let curve = run_accuracy_experiment(&cluster, mode, epochs, 7);
        let values: Vec<f64> = curve.per_epoch.iter().map(|a| a * 100.0).collect();
        out.push(row(mode.name(), &values));
    }
    out.push(String::new());
    out.push(
        "paper: the synchronous variants converge identically; Relay Async converges worse".into(),
    );
    out
}

/// Fig. 19(c): in-place graph reconstruction cost versus the NCCL
/// restart path, across job scales — with the plan cache's warm-started
/// re-synthesis shown against the cache-disabled cold solve.
pub fn fig19c() -> Vec<String> {
    let mut out = vec!["Fig. 19(c) — graph reconstruction cost vs job scale".into()];
    out.push(header(
        "scale",
        &[
            "profile (s)",
            "solve cold",
            "solve warm",
            "setup",
            "AdapCC",
            "NCCL",
            "saved %",
        ],
    ));
    let tensor = DnnModel::Vgg16.tensor_size();
    for servers in [2usize, 4, 6, 8, 12] {
        let cluster = Cluster::homogeneous_a100(servers);
        let (cold, _) = fig19c_reconstruct(&cluster, tensor, PlanCacheConfig::disabled());
        let (warm, stats) = fig19c_reconstruct(&cluster, tensor, PlanCacheConfig::default());
        assert!(
            stats.warm_starts > 0,
            "a drifted profile over an unchanged fleet should warm-start"
        );
        let restart = nccl_restart_cost(tensor, cluster.gpu_count());
        let ours = warm.total().as_secs();
        let theirs = restart.total().as_secs();
        out.push(row(
            &format!("{servers} servers / {} GPUs", cluster.gpu_count()),
            &[
                warm.profiling.as_secs(),
                cold.solving.as_secs(),
                warm.solving.as_secs(),
                warm.setup.as_secs(),
                ours,
                theirs,
                (1.0 - ours / theirs) * 100.0,
            ],
        ));
    }
    out.push(format!(
        "plan cache: warm-started re-synthesis bills {:.0}x less solver time than a cold solve",
        1.0 / adapcc::reconstruct::WARM_SOLVE_FRACTION
    ));
    out.push("paper: 74-91% saved vs restart; topology detection constant (~1.2 s)".into());
    out
}

/// One Fig. 19(c) data point: synthesize, degrade a NIC, re-profile,
/// and return the reconstruction report plus cache counters.
fn fig19c_reconstruct(
    cluster: &Cluster,
    tensor: ByteSize,
    plan_cache: PlanCacheConfig,
) -> (adapcc::reconstruct::ReconstructReport, PlanCacheStats) {
    let mut cc = AdapCC::init(
        cluster,
        InitOptions {
            synth: SynthConfig {
                anneal_iters: 120,
                ..Default::default()
            },
            plan_cache,
            ..Default::default()
        },
    );
    cc.setup();
    let _ = cc.strategy_for(Primitive::AllReduce, tensor);
    // Degrade one NIC so re-synthesis actually happens.
    cc.set_fabric_factors(vec![(cluster.nic_egress_link(InstanceId(0)), 0.5)]);
    let recon = cc.reprofile();
    assert!(recon.changed, "reconstruction should trigger");
    (recon, cc.plan_cache_stats())
}

/// Fig. 19(d): CDF of the relay-negotiation RPC latency over 1000
/// iterations on the six-server testbed.
pub fn fig19d() -> Vec<String> {
    let mut out = vec![
        "Fig. 19(d) — relay-control RPC latency CDF (1000 VGG16 iterations, 6 servers)".into(),
    ];
    let cluster = Cluster::paper_testbed();
    let (topo, profile) = profiled(&cluster, 1);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let tensor = DnnModel::Vgg16.tensor_size();
    let strategy = Synthesizer::new(&topo, &profile)
        .with_config(SynthConfig {
            anneal_iters: 24,
            ..Default::default()
        })
        .synthesize(&SynthRequest::new(
            Primitive::AllReduce,
            tensor,
            4,
            ranks.clone(),
        ));
    let root = strategy.subs[0].root.expect("rooted");
    let est = adapcc::BuyEstimate::new(&topo, &profile, &strategy, tensor);
    // Drive 1000 coordinator decisions with realistic ready times; the
    // RPC metric is independent of the collective execution itself.
    let mut coordinator = adapcc::Coordinator::new(4);
    let mut stragglers = adapcc_train::straggler::StragglerModel::new(4);
    for _ in 0..1000 {
        let ready = stragglers.ready_times(&cluster, DnnModel::Vgg16, 128);
        let _ = coordinator.decide(&ranks, root, &ready, &est);
    }
    let delays = &coordinator.stats().rpc_delays_ms;
    out.push(header("percentile", &["latency (ms)"]));
    for p in [10.0, 50.0, 90.0, 99.0] {
        out.push(row(&format!("p{p:.0}"), &[percentile(delays, p)]));
    }
    let p90 = percentile(delays, 90.0);
    out.push(format!(
        "\np90 = {p90:.2} ms (paper: 90% of negotiations under 1.5 ms)"
    ));
    out
}

/// DESIGN.md ablations: annealing on/off, cost-model fidelity, and
/// relay policy versus always-wait.
pub fn ablation() -> Vec<String> {
    let mut out = vec!["Ablations (DESIGN.md)".into()];

    // (1) Candidate generators alone vs annealed search.
    let cluster = Cluster::paper_testbed();
    let (topo, profile) = profiled(&cluster, 1);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    let tensor = ByteSize::from_mib(256);
    let model = CostModel::new(&topo, &profile);
    let req = SynthRequest::new(Primitive::AllReduce, tensor, 4, ranks.clone());
    let quick = Synthesizer::new(&topo, &profile)
        .with_config(SynthConfig {
            anneal_iters: 0,
            ..Default::default()
        })
        .synthesize(&req);
    let full = Synthesizer::new(&topo, &profile).synthesize(&req);
    let cq = model.evaluate(&quick, tensor).completion.as_secs();
    let cf = model.evaluate(&full, tensor).completion.as_secs();
    out.push(format!(
        "\n(1) synthesizer search: generators-only {:.1} ms -> annealed {:.1} ms ({:.1}% better)",
        cq * 1e3,
        cf * 1e3,
        (1.0 - cf / cq) * 100.0
    ));

    // (2) Cost-model fidelity: predicted vs executed completion.
    let exec = adapcc::executor::Executor::new(&cluster, &topo);
    let measured = exec
        .execute(&[adapcc::executor::ExecutionRequest::timing(&full, tensor)])
        .finish
        .as_secs();
    out.push(format!(
        "(2) cost model fidelity: predicted {:.1} ms vs executed {:.1} ms ({:+.0}% error)",
        cf * 1e3,
        measured * 1e3,
        (cf / measured - 1.0) * 100.0
    ));

    // (3) Relay policy vs always-wait under heavy interference.
    let homo = Cluster::homogeneous_a100(4);
    let adaptive = train(
        &homo,
        &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, 12).with_interference(400.0),
    );
    let waiting = train(
        &homo,
        &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcWaitAll, 12).with_interference(400.0),
    );
    out.push(format!(
        "(3) relay policy at 400% interference: ski-rental {:.1} ms vs always-wait {:.1} ms per iteration",
        adaptive.mean_comm_secs * 1e3,
        waiting.mean_comm_secs * 1e3
    ));
    out
}
