//! One module per group of reproduced figures.

pub mod bench_figs;
pub mod env_figs;
pub mod micro_figs;
pub mod train_figs;
