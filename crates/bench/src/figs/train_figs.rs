//! Training-performance figures: Fig. 14 (stable environment), Fig. 15
//! (relay selection), Figs. 16-17 (throughput vs batch size),
//! Fig. 18(a) (volatile network) and Fig. 18(b) (serving interference).

use adapcc::{AdapCC, InitOptions};
use adapcc_baselines::runner::{Runner, System};
use adapcc_plancache::{PlanCacheConfig, PlanCacheStats};
use adapcc_simnet::cluster::{Cluster, ClusterBuilder, InstanceId, LinkId, Rank};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::trace::CloudTrace;
use adapcc_train::straggler::StragglerModel;
use adapcc_train::trainer::{train, Backend, TrainConfig};
use adapcc_train::workload::DnnModel;

use crate::harness::{header, profiled, row};

fn tcp(spec: InstanceSpec) -> InstanceSpec {
    spec.with_tcp()
}

fn homo(transport_tcp: bool) -> Cluster {
    let mut b = ClusterBuilder::new();
    let spec = if transport_tcp {
        tcp(InstanceSpec::a100_server())
    } else {
        InstanceSpec::a100_server()
    };
    b.add_instances(spec, 4);
    b.build()
}

fn heter(transport_tcp: bool) -> Cluster {
    let mut b = ClusterBuilder::new();
    let (a, v) = if transport_tcp {
        (
            tcp(InstanceSpec::a100_server()),
            tcp(InstanceSpec::v100_server()),
        )
    } else {
        (InstanceSpec::a100_server(), InstanceSpec::v100_server())
    };
    b.add_instances(a, 2);
    b.add_instances(v, 2);
    b.build()
}

/// Fig. 14: per-iteration communication time in the stable
/// environment, per model x {Homo, Heter} x {RDMA, TCP}.
pub fn fig14() -> Vec<String> {
    let mut out =
        vec!["Fig. 14 — per-iteration communication time (ms), stable environment".into()];
    let iters = 8;
    out.push(header("setting", &["AdapCC", "NCCL", "MSCCL", "speedup"]));
    for model in DnnModel::all() {
        for (env, transport_tcp) in [("Homo/RDMA", false), ("Homo/TCP", true)] {
            let cluster = homo(transport_tcp);
            out.push(fig14_row(&cluster, model, env, iters));
        }
        for (env, transport_tcp) in [("Heter/RDMA", false), ("Heter/TCP", true)] {
            let cluster = heter(transport_tcp);
            out.push(fig14_row(&cluster, model, env, iters));
        }
    }
    out.push(String::new());
    out.push("paper: 1.12x-1.30x over NCCL in Homo, up to 2x in Heter (TCP worst for NCCL)".into());
    out
}

fn fig14_row(cluster: &Cluster, model: DnnModel, env: &str, iters: usize) -> String {
    let ours = train(
        cluster,
        &TrainConfig::new(model, Backend::AdapCcAdaptive, iters),
    );
    let nccl = train(
        cluster,
        &TrainConfig::new(model, Backend::Baseline(System::Nccl), iters),
    );
    let msccl = train(
        cluster,
        &TrainConfig::new(model, Backend::Baseline(System::Msccl), iters),
    );
    row(
        &format!("{model} {env}"),
        &[
            ours.mean_comm_secs * 1e3,
            nccl.mean_comm_secs * 1e3,
            msccl.mean_comm_secs * 1e3,
            nccl.mean_comm_secs / ours.mean_comm_secs,
        ],
    )
}

/// Fig. 15: probability of each worker being chosen as a relay.
pub fn fig15() -> Vec<String> {
    let mut out = vec!["Fig. 15 — relay selection probability per worker".into()];
    let iters = 40;
    for (label, cluster) in [
        (
            "heterogeneous (ranks 8..16 are V100)",
            Cluster::heterogeneous_2a100_2v100(),
        ),
        ("homogeneous", Cluster::homogeneous_a100(4)),
    ] {
        let report = train(
            &cluster,
            &TrainConfig::new(DnnModel::Gpt2, Backend::AdapCcAdaptive, iters).with_seed(3),
        );
        out.push(format!("\n{label}:"));
        let partials = report.iterations.iter().filter(|i| i.partial).count();
        out.push(format!("  partial collectives: {partials}/{iters}"));
        for (rank, p) in &report.relay_probability {
            if *p > 0.0 {
                out.push(format!("  rank {rank:>2}: {:>5.1}%", p * 100.0));
            }
        }
    }
    out
}

/// Figs. 16 & 17: training throughput versus batch size.
pub fn fig16_17(model: DnnModel, batches: &[usize]) -> Vec<String> {
    let fig = if model == DnnModel::Gpt2 {
        "Fig. 16"
    } else {
        "Fig. 17"
    };
    let mut out = vec![format!(
        "{fig} — {model} training throughput (samples/s) vs per-GPU batch size, heterogeneous cluster"
    )];
    let cluster = Cluster::heterogeneous_2a100_2v100();
    out.push(header("batch", &["AdapCC", "NCCL", "improvement"]));
    for &batch in batches {
        let ours = train(
            &cluster,
            &TrainConfig::new(model, Backend::AdapCcAdaptive, 8).with_batch(batch),
        );
        let nccl = train(
            &cluster,
            &TrainConfig::new(model, Backend::Baseline(System::Nccl), 8).with_batch(batch),
        );
        out.push(row(
            &format!("batch {batch}"),
            &[
                ours.throughput,
                nccl.throughput,
                (ours.throughput / nccl.throughput - 1.0) * 100.0,
            ],
        ));
    }
    out.push("(improvement column in %; paper: up to 31% for GPT-2, 20% for ViT)".into());
    out
}

/// All NIC port links of a cluster (the links the `tc` shaping hits).
fn nic_links(cluster: &Cluster) -> Vec<LinkId> {
    (0..cluster.instance_count())
        .flat_map(|i| {
            [
                cluster.nic_egress_link(InstanceId(i)),
                cluster.nic_ingress_link(InstanceId(i)),
            ]
        })
        .collect()
}

/// Fig. 18(a): makespan of 10^4 VGG16 iterations under trace-driven
/// volatile bandwidth, versus the amplification factor x.
pub fn fig18a() -> Vec<String> {
    let mut out =
        vec!["Fig. 18(a) — makespan of 10^4 VGG16 iterations under volatile bandwidth".into()];
    let total_iters = 10_000usize;
    let profile_period = 500usize;
    out.push(header(
        "amplification x",
        &["AdapCC (s)", "NCCL (s)", "reduction %"],
    ));
    let mut warm_at_max = None;
    for x in [0.0, 0.2, 0.4, 0.6] {
        let adapcc = volatile_makespan(
            true,
            x,
            total_iters,
            profile_period,
            PlanCacheConfig::default(),
        );
        let nccl = volatile_makespan(
            false,
            x,
            total_iters,
            profile_period,
            PlanCacheConfig::disabled(),
        );
        out.push(row(
            &format!("x = {x:.1}"),
            &[
                adapcc.makespan,
                nccl.makespan,
                (1.0 - adapcc.makespan / nccl.makespan) * 100.0,
            ],
        ));
        warm_at_max = Some(adapcc);
    }
    // Reconstruction-cost breakdown at the highest volatility: the same
    // trace replayed without the plan cache pays the cold solver on
    // every drift, with it the shape-stable fleet warm-starts instead.
    let cold = volatile_makespan(
        true,
        0.6,
        total_iters,
        profile_period,
        PlanCacheConfig::disabled(),
    );
    let warm = warm_at_max.expect("loop ran");
    let stats = warm.cache.unwrap_or_default();
    out.push(format!(
        "reconstruction cost at x = 0.6: cache-cold {:.1} s -> cache-warm {:.1} s \
         ({} warm start(s), {} exact hit(s), {:.1} s modeled solver time saved)",
        cold.recon_secs,
        warm.recon_secs,
        stats.warm_starts,
        stats.hits,
        stats.saved.as_secs()
    ));
    out.push("paper: the makespan gap over NCCL widens as volatility grows".into());
    out
}

/// One `volatile_makespan` replay: the makespan itself, the portion
/// spent on reconstruction (profiling + solving + setup), and the
/// session's plan-cache counters (adaptive runs only).
struct VolatileRun {
    makespan: f64,
    recon_secs: f64,
    cache: Option<PlanCacheStats>,
}

/// Stepwise makespan estimation: the trace advances in windows; each
/// window's per-iteration time is measured once and multiplied by the
/// iterations that fit. AdapCC re-profiles every `profile_period`
/// iterations (cost charged) and re-synthesizes when links changed.
fn volatile_makespan(
    adaptive: bool,
    x: f64,
    total_iters: usize,
    profile_period: usize,
    plan_cache: PlanCacheConfig,
) -> VolatileRun {
    let cluster = Cluster::homogeneous_a100(4);
    let model = DnnModel::Vgg16;
    let tensor = model.tensor_size();
    let links = nic_links(&cluster);
    // Per-instance traces: same process, independent phases.
    let traces: Vec<CloudTrace> = (0..cluster.instance_count())
        .map(|i| CloudTrace::synthesize(100 + i as u64, 8.0 * 3600.0, 60.0).amplified(x))
        .collect();
    let mut stragglers = StragglerModel::new(9);

    let mut session = adaptive.then(|| {
        let mut cc = AdapCC::init(
            &cluster,
            InitOptions {
                plan_cache,
                ..Default::default()
            },
        );
        cc.setup();
        cc
    });
    let baseline = (!adaptive).then(|| profiled(&cluster, 1));

    let mut makespan = 0.0f64;
    let mut recon_secs = 0.0f64;
    let mut done = 0usize;
    while done < total_iters {
        // Sample the trace at the current simulated wall clock.
        let now = SimTime::from_secs(makespan);
        let factors: Vec<(LinkId, f64)> = links
            .iter()
            .enumerate()
            .map(|(k, l)| (*l, traces[k / 2].sample(now).bandwidth_factor))
            .collect();
        // One profiling window of iterations under these factors.
        let ready = stragglers.ready_times(&cluster, model, model.default_batch());
        let iter_secs = match (&mut session, &baseline) {
            (Some(cc), _) => {
                cc.set_fabric_factors(factors.clone());
                let recon = cc.reprofile();
                recon_secs += recon.total().as_secs();
                makespan += recon.total().as_secs();
                cc.allreduce_adaptive(tensor, &ready, None)
                    .expect("healthy fabric")
                    .finish
                    .as_secs()
            }
            (None, Some((topo, profile))) => {
                let runner = Runner::new(&cluster, topo, profile).with_capacity_factors(&factors);
                runner
                    .run(
                        System::Nccl,
                        adapcc_synth::Primitive::AllReduce,
                        tensor,
                        &(0..cluster.gpu_count()).map(Rank).collect::<Vec<_>>(),
                        &ready,
                    )
                    .finish
                    .as_secs()
            }
            _ => unreachable!(),
        };
        let window = profile_period.min(total_iters - done);
        makespan += iter_secs * window as f64;
        done += window;
    }
    VolatileRun {
        makespan,
        recon_secs,
        cache: session.map(|cc| cc.plan_cache_stats()),
    }
}

/// Fig. 18(b): communication speed-up over NCCL versus the CPU
/// interference level of co-located online tasks.
pub fn fig18b() -> Vec<String> {
    let mut out =
        vec!["Fig. 18(b) — communication speed-up over NCCL vs CPU interference level".into()];
    let cluster = Cluster::homogeneous_a100(4);
    let iters = 12;
    out.push(header(
        "interference",
        &["AdapCC (ms)", "NCCL (ms)", "speed-up"],
    ));
    for level in [0.0, 100.0, 200.0, 300.0, 400.0] {
        let ours = train(
            &cluster,
            &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, iters)
                .with_interference(level),
        );
        let nccl = train(
            &cluster,
            &TrainConfig::new(DnnModel::Vgg16, Backend::Baseline(System::Nccl), iters)
                .with_interference(level),
        );
        out.push(row(
            &format!("{level:.0}%"),
            &[
                ours.mean_comm_secs * 1e3,
                nccl.mean_comm_secs * 1e3,
                nccl.mean_comm_secs / ours.mean_comm_secs,
            ],
        ));
    }
    out.push("paper: up to 1.49x faster communication at high interference".into());
    out
}
