//! Fig. 1 (cloud network variability) and Fig. 3(b) (wait-time ratio
//! CDF).

use adapcc_simnet::cluster::Cluster;
use adapcc_simnet::time::SimTime;
use adapcc_simnet::trace::CloudTrace;
use adapcc_train::trainer::{train, Backend, TrainConfig};
use adapcc_train::workload::DnnModel;

use crate::harness::{header, percentile, row};

/// Fig. 1: bandwidth/latency of a cloud instance pair over six hours.
pub fn fig1() -> Vec<String> {
    let mut out =
        vec!["Fig. 1 — measured network performance between two cloud instances (6 h)".into()];
    let trace = CloudTrace::synthesize(42, 6.0 * 3600.0, 60.0);
    out.push(header("time", &["bw factor", "lat factor"]));
    for minutes in (0..=360).step_by(45) {
        let p = trace.sample(SimTime::from_secs(minutes as f64 * 60.0));
        out.push(row(
            &format!("t = {minutes:>3} min"),
            &[p.bandwidth_factor, p.latency_factor],
        ));
    }
    let stats = trace.stats();
    out.push(String::new());
    out.push(format!(
        "worst bandwidth degradation: {:.0}% (paper: 34%); worst latency degradation: {:.0}% (paper: 17%)",
        stats.worst_bandwidth_degradation * 100.0,
        stats.worst_latency_degradation * 100.0
    ));
    out
}

/// Fig. 3(b): CDF of the wait-time ratio in GPT-2 training,
/// heterogeneous versus homogeneous clusters.
pub fn fig3b() -> Vec<String> {
    let mut out = vec![
        "Fig. 3(b) — CDF of wait-time ratio, GPT-2 (batch 16), AllReduce per iteration".into(),
    ];
    let iters = 40;
    let settings = [
        (
            "heterogeneous (2xA100 + 2xV100)",
            Cluster::heterogeneous_2a100_2v100(),
        ),
        ("homogeneous (4xA100)", Cluster::homogeneous_a100(4)),
    ];
    let percentiles = [10.0, 25.0, 50.0, 75.0, 90.0];
    let labels: Vec<String> = percentiles.iter().map(|p| format!("p{p:.0}")).collect();
    let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
    out.push(header("setting", &cols));
    for (label, cluster) in settings {
        let report = train(
            &cluster,
            &TrainConfig::new(DnnModel::Gpt2, Backend::AdapCcWaitAll, iters),
        );
        let ratios: Vec<f64> = report.iterations.iter().map(|i| i.wait_ratio).collect();
        let values: Vec<f64> = percentiles
            .iter()
            .map(|p| percentile(&ratios, *p))
            .collect();
        out.push(row(label, &values));
    }
    out.push(String::new());
    out.push("paper: hetero median > 0.23, homo median > 0.10".into());
    out
}
