//! Synthetic engine-throughput benchmark ("storm"): floods the
//! fluid-flow simulator with contending cross-server transfers and
//! reports processed events per wall-clock second — the
//! `BENCH_engine.json` metric. The workload is pure engine stress (no
//! synthesis, no executor), so it isolates the event-queue,
//! flow-aggregation and allocator paths that the cluster-scale rewrite
//! targets.
//!
//! Two storm shapes: synchronized waves (`Wave`, the engine's batch
//! best case — one filling per wave) and staggered arrivals (`Churn`,
//! the allocator's worst case — every arrival and completion lands at
//! its own instant and pays its own refill). Both run under either
//! allocator (`AllocMode`), so the bench quantifies exactly what the
//! incremental frontier buys.

use std::time::Instant;

use adapcc::executor::INCREMENTAL_INSTANCE_THRESHOLD;
use adapcc_simnet::cluster::{Cluster, InstanceId};
use adapcc_simnet::engine::{NetSim, SimEvent};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;

/// Workload shape for [`engine_storm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormMode {
    /// Synchronized waves: all `n` transfers of a wave arrive at one
    /// instant and the wave drains fully before the next.
    Wave,
    /// Staggered churn: arrivals are spread in time so completions and
    /// arrivals interleave — no two events share an instant, every one
    /// pays its own allocator refill.
    Churn,
}

impl StormMode {
    /// CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            StormMode::Wave => "wave",
            StormMode::Churn => "churn",
        }
    }
}

/// Allocator selection for [`engine_storm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Fleet-wide progressive filling on every event (legacy engine).
    Exact,
    /// Dirty-frontier incremental allocator.
    Incremental,
    /// The executor's policy: incremental at or above
    /// [`INCREMENTAL_INSTANCE_THRESHOLD`] instances, exact below.
    Auto,
}

impl AllocMode {
    /// CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AllocMode::Exact => "exact",
            AllocMode::Incremental => "incremental",
            AllocMode::Auto => "auto",
        }
    }

    /// Resolves `Auto` against a concrete fleet size.
    pub fn incremental_for(&self, instances: usize) -> bool {
        match self {
            AllocMode::Exact => false,
            AllocMode::Incremental => true,
            AllocMode::Auto => instances >= INCREMENTAL_INSTANCE_THRESHOLD,
        }
    }
}

/// Result of one [`engine_storm`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStormReport {
    /// Transfers submitted across all waves.
    pub transfers: u64,
    /// Internal engine events processed.
    pub events: u64,
    /// Simulated completion time in milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds for the whole storm (a property of
    /// the machine, never of the simulated timeline).
    pub wall_ms: f64,
    /// Filling passes the allocator ran.
    pub fillings: u64,
    /// Total flows touched by those fillings — the allocator's real
    /// work metric (`O(frontier)`, not `O(live)`, when incremental).
    pub frontier_flows: u64,
    /// Whether the incremental allocator was active.
    pub incremental: bool,
}

impl EngineStormReport {
    /// The headline throughput: engine events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Timer tokens in churn mode encode the pending submission index.
const CHURN_TIMER_BASE: u64 = 1 << 40;

/// Runs `waves` rounds of an all-instances shifting-ring pattern: in
/// round `w`, every instance sends one transfer to the instance
/// `1 + (w mod (n-1))` positions ahead. In [`StormMode::Wave`] the
/// whole round arrives at one instant and drains before the next —
/// all `n` NIC pairs contend at once and the engine's batch path
/// (one filling per wave) carries the arrivals. In
/// [`StormMode::Churn`] every transfer instead arrives on its own
/// staggered timer with a size jittered from 64 to 448 KiB, so
/// arrivals and completions interleave one event at a time — the
/// allocator refills on every single event.
///
/// # Panics
///
/// Panics if the cluster has fewer than two instances.
pub fn engine_storm(
    cluster: &Cluster,
    waves: usize,
    mode: StormMode,
    alloc: AllocMode,
) -> EngineStormReport {
    let n = cluster.instance_count();
    assert!(n >= 2, "the storm needs at least two instances");
    let incremental = alloc.incremental_for(n);
    let mut sim = NetSim::new(cluster).with_incremental_allocator(incremental);
    let mut token = 0u64;
    let start = Instant::now();
    match mode {
        StormMode::Wave => {
            for w in 0..waves {
                let stride = 1 + w % (n - 1);
                for i in 0..n {
                    let path = cluster.net_path(InstanceId(i), InstanceId((i + stride) % n));
                    sim.submit_transfer(&path, ByteSize::from_kib(256), token);
                    token += 1;
                }
                while sim.step().is_some() {}
            }
        }
        StormMode::Churn => {
            // Pre-schedule one arrival timer per transfer, staggered so
            // drains (tens of microseconds at these sizes) overlap the
            // next arrivals instead of synchronizing with them.
            let total = (waves * n) as u64;
            for idx in 0..total {
                sim.schedule_timer(
                    SimDuration::from_micros(1.0 + idx as f64 * 1.3),
                    CHURN_TIMER_BASE + idx,
                );
            }
            while let Some(ev) = sim.step() {
                if let SimEvent::Timer { token: t, .. } = ev {
                    let idx = (t - CHURN_TIMER_BASE) as usize;
                    let (w, i) = (idx / n, idx % n);
                    let stride = 1 + w % (n - 1);
                    let path = cluster.net_path(InstanceId(i), InstanceId((i + stride) % n));
                    // Deterministic size jitter: 64..448 KiB, so no two
                    // co-resident flows drain in lockstep.
                    let kib = 64 + (idx as u64).wrapping_mul(2654435761) % 384;
                    sim.submit_transfer(&path, ByteSize::from_kib(kib), token);
                    token += 1;
                }
            }
        }
    }
    EngineStormReport {
        transfers: token,
        events: sim.events_processed(),
        sim_ms: sim.now().as_millis(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        fillings: sim.fillings(),
        frontier_flows: sim.frontier_flows(),
        incremental,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_completes_every_transfer() {
        let cluster = Cluster::homogeneous_a100(4);
        let r = engine_storm(&cluster, 3, StormMode::Wave, AllocMode::Exact);
        assert_eq!(r.transfers, 12);
        assert!(r.events >= r.transfers, "every transfer costs events");
        assert!(r.sim_ms > 0.0);
        assert!(r.events_per_sec() > 0.0);
        assert!(r.fillings > 0);
        assert!(!r.incremental);
    }

    #[test]
    fn storm_scales_to_podded_fleets() {
        // 32 servers > FLAT_FABRIC_MAX: the pattern crosses pod
        // boundaries and must still drain completely.
        let cluster = Cluster::homogeneous_a100(32);
        let r = engine_storm(&cluster, 2, StormMode::Wave, AllocMode::Exact);
        assert_eq!(r.transfers, 64);
        assert!(r.events >= r.transfers);
    }

    #[test]
    fn churn_storm_completes_every_transfer_in_both_modes() {
        let cluster = Cluster::homogeneous_a100(6);
        for alloc in [AllocMode::Exact, AllocMode::Incremental] {
            let r = engine_storm(&cluster, 2, StormMode::Churn, alloc);
            assert_eq!(r.transfers, 12, "alloc={alloc:?}");
            assert!(r.events >= 2 * r.transfers, "timer + completion each");
            assert!(r.fillings > 0);
        }
    }

    #[test]
    fn incremental_storm_touches_fewer_flows() {
        // The point of the frontier: on the wave storm the incremental
        // allocator's total touched-flow count must be far below the
        // exact engine's (which refills every live flow per event).
        let cluster = Cluster::homogeneous_a100(16);
        let exact = engine_storm(&cluster, 2, StormMode::Wave, AllocMode::Exact);
        let inc = engine_storm(&cluster, 2, StormMode::Wave, AllocMode::Incremental);
        assert_eq!(exact.transfers, inc.transfers);
        assert!(
            inc.frontier_flows * 2 <= exact.frontier_flows,
            "incremental {} vs exact {}",
            inc.frontier_flows,
            exact.frontier_flows
        );
        assert!(inc.incremental);
    }

    #[test]
    fn auto_mode_follows_the_executor_threshold() {
        assert!(!AllocMode::Auto.incremental_for(INCREMENTAL_INSTANCE_THRESHOLD - 1));
        assert!(AllocMode::Auto.incremental_for(INCREMENTAL_INSTANCE_THRESHOLD));
        assert!(AllocMode::Incremental.incremental_for(2));
        assert!(!AllocMode::Exact.incremental_for(1 << 20));
    }
}
