//! Synthetic engine-throughput benchmark ("storm"): floods the
//! fluid-flow simulator with waves of contending cross-server
//! transfers and reports processed events per wall-clock second — the
//! `BENCH_engine.json` metric. The workload is pure engine stress (no
//! synthesis, no executor), so it isolates the event-queue,
//! flow-aggregation and allocator paths that the cluster-scale rewrite
//! targets.

use std::time::Instant;

use adapcc_simnet::cluster::{Cluster, InstanceId};
use adapcc_simnet::engine::NetSim;
use adapcc_simnet::units::ByteSize;

/// Result of one [`engine_storm`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStormReport {
    /// Transfers submitted across all waves.
    pub transfers: u64,
    /// Internal engine events processed.
    pub events: u64,
    /// Simulated completion time in milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds for the whole storm (a property of
    /// the machine, never of the simulated timeline).
    pub wall_ms: f64,
}

impl EngineStormReport {
    /// The headline throughput: engine events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Runs `waves` rounds of an all-instances shifting-ring pattern: in
/// wave `w`, every instance sends one 256 KiB transfer to the instance
/// `1 + (w mod (n-1))` positions ahead, and the wave drains fully
/// before the next begins. Every wave therefore has all `n` NIC pairs
/// contending at once, and successive waves rotate the stride so pod
/// uplinks see both local and cross-pod load.
///
/// # Panics
///
/// Panics if the cluster has fewer than two instances.
pub fn engine_storm(cluster: &Cluster, waves: usize) -> EngineStormReport {
    let n = cluster.instance_count();
    assert!(n >= 2, "the storm needs at least two instances");
    let mut sim = NetSim::new(cluster);
    let mut token = 0u64;
    let start = Instant::now();
    for w in 0..waves {
        let stride = 1 + w % (n - 1);
        for i in 0..n {
            let path = cluster.net_path(InstanceId(i), InstanceId((i + stride) % n));
            sim.submit_transfer(&path, ByteSize::from_kib(256), token);
            token += 1;
        }
        while sim.step().is_some() {}
    }
    EngineStormReport {
        transfers: token,
        events: sim.events_processed(),
        sim_ms: sim.now().as_millis(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_completes_every_transfer() {
        let cluster = Cluster::homogeneous_a100(4);
        let r = engine_storm(&cluster, 3);
        assert_eq!(r.transfers, 12);
        assert!(r.events >= r.transfers, "every transfer costs events");
        assert!(r.sim_ms > 0.0);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn storm_scales_to_podded_fleets() {
        // 32 servers > FLAT_FABRIC_MAX: the pattern crosses pod
        // boundaries and must still drain completely.
        let cluster = Cluster::homogeneous_a100(32);
        let r = engine_storm(&cluster, 2);
        assert_eq!(r.transfers, 64);
        assert!(r.events >= r.transfers);
    }
}
