//! Churn sweep: dense leave→rejoin schedules thrown at the elastic
//! membership lifecycle.
//!
//! Where the [`crate::chaos`] sweep asks "does recovery classify every
//! fault?", this sweep asks the harder robustness question: under
//! *sustained* churn — workers crashing and restarting, NICs failing
//! and recovering, flap bursts — does the session keep making
//! progress, and does membership settle on exactly the ranks the
//! schedule leaves alive?
//!
//! Each seed draws a [`FaultSchedule::random_churn`] (denser than
//! [`FaultSchedule::random`], biased toward leave→rejoin pairs),
//! injects it into a fresh [`AdapCC`] session, and drives AllReduces
//! across the fault window. Typed errors do **not** stop the loop —
//! a churn-hardened trainer retries the next step — they are counted
//! and the loop continues. After the horizon, a settle phase gives the
//! health monitor's probe rounds time to readmit restarted workers.
//!
//! Invariants, checked per seed:
//!
//! * never a hang, never a panic (the loop is iteration-bounded and
//!   every error is a classified [`adapcc::AdapCCError`]);
//! * membership converges to the schedule's final alive set
//!   (skipped when that set is too small to carry a collective);
//! * every rejoin bills less blocked time than the NCCL-style full
//!   restart it replaces ([`nccl_restart_cost`]);
//! * a final real-data AllReduce is numerically correct over the
//!   survivors.
//!
//! The workspace test `tests/churn.rs` sweeps 200 seeds in two
//! shards; `adapcc_sim churn` runs the same sweep from the command
//! line.

use std::collections::{BTreeMap, BTreeSet};

use adapcc::{nccl_restart_cost, AdapCC, InitOptions, RecoveryEvent};
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::faults::FaultSchedule;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::SynthConfig;

/// Parameters of one churn sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Homogeneous A100 servers in the cluster (4 GPUs each).
    pub servers: usize,
    /// Per-rank tensor size of the clock-driving iterations.
    pub tensor: ByteSize,
    /// Churn-schedule horizon: events land within this (simulated)
    /// window, and the iteration loop runs until the session clock
    /// crosses it.
    pub horizon: SimDuration,
    /// Iteration-count safety valve for the clock-driving phase.
    pub max_iters: usize,
    /// Extra iterations past the horizon so the health monitor's
    /// probe rounds can readmit restarted workers (two passing probes
    /// plus probation under the default policy).
    pub settle_iters: usize,
    /// Synthesizer annealing iterations (kept low — churn stresses
    /// membership, not strategy quality).
    pub anneal_iters: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            servers: 2,
            tensor: ByteSize::from_mib(1),
            horizon: SimDuration::from_millis(2.0),
            max_iters: 64,
            settle_iters: 6,
            anneal_iters: 24,
        }
    }
}

/// What one seeded churn run concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOutcome {
    /// Membership matches the schedule's final alive set and the
    /// verification collective was numerically correct.
    Converged,
    /// The run ended in a typed, classified error — accepted when the
    /// schedule leaves too few survivors to carry the job.
    Classified(String),
    /// Membership settled on the wrong worker set — a violation.
    Diverged {
        /// Ranks the schedule leaves alive.
        expected: Vec<Rank>,
        /// Ranks the session actually converged to.
        actual: Vec<Rank>,
    },
    /// A rejoin blocked the job for at least as long as the full
    /// restart it is supposed to beat — a violation.
    RejoinOverBudget {
        /// Blocked time billed by the scale-out.
        cost: SimDuration,
        /// The NCCL-style restart bound it must undercut.
        bound: SimDuration,
    },
    /// A survivor's output was wrong — a violation.
    NumericMismatch {
        /// The rank whose output disagreed.
        rank: Rank,
        /// What it produced.
        got: f32,
        /// The sum it should have produced.
        want: f32,
    },
}

impl ChurnOutcome {
    /// True for the outcomes the sweep rejects.
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            ChurnOutcome::Diverged { .. }
                | ChurnOutcome::RejoinOverBudget { .. }
                | ChurnOutcome::NumericMismatch { .. }
        )
    }
}

/// One seeded churn run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// The schedule seed.
    pub seed: u64,
    /// Events in the drawn schedule.
    pub schedule_len: usize,
    /// Iterations driven (clock phase plus settle phase).
    pub iterations: usize,
    /// Typed errors absorbed without stopping the loop.
    pub errors: usize,
    /// Ranks readmitted through the rejoin path.
    pub rejoins: usize,
    /// Plan-cache exact hits inside the session (membership changes
    /// re-plan through the cache, so churn exercises it for real).
    pub plan_hits: u64,
    /// Plan-cache misses (cold solves) inside the session.
    pub plan_misses: u64,
    /// Plan-cache warm-started solves inside the session.
    pub plan_warm_starts: u64,
    /// What the run concluded.
    pub outcome: ChurnOutcome,
}

fn inputs_for(workers: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
    workers
        .iter()
        .map(|r| {
            (
                *r,
                (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect(),
            )
        })
        .collect()
}

/// Runs one seed: build a session, inject a dense churn schedule,
/// iterate AllReduces across the window (absorbing typed errors),
/// settle, then check convergence, rejoin cost, and numerics.
pub fn run_seed(cfg: &ChurnConfig, seed: u64) -> ChurnReport {
    let cluster = Cluster::homogeneous_a100(cfg.servers);
    let options = InitOptions {
        synth: SynthConfig {
            anneal_iters: cfg.anneal_iters,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    let mut cc = AdapCC::init(&cluster, options);
    cc.setup();
    let schedule = FaultSchedule::random_churn(&cluster, seed, cfg.horizon);
    let schedule_len = schedule.len();
    let expected_gone: BTreeSet<Rank> = schedule
        .eventually_excluded_ranks(&cluster)
        .into_iter()
        .collect();
    cc.inject_faults(schedule);
    let horizon_end = SimTime::ZERO + cfg.horizon;

    // Phase 1: carry the clock across the churn window. Errors are
    // absorbed, not returned — sustained churn must never wedge the
    // training loop — but a run that only errors is cut short (the
    // fleet is terminally down and each further call re-classifies).
    let mut iterations = 0;
    let mut errors = 0;
    let mut consecutive = 0;
    while cc.session_clock() < horizon_end && iterations < cfg.max_iters && consecutive < 4 {
        match cc.allreduce(cfg.tensor, &BTreeMap::new(), None) {
            Ok(_) => consecutive = 0,
            Err(_) => {
                errors += 1;
                consecutive += 1;
            }
        }
        iterations += 1;
    }

    // Phase 2: settle past the horizon so probe rounds see every
    // scheduled recovery and restarted workers can rejoin.
    for _ in 0..cfg.settle_iters {
        if cc.allreduce(cfg.tensor, &BTreeMap::new(), None).is_err() {
            errors += 1;
        }
        iterations += 1;
    }

    let rejoins: usize = cc
        .recovery_log()
        .iter()
        .filter_map(|e| match e {
            RecoveryEvent::Rejoined { ranks, .. } => Some(ranks.len()),
            _ => None,
        })
        .sum();
    let cache = cc.plan_cache_stats();
    let report = |outcome| ChurnReport {
        seed,
        schedule_len,
        iterations,
        errors,
        rejoins,
        plan_hits: cache.hits,
        plan_misses: cache.misses,
        plan_warm_starts: cache.warm_starts,
        outcome,
    };

    // Invariant: every rejoin undercuts the NCCL-style full restart
    // it replaces.
    let bound = nccl_restart_cost(cfg.tensor, cluster.gpu_count()).total();
    for e in cc.recovery_log() {
        if let RecoveryEvent::Rejoined { scale, .. } = e {
            if scale.total() >= bound {
                return report(ChurnOutcome::RejoinOverBudget {
                    cost: scale.total(),
                    bound,
                });
            }
        }
    }

    // Phase 3: one real-data collective, then the convergence check.
    let verify = ByteSize::from_kib(64);
    let elems = (verify.as_u64() / 4) as usize;
    let inputs = inputs_for(cc.workers(), elems);
    match cc.allreduce(verify, &BTreeMap::new(), Some(inputs.clone())) {
        Err(e) => report(ChurnOutcome::Classified(e.to_string())),
        Ok(rep) => {
            let survivors = cc.workers().to_vec();
            for w in &survivors {
                let out = &rep.outputs[w];
                for i in [0usize, elems / 2, elems - 1] {
                    // A rank re-admitted *during* the verify call has
                    // no input buffer and contributes zeros.
                    let want: f32 = survivors
                        .iter()
                        .map(|r| inputs.get(r).map_or(0.0, |v| v[i]))
                        .sum();
                    if (out[i] - want).abs() > 1e-3 {
                        return report(ChurnOutcome::NumericMismatch {
                            rank: *w,
                            got: out[i],
                            want,
                        });
                    }
                }
            }
            let expected: BTreeSet<Rank> = (0..cluster.gpu_count())
                .map(Rank)
                .filter(|r| !expected_gone.contains(r))
                .collect();
            let actual: BTreeSet<Rank> = survivors.iter().copied().collect();
            // Below two survivors the session refuses to shrink, so
            // the final alive set is unreachable by design; the typed
            // error path above is the accepted ending there.
            if expected.len() >= 2 && actual != expected {
                return report(ChurnOutcome::Diverged {
                    expected: expected.into_iter().collect(),
                    actual: actual.into_iter().collect(),
                });
            }
            report(ChurnOutcome::Converged)
        }
    }
}

/// Aggregate of a churn sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnSummary {
    /// Runs whose membership converged and verified.
    pub converged: usize,
    /// Runs that ended in a classified error.
    pub classified: usize,
    /// Ranks readmitted across the whole sweep.
    pub rejoins: usize,
    /// Typed errors absorbed across the whole sweep.
    pub errors: usize,
    /// Plan-cache exact hits summed over every session.
    pub plan_hits: u64,
    /// Plan-cache misses summed over every session.
    pub plan_misses: u64,
    /// Plan-cache warm starts summed over every session.
    pub plan_warm_starts: u64,
    /// Reports that violated an invariant (must be empty).
    pub violations: Vec<ChurnReport>,
    /// Total runs.
    pub total: usize,
}

/// Sweeps `seeds` consecutive seeds starting at `base`, calling
/// `progress` after each run (for live CLI output; pass `|_| {}` to
/// stay quiet).
pub fn run_sweep<F: FnMut(&ChurnReport)>(
    cfg: &ChurnConfig,
    base: u64,
    seeds: u64,
    mut progress: F,
) -> ChurnSummary {
    let mut summary = ChurnSummary::default();
    for seed in base..base + seeds {
        let report = run_seed(cfg, seed);
        match &report.outcome {
            ChurnOutcome::Converged => summary.converged += 1,
            ChurnOutcome::Classified(_) => summary.classified += 1,
            _ => summary.violations.push(report.clone()),
        }
        summary.rejoins += report.rejoins;
        summary.errors += report.errors;
        summary.plan_hits += report.plan_hits;
        summary.plan_misses += report.plan_misses;
        summary.plan_warm_starts += report.plan_warm_starts;
        summary.total += 1;
        progress(&report);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_runs_without_wedging() {
        let cfg = ChurnConfig::default();
        let r = run_seed(&cfg, 3);
        assert!(!r.outcome.is_violation(), "{r:?}");
        // 2-5 primary faults, each with an 80% chance of a recovery.
        assert!(r.schedule_len >= 2 && r.schedule_len <= 10, "{r:?}");
    }

    #[test]
    fn sweep_aggregates() {
        let cfg = ChurnConfig::default();
        let s = run_sweep(&cfg, 0, 4, |_| {});
        assert_eq!(s.total, 4);
        assert_eq!(s.converged + s.classified + s.violations.len(), 4);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
    }
}
