//! # adapcc-bench
//!
//! The figure-reproduction harness: one routine per table/figure of
//! the AdapCC paper's evaluation (Sec. VI), all runnable through the
//! `figures` binary:
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin figures            # everything
//! cargo run --release -p adapcc-bench --bin figures -- fig12   # one figure
//! ```
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-versus-measured results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod churn;
pub mod cli;
pub mod engine_bench;
pub mod figs;
pub mod harness;
pub mod parallel_bench;
pub mod record;
pub mod service_bench;

use adapcc_train::workload::DnnModel;

/// All figure names, in paper order.
pub fn figure_names() -> Vec<&'static str> {
    vec![
        "fig1", "fig3b", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18a",
        "fig18b", "fig19a", "fig19b", "fig19c", "fig19d", "ablation",
    ]
}

/// Runs one figure harness by name and returns its printed lines.
///
/// # Panics
///
/// Panics on an unknown figure name (see [`figure_names`]).
pub fn run_figure(name: &str) -> Vec<String> {
    match name {
        "fig1" => figs::env_figs::fig1(),
        "fig3b" => figs::env_figs::fig3b(),
        "fig11" => figs::bench_figs::fig11(),
        "fig12" => figs::bench_figs::fig12(),
        "fig13" => figs::bench_figs::fig13(),
        "fig14" => figs::train_figs::fig14(),
        "fig15" => figs::train_figs::fig15(),
        "fig16" => figs::train_figs::fig16_17(DnnModel::Gpt2, &[8, 16, 24, 32]),
        "fig17" => figs::train_figs::fig16_17(DnnModel::Vit, &[64, 128, 192, 256]),
        "fig18a" => figs::train_figs::fig18a(),
        "fig18b" => figs::train_figs::fig18b(),
        "fig19a" => figs::bench_figs::fig19a(),
        "fig19b" => figs::micro_figs::fig19b(),
        "fig19c" => figs::micro_figs::fig19c(),
        "fig19d" => figs::micro_figs::fig19d(),
        "ablation" => figs::micro_figs::ablation(),
        other => panic!("unknown figure {other}; known: {:?}", figure_names()),
    }
}
