//! Chaos sweep: hundreds of randomized fault schedules thrown at the
//! full recovery path.
//!
//! Each seed draws a [`FaultSchedule::random`] (one to three primary
//! faults — crashes, NIC failures, link flaps, degrades, probe losses —
//! each with a coin-flip chance of a correlated recovery event), injects
//! it into a fresh [`AdapCC`] session, and drives a training-style loop
//! of AllReduces until the simulated session clock has crossed the
//! fault horizon — so faults scheduled anywhere in the window get their
//! chance to land mid-collective. A final real-data AllReduce then
//! checks numeric correctness over whatever workers survived.
//!
//! The invariant under test is the tentpole robustness claim: every
//! run either
//!
//! * completes and is numerically correct over the surviving workers, or
//! * returns a *classified* [`adapcc::AdapCCError`] —
//!
//! never a hang, never a panic. The workspace test `tests/chaos.rs`
//! sweeps ≥200 seeds; `adapcc_sim chaos` runs the same sweep from the
//! command line.

use std::collections::BTreeMap;

use adapcc::{AdapCC, InitOptions, RecoveryEvent};
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::faults::FaultSchedule;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::solver::SynthConfig;

/// Parameters of one chaos sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Homogeneous A100 servers in the cluster (4 GPUs each).
    pub servers: usize,
    /// Per-rank tensor size of the clock-driving iterations.
    pub tensor: ByteSize,
    /// Fault-schedule horizon: faults land within this (simulated)
    /// window, and the iteration loop runs until the session clock
    /// crosses it.
    pub horizon: SimDuration,
    /// Iteration-count safety valve (recovery time advances the clock
    /// in large jumps, so real sweeps stop on the horizon first).
    pub max_iters: usize,
    /// Synthesizer annealing iterations (kept low — chaos stresses the
    /// recovery path, not strategy quality).
    pub anneal_iters: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            servers: 2,
            tensor: ByteSize::from_mib(1),
            horizon: SimDuration::from_millis(2.0),
            max_iters: 64,
            anneal_iters: 24,
        }
    }
}

/// What one seeded run did.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedOutcome {
    /// Completed with no recovery events: the schedule never bit (or
    /// only stalled transfers briefly below the detection floor).
    Clean,
    /// Completed after the recovery loop intervened.
    Recovered {
        /// Transient retries taken.
        retries: usize,
        /// Ranks permanently excluded (empty for retry-only recovery).
        excluded: Vec<Rank>,
    },
    /// The session returned a typed, classified error (rendered via
    /// `Display`) — the accepted outcome when survivors cannot carry
    /// the job.
    Classified(String),
    /// Completed but a survivor's output was wrong — a real bug, and
    /// the only outcome the sweep rejects.
    NumericMismatch {
        /// The rank whose output disagreed.
        rank: Rank,
        /// What it produced.
        got: f32,
        /// The sum it should have produced.
        want: f32,
    },
}

/// One seeded run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedReport {
    /// The schedule seed.
    pub seed: u64,
    /// Faults in the drawn schedule.
    pub schedule_len: usize,
    /// Clock-driving iterations completed.
    pub iterations: usize,
    /// What happened.
    pub outcome: SeedOutcome,
}

fn inputs_for(workers: &[Rank], elems: usize) -> BTreeMap<Rank, Vec<f32>> {
    workers
        .iter()
        .map(|r| {
            (
                *r,
                (0..elems).map(|i| ((r.0 * 13 + i) % 11) as f32).collect(),
            )
        })
        .collect()
}

/// Classifies a finished session from its accumulated recovery log.
fn settle(cc: &AdapCC) -> SeedOutcome {
    let retries = cc
        .recovery_log()
        .iter()
        .filter(|e| matches!(e, RecoveryEvent::Retrying { .. }))
        .count();
    let excluded: Vec<Rank> = cc
        .recovery_log()
        .iter()
        .filter_map(|e| match e {
            RecoveryEvent::Excluded { ranks, .. } => Some(ranks.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    if retries == 0 && excluded.is_empty() {
        SeedOutcome::Clean
    } else {
        SeedOutcome::Recovered { retries, excluded }
    }
}

/// Runs one seed: build a session, inject the seeded schedule, iterate
/// AllReduces until the session clock crosses the horizon, then verify
/// a real-data AllReduce against the surviving workers' input sum.
pub fn run_seed(cfg: &ChaosConfig, seed: u64) -> SeedReport {
    let cluster = Cluster::homogeneous_a100(cfg.servers);
    let options = InitOptions {
        synth: SynthConfig {
            anneal_iters: cfg.anneal_iters,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    let mut cc = AdapCC::init(&cluster, options);
    cc.setup();
    let schedule = FaultSchedule::random(&cluster, seed, cfg.horizon);
    let schedule_len = schedule.len();
    cc.inject_faults(schedule);
    let horizon_end = SimTime::ZERO + cfg.horizon;

    // Phase 1: training-style iterations carry the clock across the
    // fault window (timing-only — numerics are phase 2's job).
    let mut iterations = 0;
    while cc.session_clock() < horizon_end && iterations < cfg.max_iters {
        if let Err(e) = cc.allreduce(cfg.tensor, &BTreeMap::new(), None) {
            return SeedReport {
                seed,
                schedule_len,
                iterations,
                outcome: SeedOutcome::Classified(e.to_string()),
            };
        }
        iterations += 1;
    }

    // Phase 2: one real-data collective over whatever survived.
    let verify = ByteSize::from_kib(64);
    let elems = (verify.as_u64() / 4) as usize;
    let inputs = inputs_for(cc.workers(), elems);
    let outcome = match cc.allreduce(verify, &BTreeMap::new(), Some(inputs.clone())) {
        Err(e) => SeedOutcome::Classified(e.to_string()),
        Ok(rep) => {
            let survivors = cc.workers().to_vec();
            let mut mismatch = None;
            'check: for w in &survivors {
                let out = &rep.outputs[w];
                for i in [0usize, elems / 2, elems - 1] {
                    // A rank re-admitted *during* the verify call has no
                    // input buffer and contributes zeros.
                    let want: f32 = survivors
                        .iter()
                        .map(|r| inputs.get(r).map_or(0.0, |v| v[i]))
                        .sum();
                    if (out[i] - want).abs() > 1e-3 {
                        mismatch = Some(SeedOutcome::NumericMismatch {
                            rank: *w,
                            got: out[i],
                            want,
                        });
                        break 'check;
                    }
                }
            }
            mismatch.unwrap_or_else(|| settle(&cc))
        }
    };
    SeedReport {
        seed,
        schedule_len,
        iterations,
        outcome,
    }
}

/// Aggregate of a sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSummary {
    /// Runs the schedule never disturbed.
    pub clean: usize,
    /// Runs that recovered (retried and/or excluded) and finished.
    pub recovered: usize,
    /// Runs that ended in a classified error.
    pub classified: usize,
    /// Reports whose outputs were numerically wrong (must be empty).
    pub mismatches: Vec<SeedReport>,
    /// Total runs.
    pub total: usize,
}

/// Sweeps `seeds` consecutive seeds starting at `base`, calling
/// `progress` after each run (for live CLI output; pass `|_| {}` to
/// stay quiet).
pub fn run_sweep<F: FnMut(&SeedReport)>(
    cfg: &ChaosConfig,
    base: u64,
    seeds: u64,
    mut progress: F,
) -> ChaosSummary {
    let mut summary = ChaosSummary::default();
    for seed in base..base + seeds {
        let report = run_seed(cfg, seed);
        match &report.outcome {
            SeedOutcome::Clean => summary.clean += 1,
            SeedOutcome::Recovered { .. } => summary.recovered += 1,
            SeedOutcome::Classified(_) => summary.classified += 1,
            SeedOutcome::NumericMismatch { .. } => summary.mismatches.push(report.clone()),
        }
        summary.total += 1;
        progress(&report);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_runs_and_classifies() {
        let cfg = ChaosConfig::default();
        let r = run_seed(&cfg, 7);
        assert!(
            !matches!(r.outcome, SeedOutcome::NumericMismatch { .. }),
            "{r:?}"
        );
        // 1-3 primary faults, each with at most one correlated recovery.
        assert!(r.schedule_len >= 1 && r.schedule_len <= 6);
    }

    #[test]
    fn sweep_aggregates() {
        let cfg = ChaosConfig::default();
        let s = run_sweep(&cfg, 0, 4, |_| {});
        assert_eq!(s.total, 4);
        assert_eq!(s.clean + s.recovered + s.classified + s.mismatches.len(), 4);
        assert!(s.mismatches.is_empty(), "{:?}", s.mismatches);
    }
}
