//! Shared infrastructure for the figure harnesses: the paper's GPU
//! configuration cases, profiled-environment setup, and table
//! formatting.

use adapcc_profile::profiler::{LinkProfile, Profiler};
use adapcc_simnet::cluster::{Cluster, ClusterBuilder, InstanceId, Rank};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_topo::detect::Detector;
use adapcc_topo::logical::LogicalTopology;

/// One x-axis case of Figs. 11-13: which GPUs participate.
#[derive(Debug, Clone)]
pub struct GpuCase {
    /// Paper-style label, e.g. `A100:(4,4,4,4) V100:(4,4)`.
    pub label: String,
    /// The backing cluster.
    pub cluster: Cluster,
    /// Participating ranks (may be a subset of the installed GPUs —
    /// the resource-fragmentation cases).
    pub participants: Vec<Rank>,
}

/// Builds a case from per-server participating-GPU counts.
///
/// # Panics
///
/// Panics if any count exceeds the GPUs installed on its server.
pub fn case(a100_counts: &[usize], v100_counts: &[usize]) -> GpuCase {
    let mut b = ClusterBuilder::new();
    b.add_instances(InstanceSpec::a100_server(), a100_counts.len());
    b.add_instances(InstanceSpec::v100_server(), v100_counts.len());
    let cluster = b.build();
    let mut participants = Vec::new();
    for (i, &k) in a100_counts.iter().chain(v100_counts).enumerate() {
        let inst = InstanceId(i);
        assert!(
            k <= cluster.gpus_on(inst),
            "case uses more GPUs than installed"
        );
        for l in 0..k {
            participants.push(cluster.rank_of(inst, l));
        }
    }
    let fmt = |counts: &[usize]| {
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut label = String::new();
    if !a100_counts.is_empty() {
        label.push_str(&format!("A100:({})", fmt(a100_counts)));
    }
    if !v100_counts.is_empty() {
        if !label.is_empty() {
            label.push(' ');
        }
        label.push_str(&format!("V100:({})", fmt(v100_counts)));
    }
    GpuCase {
        label,
        cluster,
        participants,
    }
}

/// The six GPU cases the benchmark figures sweep (mirroring the
/// paper's x axes: homogeneous, fully heterogeneous, fragmented).
pub fn benchmark_cases() -> Vec<GpuCase> {
    vec![
        case(&[4, 4], &[]),
        case(&[4, 4, 4, 4], &[]),
        case(&[4, 4], &[4, 4]),
        case(&[4, 4, 4, 4], &[4, 4]),
        case(&[2, 2, 2, 2], &[2, 2]),
        case(&[3, 3, 3, 3], &[3, 3]),
    ]
}

/// Detects and profiles a cluster (the control-path preamble every
/// experiment shares).
pub fn profiled(cluster: &Cluster, seed: u64) -> (LogicalTopology, LinkProfile) {
    let (topo, profile, _) =
        profiled_with_telemetry(cluster, seed, adapcc_telemetry::Telemetry::disabled());
    (topo, profile)
}

/// [`profiled`] with a telemetry sink: the detector records a `detect`
/// phase span, the profiler (offset past detection) its `profile.*`
/// spans. Returns the control-plane elapsed seconds — the offset at
/// which the data plane (synthesize, execute) should be stitched.
pub fn profiled_with_telemetry(
    cluster: &Cluster,
    seed: u64,
    telemetry: adapcc_telemetry::Telemetry,
) -> (LogicalTopology, LinkProfile, f64) {
    let detection = Detector::new(cluster, seed)
        .with_telemetry(telemetry.clone())
        .run();
    let topo = detection.logical_topology(cluster);
    let prof = Profiler::new(cluster, &topo, seed)
        .with_telemetry(telemetry.at_offset(detection.elapsed.as_secs()))
        .run();
    let control_secs = (detection.elapsed + prof.elapsed).as_secs();
    (topo, prof.links, control_secs)
}

/// Renders one table row with fixed-width numeric columns.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<28}");
    for v in values {
        s.push_str(&format!(" {v:>10.2}"));
    }
    s
}

/// Renders a table header.
pub fn header(label: &str, columns: &[&str]) -> String {
    let mut s = format!("{label:<28}");
    for c in columns {
        s.push_str(&format!(" {c:>10}"));
    }
    s
}

/// Geometric mean of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Percentile of a sample (nearest-rank).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_builder_counts_participants() {
        let c = case(&[4, 4], &[2, 2]);
        assert_eq!(c.participants.len(), 12);
        assert_eq!(c.label, "A100:(4,4) V100:(2,2)");
        assert_eq!(c.cluster.instance_count(), 4);
    }

    #[test]
    fn fragmented_case_uses_low_locals() {
        let c = case(&[2], &[]);
        assert_eq!(c.participants, vec![Rank(0), Rank(1)]);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn all_benchmark_cases_valid() {
        for c in benchmark_cases() {
            assert!(!c.participants.is_empty());
            assert!(c.participants.len() <= c.cluster.gpu_count());
        }
    }
}
