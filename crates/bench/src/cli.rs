//! Argument parsing for the `adapcc-sim` command-line tool (no
//! external CLI dependency).

use adapcc_baselines::runner::System;
use adapcc_simnet::cluster::{Cluster, ClusterBuilder};
use adapcc_simnet::hardware::InstanceSpec;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::Primitive;

/// A parsed `adapcc-sim` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    /// Server fleet, e.g. `a100:4,v100:2`.
    pub servers: Vec<(ServerKind, usize)>,
    /// Use TCP instead of RDMA.
    pub tcp: bool,
    /// The collective to run.
    pub primitive: Primitive,
    /// Per-rank tensor size.
    pub tensor: ByteSize,
    /// The system under test.
    pub system: System,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Seed threaded into profiling and synthesis (`InitOptions::seed`).
    pub seed: u64,
    /// Annealing chains for AdapCC synthesis (1 ≡ legacy schedule).
    pub solver_chains: usize,
    /// Worker threads running those chains (wall-clock only; the
    /// strategy is bit-identical for any thread count).
    pub solver_threads: usize,
    /// Force two-tier hierarchical synthesis regardless of fleet size
    /// (default: automatic at 64+ GPUs).
    pub hierarchical: bool,
    /// Persistent plan-cache directory for AdapCC strategy synthesis.
    pub plan_cache: Option<String>,
    /// Print the synthesized strategy.
    pub describe: bool,
    /// Write a Chrome-trace JSON timeline of the run here.
    pub trace_out: Option<String>,
    /// Write a flat metrics summary (JSON) here.
    pub metrics_out: Option<String>,
    /// Append a one-line machine-readable benchmark record here.
    pub bench_append: Option<String>,
}

/// Server model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// 4x A100, PCIe 4.0, 100 Gbps NIC.
    A100,
    /// 4x V100, PCIe 3.0, 50 Gbps NIC.
    V100,
    /// 8x H100, PCIe 5.0, 400 Gbps NIC.
    H100,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            servers: vec![(ServerKind::A100, 2)],
            tcp: false,
            primitive: Primitive::AllReduce,
            tensor: ByteSize::from_mib(256),
            system: System::AdapCc,
            parallelism: 4,
            seed: 1,
            solver_chains: 1,
            solver_threads: 1,
            hierarchical: false,
            plan_cache: None,
            describe: false,
            trace_out: None,
            metrics_out: None,
            bench_append: None,
        }
    }
}

/// The usage string printed on `--help` or a parse error.
pub fn usage() -> &'static str {
    "adapcc-sim: run one collective on a simulated cluster\n\
     \n\
     options:\n\
       --servers a100:4,v100:2   server fleet of a100|v100|h100 (default a100:2);\n\
                                 a plain integer N is shorthand for a100:N\n\
       --tcp                     kernel TCP instead of RDMA\n\
       --primitive P             reduce|broadcast|allreduce|alltoall (default allreduce)\n\
       --size-mib N              per-rank tensor MiB (default 256)\n\
       --system S                adapcc|nccl|msccl|blink (default adapcc)\n\
       --parallelism M           AdapCC sub-collectives (default 4)\n\
       --seed N                  profiling/synthesis seed (default 1)\n\
       --solver-chains K         annealing chains; 1 reproduces the legacy\n\
                                 sequential schedule bit-for-bit (default 1)\n\
       --solver-threads N        worker threads for the chains; affects\n\
                                 wall-clock only, never the strategy (default 1)\n\
       --hierarchical            force two-tier (intra/inter-server) synthesis;\n\
                                 without it, tiering engages automatically at\n\
                                 64+ GPUs\n\
       --plan-cache DIR          persistent strategy cache; a repeat run\n\
                                 with the same dir serves cached plans\n\
       --describe                print the synthesized strategy\n\
       --trace-out FILE          write a Chrome-trace JSON timeline (chrome://tracing)\n\
       --metrics-out FILE        write a flat metrics summary (JSON)\n\
       --bench-append FILE       append a one-line machine-readable run record\n\
       --help                    this message\n\
     \n\
     subcommands:\n\
       chaos                     sweep randomized fault schedules through\n\
                                 the recovery path (adapcc-sim chaos --help)\n\
       churn                     sweep dense leave/rejoin schedules through\n\
                                 the membership lifecycle (adapcc-sim churn --help)\n\
       engine                    engine-throughput storm micro-benchmark\n\
                                 (adapcc-sim engine --help)\n\
       serve                     many-job shared plan-service benchmark\n\
                                 (adapcc-sim serve --help)\n\
       parallel3d                3D-parallel + MoE step: group-oblivious vs\n\
                                 contention-aware co-scheduled synthesis\n\
                                 (adapcc-sim parallel3d --help)"
}

/// A parsed `adapcc-sim chaos` invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosArgs {
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Homogeneous A100 servers in the chaos cluster.
    pub servers: usize,
    /// Per-rank tensor size in KiB for the clock-driving iterations.
    pub size_kib: u64,
    /// Fault horizon in simulated milliseconds.
    pub horizon_ms: f64,
    /// Print every seed's outcome, not just the summary.
    pub verbose: bool,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            seeds: 200,
            seed_base: 0,
            servers: 2,
            size_kib: 1024,
            horizon_ms: 2.0,
            verbose: false,
        }
    }
}

/// The usage string for the `chaos` subcommand.
pub fn chaos_usage() -> &'static str {
    "adapcc-sim chaos: sweep randomized fault schedules through recovery\n\
     \n\
     options:\n\
       --seeds N        consecutive seeds to run (default 200)\n\
       --seed-base N    first seed (default 0)\n\
       --servers N      homogeneous A100 servers (default 2)\n\
       --size-kib N     per-rank tensor KiB (default 1024)\n\
       --horizon-ms N   fault window in simulated ms (default 2)\n\
       --verbose        print every seed's outcome\n\
       --help           this message"
}

/// Parses `adapcc-sim chaos` arguments (everything after the
/// subcommand word).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` arrives as an `Err` carrying the usage text).
pub fn parse_chaos_args<I: IntoIterator<Item = String>>(args: I) -> Result<ChaosArgs, String> {
    let mut out = ChaosArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", chaos_usage()))
        };
        let positive = |flag: &str, v: String| -> Result<u64, String> {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("{flag} expects an integer"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(chaos_usage().to_string()),
            "--verbose" => out.verbose = true,
            "--seeds" => out.seeds = positive("--seeds", value("--seeds")?)?,
            "--seed-base" => {
                out.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|_| "--seed-base expects an integer".to_string())?;
            }
            "--servers" => out.servers = positive("--servers", value("--servers")?)? as usize,
            "--size-kib" => out.size_kib = positive("--size-kib", value("--size-kib")?)?,
            "--horizon-ms" => {
                let ms: f64 = value("--horizon-ms")?
                    .parse()
                    .map_err(|_| "--horizon-ms expects a number".to_string())?;
                if ms <= 0.0 || ms.is_nan() {
                    return Err("--horizon-ms must be positive".into());
                }
                out.horizon_ms = ms;
            }
            other => return Err(format!("unknown flag {other}\n\n{}", chaos_usage())),
        }
    }
    Ok(out)
}

/// A parsed `adapcc-sim engine` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineArgs {
    /// Homogeneous A100 servers in the storm cluster.
    pub servers: usize,
    /// Storm waves (each wave is one transfer per server, fully
    /// drained before the next).
    pub waves: usize,
    /// Workload shape: synchronized waves or staggered churn.
    pub storm: crate::engine_bench::StormMode,
    /// Allocator selection: exact, incremental, or the executor's
    /// automatic scale gate.
    pub alloc: crate::engine_bench::AllocMode,
    /// Append an `EngineBenchRecord` line here.
    pub bench_append: Option<String>,
}

impl Default for EngineArgs {
    fn default() -> Self {
        EngineArgs {
            servers: 32,
            waves: 4,
            storm: crate::engine_bench::StormMode::Wave,
            alloc: crate::engine_bench::AllocMode::Auto,
            bench_append: None,
        }
    }
}

/// The usage string for the `engine` subcommand.
pub fn engine_usage() -> &'static str {
    "adapcc-sim engine: flood the fluid-flow engine with contending\n\
     cross-server transfers and report events per wall-clock second\n\
     \n\
     options:\n\
       --servers N          homogeneous A100 servers (default 32)\n\
       --waves N            storm waves, each fully drained (default 4)\n\
       --storm MODE         wave (synchronized rounds, default) or churn\n\
                            (staggered arrivals interleaved with completions)\n\
       --alloc MODE         exact | incremental | auto (default auto:\n\
                            incremental at 64+ servers, like the executor)\n\
       --bench-append FILE  append a one-line machine-readable record\n\
       --help               this message"
}

/// Parses `adapcc-sim engine` arguments (everything after the
/// subcommand word).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` arrives as an `Err` carrying the usage text).
pub fn parse_engine_args<I: IntoIterator<Item = String>>(args: I) -> Result<EngineArgs, String> {
    let mut out = EngineArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", engine_usage()))
        };
        let positive = |flag: &str, v: String| -> Result<usize, String> {
            let n: usize = v
                .parse()
                .map_err(|_| format!("{flag} expects an integer"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(engine_usage().to_string()),
            "--servers" => {
                out.servers = positive("--servers", value("--servers")?)?;
                if out.servers < 2 {
                    return Err("--servers must be at least 2 (the storm is cross-server)".into());
                }
            }
            "--waves" => out.waves = positive("--waves", value("--waves")?)?,
            "--storm" => {
                out.storm = match value("--storm")?.as_str() {
                    "wave" => crate::engine_bench::StormMode::Wave,
                    "churn" => crate::engine_bench::StormMode::Churn,
                    other => return Err(format!("--storm expects wave or churn, got {other}")),
                }
            }
            "--alloc" => {
                out.alloc = match value("--alloc")?.as_str() {
                    "exact" => crate::engine_bench::AllocMode::Exact,
                    "incremental" => crate::engine_bench::AllocMode::Incremental,
                    "auto" => crate::engine_bench::AllocMode::Auto,
                    other => {
                        return Err(format!(
                            "--alloc expects exact, incremental or auto, got {other}"
                        ))
                    }
                }
            }
            "--bench-append" => out.bench_append = Some(value("--bench-append")?),
            other => return Err(format!("unknown flag {other}\n\n{}", engine_usage())),
        }
    }
    Ok(out)
}

/// A parsed `adapcc-sim serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Concurrent jobs (`M`), each one AdapCC session.
    pub jobs: usize,
    /// Worker threads (`K`) driving the jobs.
    pub threads: usize,
    /// Fraction of jobs repeating canonical fingerprints.
    pub repeat_ratio: f64,
    /// Distinct fleet shapes the jobs cycle through.
    pub shapes: usize,
    /// Base profiling/synthesis seed.
    pub seed: u64,
    /// Service store stripes.
    pub shards: usize,
    /// Service byte budget in MiB.
    pub budget_mib: usize,
    /// Append a `ServiceBenchRecord` line here.
    pub bench_append: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            jobs: 32,
            threads: 8,
            repeat_ratio: 0.75,
            shapes: 2,
            seed: 1,
            shards: 16,
            budget_mib: 64,
            bench_append: None,
        }
    }
}

/// The usage string for the `serve` subcommand.
pub fn serve_usage() -> &'static str {
    "adapcc-sim serve: drive a synthetic many-job workload against one\n\
     shared plan service (sharded store + single-flight admission) and\n\
     against per-session private caches, and report the speedup\n\
     \n\
     options:\n\
       --jobs M             concurrent jobs, one session each (default 32)\n\
       --threads K          worker threads (default 8)\n\
       --repeat-ratio F     fraction of jobs repeating canonical\n\
                            fingerprints, 0..=1 (default 0.75); the rest\n\
                            carry per-job profiler noise and warm-start\n\
       --shapes N           distinct fleet shapes cycled through (default 2)\n\
       --seed N             base profiling seed (default 1)\n\
       --shards N           service store stripes (default 16)\n\
       --budget-mib N       service byte budget in MiB (default 64)\n\
       --bench-append FILE  append a one-line machine-readable record\n\
       --help               this message"
}

/// Parses `adapcc-sim serve` arguments (everything after the
/// subcommand word).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` arrives as an `Err` carrying the usage text).
pub fn parse_serve_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServeArgs, String> {
    let mut out = ServeArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", serve_usage()))
        };
        let positive = |flag: &str, v: String| -> Result<usize, String> {
            let n: usize = v
                .parse()
                .map_err(|_| format!("{flag} expects an integer"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(serve_usage().to_string()),
            "--jobs" => out.jobs = positive("--jobs", value("--jobs")?)?,
            "--threads" => out.threads = positive("--threads", value("--threads")?)?,
            "--shapes" => out.shapes = positive("--shapes", value("--shapes")?)?,
            "--shards" => out.shards = positive("--shards", value("--shards")?)?,
            "--budget-mib" => out.budget_mib = positive("--budget-mib", value("--budget-mib")?)?,
            "--bench-append" => out.bench_append = Some(value("--bench-append")?),
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--repeat-ratio" => {
                let f: f64 = value("--repeat-ratio")?
                    .parse()
                    .map_err(|_| "--repeat-ratio expects a number".to_string())?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--repeat-ratio must be in 0..=1".into());
                }
                out.repeat_ratio = f;
            }
            other => return Err(format!("unknown flag {other}\n\n{}", serve_usage())),
        }
    }
    Ok(out)
}

/// A parsed `adapcc-sim churn` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnArgs {
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Homogeneous A100 servers in the churn cluster.
    pub servers: usize,
    /// Per-rank tensor size in KiB for the clock-driving iterations.
    pub size_kib: u64,
    /// Churn horizon in simulated milliseconds.
    pub horizon_ms: f64,
    /// Settle iterations past the horizon for probe-driven rejoin.
    pub settle_iters: usize,
    /// Print every seed's outcome, not just the summary.
    pub verbose: bool,
    /// Append a `ChurnBenchRecord` line here.
    pub bench_append: Option<String>,
}

impl Default for ChurnArgs {
    fn default() -> Self {
        ChurnArgs {
            seeds: 200,
            seed_base: 0,
            servers: 2,
            size_kib: 1024,
            horizon_ms: 2.0,
            settle_iters: 6,
            verbose: false,
            bench_append: None,
        }
    }
}

/// The usage string for the `churn` subcommand.
pub fn churn_usage() -> &'static str {
    "adapcc-sim churn: sweep dense leave/rejoin schedules through the\n\
     elastic membership lifecycle\n\
     \n\
     options:\n\
       --seeds N         consecutive seeds to run (default 200)\n\
       --seed-base N     first seed (default 0)\n\
       --servers N       homogeneous A100 servers (default 2)\n\
       --size-kib N      per-rank tensor KiB (default 1024)\n\
       --horizon-ms N    churn window in simulated ms (default 2)\n\
       --settle-iters N  iterations past the horizon so probes can\n\
                         readmit restarted workers (default 6)\n\
       --verbose         print every seed's outcome\n\
       --bench-append FILE  append a one-line machine-readable record\n\
       --help            this message"
}

/// Parses `adapcc-sim churn` arguments (everything after the
/// subcommand word).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` arrives as an `Err` carrying the usage text).
pub fn parse_churn_args<I: IntoIterator<Item = String>>(args: I) -> Result<ChurnArgs, String> {
    let mut out = ChurnArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", churn_usage()))
        };
        let positive = |flag: &str, v: String| -> Result<u64, String> {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("{flag} expects an integer"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(churn_usage().to_string()),
            "--verbose" => out.verbose = true,
            "--seeds" => out.seeds = positive("--seeds", value("--seeds")?)?,
            "--seed-base" => {
                out.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|_| "--seed-base expects an integer".to_string())?;
            }
            "--servers" => out.servers = positive("--servers", value("--servers")?)? as usize,
            "--size-kib" => out.size_kib = positive("--size-kib", value("--size-kib")?)?,
            "--bench-append" => out.bench_append = Some(value("--bench-append")?),
            "--settle-iters" => {
                out.settle_iters = positive("--settle-iters", value("--settle-iters")?)? as usize;
            }
            "--horizon-ms" => {
                let ms: f64 = value("--horizon-ms")?
                    .parse()
                    .map_err(|_| "--horizon-ms expects a number".to_string())?;
                if ms <= 0.0 || ms.is_nan() {
                    return Err("--horizon-ms must be positive".into());
                }
                out.horizon_ms = ms;
            }
            other => return Err(format!("unknown flag {other}\n\n{}", churn_usage())),
        }
    }
    Ok(out)
}

/// A parsed `adapcc-sim parallel3d` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Parallel3dArgs {
    /// Fat-tree servers.
    pub servers: usize,
    /// GPUs per server.
    pub gpus: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Model parameter MiB (sharded over tp*pp).
    pub model_mib: u64,
    /// AdapCC parallelism (`M`).
    pub parallelism: usize,
    /// Profiling/synthesis seed.
    pub seed: u64,
    /// Co-scheduling fix-point sweep cap.
    pub rounds: usize,
    /// Print every phase's outcome, not just the step totals.
    pub verbose: bool,
    /// Append a `ParallelBenchRecord` line here.
    pub bench_append: Option<String>,
}

impl Default for Parallel3dArgs {
    fn default() -> Self {
        Parallel3dArgs {
            servers: 8,
            gpus: 4,
            tp: 2,
            pp: 2,
            model_mib: 512,
            parallelism: 4,
            seed: 1,
            rounds: 4,
            verbose: false,
            bench_append: None,
        }
    }
}

impl Parallel3dArgs {
    /// The data-parallel degree the fleet leaves after tp and pp:
    /// `gpus_total / (tp * pp)`.
    ///
    /// # Errors
    ///
    /// Returns a message when `tp * pp` does not divide the fleet.
    pub fn dp(&self) -> Result<usize, String> {
        let world = self.servers * self.gpus;
        let cell = self.tp * self.pp;
        if cell == 0 || !world.is_multiple_of(cell) {
            return Err(format!("tp*pp = {cell} must divide the {world}-GPU fleet"));
        }
        Ok(world / cell)
    }
}

/// The usage string for the `parallel3d` subcommand.
pub fn parallel3d_usage() -> &'static str {
    "adapcc-sim parallel3d: one 3D-parallel + MoE training step on a\n\
     fat tree, group-oblivious vs contention-aware co-scheduling\n\
     \n\
     options:\n\
       --servers N       fat-tree servers (default 8)\n\
       --gpus N          GPUs per server (default 4)\n\
       --tp N            tensor-parallel degree (default 2)\n\
       --pp N            pipeline stages (default 2); dp is derived as\n\
                         gpus_total / (tp*pp) and must divide evenly\n\
       --model-mib N     model parameter MiB (default 512)\n\
       --parallelism M   AdapCC sub-collectives (default 4)\n\
       --seed N          profiling/synthesis seed (default 1)\n\
       --rounds N        co-scheduling fix-point sweep cap (default 4)\n\
       --verbose         print every phase's outcome\n\
       --bench-append FILE  append a one-line machine-readable record\n\
       --help            this message"
}

/// Parses `adapcc-sim parallel3d` arguments (everything after the
/// subcommand word).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` arrives as an `Err` carrying the usage text).
pub fn parse_parallel3d_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<Parallel3dArgs, String> {
    let mut out = Parallel3dArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", parallel3d_usage()))
        };
        let positive = |flag: &str, v: String| -> Result<u64, String> {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("{flag} expects an integer"))?;
            if n == 0 {
                return Err(format!("{flag} must be positive"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(parallel3d_usage().to_string()),
            "--verbose" => out.verbose = true,
            "--servers" => out.servers = positive("--servers", value("--servers")?)? as usize,
            "--gpus" => out.gpus = positive("--gpus", value("--gpus")?)? as usize,
            "--tp" => out.tp = positive("--tp", value("--tp")?)? as usize,
            "--pp" => out.pp = positive("--pp", value("--pp")?)? as usize,
            "--model-mib" => out.model_mib = positive("--model-mib", value("--model-mib")?)?,
            "--parallelism" => {
                out.parallelism = positive("--parallelism", value("--parallelism")?)? as usize;
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--rounds" => out.rounds = positive("--rounds", value("--rounds")?)? as usize,
            "--bench-append" => out.bench_append = Some(value("--bench-append")?),
            other => return Err(format!("unknown flag {other}\n\n{}", parallel3d_usage())),
        }
    }
    out.dp()?;
    Ok(out)
}

/// Parses command-line style arguments.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values (`--help` also arrives as an `Err` carrying the usage text).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<SimArgs, String> {
    let mut out = SimArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{}", usage()))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--tcp" => out.tcp = true,
            "--describe" => out.describe = true,
            "--hierarchical" => out.hierarchical = true,
            "--servers" => out.servers = parse_servers(&value("--servers")?)?,
            "--trace-out" => out.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => out.metrics_out = Some(value("--metrics-out")?),
            "--bench-append" => out.bench_append = Some(value("--bench-append")?),
            "--plan-cache" => out.plan_cache = Some(value("--plan-cache")?),
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "seed expects an integer".to_string())?;
            }
            "--solver-chains" => {
                let k: usize = value("--solver-chains")?
                    .parse()
                    .map_err(|_| "solver-chains expects an integer".to_string())?;
                if k == 0 {
                    return Err("solver-chains must be positive".into());
                }
                out.solver_chains = k;
            }
            "--solver-threads" => {
                let n: usize = value("--solver-threads")?
                    .parse()
                    .map_err(|_| "solver-threads expects an integer".to_string())?;
                if n == 0 {
                    return Err("solver-threads must be positive".into());
                }
                out.solver_threads = n;
            }
            "--primitive" => {
                out.primitive = match value("--primitive")?.as_str() {
                    "reduce" => Primitive::Reduce,
                    "broadcast" => Primitive::Broadcast,
                    "allreduce" => Primitive::AllReduce,
                    "alltoall" => Primitive::AllToAll,
                    other => return Err(format!("unknown primitive {other}\n\n{}", usage())),
                }
            }
            "--size-mib" => {
                let n: u64 = value("--size-mib")?
                    .parse()
                    .map_err(|_| "size-mib expects an integer".to_string())?;
                if n == 0 {
                    return Err("size-mib must be positive".into());
                }
                out.tensor = ByteSize::from_mib(n);
            }
            "--system" => {
                out.system = match value("--system")?.as_str() {
                    "adapcc" => System::AdapCc,
                    "nccl" => System::Nccl,
                    "msccl" => System::Msccl,
                    "blink" => System::Blink,
                    other => return Err(format!("unknown system {other}\n\n{}", usage())),
                }
            }
            "--parallelism" => {
                let m: usize = value("--parallelism")?
                    .parse()
                    .map_err(|_| "parallelism expects an integer".to_string())?;
                if m == 0 {
                    return Err("parallelism must be positive".into());
                }
                out.parallelism = m;
            }
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    Ok(out)
}

fn parse_servers(spec: &str) -> Result<Vec<(ServerKind, usize)>, String> {
    // Plain integer: shorthand for a homogeneous a100:N fleet, the
    // common case of the scale sweeps.
    if let Ok(n) = spec.parse::<usize>() {
        if n == 0 {
            return Err("zero servers".into());
        }
        return Ok(vec![(ServerKind::A100, n)]);
    }
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (kind, count) = part
            .split_once(':')
            .ok_or_else(|| format!("bad server spec `{part}` (want kind:count)"))?;
        let kind = match kind {
            "a100" => ServerKind::A100,
            "v100" => ServerKind::V100,
            "h100" => ServerKind::H100,
            other => return Err(format!("unknown server kind {other}")),
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("bad server count in `{part}`"))?;
        if count == 0 {
            return Err(format!("zero servers in `{part}`"));
        }
        out.push((kind, count));
    }
    if out.is_empty() {
        return Err("empty server spec".into());
    }
    Ok(out)
}

/// Materializes the cluster described by the arguments.
pub fn build_cluster(args: &SimArgs) -> Cluster {
    let mut b = ClusterBuilder::new();
    for (kind, count) in &args.servers {
        let spec = match kind {
            ServerKind::A100 => InstanceSpec::a100_server(),
            ServerKind::V100 => InstanceSpec::v100_server(),
            ServerKind::H100 => InstanceSpec::h100_server(),
        };
        let spec = if args.tcp { spec.with_tcp() } else { spec };
        b.add_instances(spec, *count);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<SimArgs, String> {
        parse_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, SimArgs::default());
    }

    #[test]
    fn full_invocation() {
        let a = parse(&[
            "--servers",
            "a100:4,v100:2",
            "--tcp",
            "--primitive",
            "alltoall",
            "--size-mib",
            "64",
            "--system",
            "msccl",
            "--parallelism",
            "2",
            "--describe",
        ])
        .unwrap();
        assert_eq!(
            a.servers,
            vec![(ServerKind::A100, 4), (ServerKind::V100, 2)]
        );
        assert!(a.tcp);
        assert_eq!(a.primitive, Primitive::AllToAll);
        assert_eq!(a.tensor, ByteSize::from_mib(64));
        assert_eq!(a.system, System::Msccl);
        assert_eq!(a.parallelism, 2);
        assert!(a.describe);
        let cluster = build_cluster(&a);
        assert_eq!(cluster.gpu_count(), 24);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["--servers", "h200:1"]).is_err());
        assert!(parse(&["--servers", "a100"]).is_err());
        assert!(parse(&["--size-mib", "zero"]).is_err());
        assert!(parse(&["--size-mib", "0"]).is_err());
        assert!(parse(&["--primitive", "gather"]).is_err());
        assert!(parse(&["--banana"]).is_err());
        assert!(parse(&["--system"]).is_err(), "missing value");
    }

    #[test]
    fn help_carries_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("--servers"));
        assert!(err.contains("--trace-out"));
        assert!(err.contains("chaos"));
    }

    #[test]
    fn telemetry_output_flags() {
        let a = parse(&[
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
            "--bench-append",
            "bench.jsonl",
        ])
        .unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(a.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(a.bench_append.as_deref(), Some("bench.jsonl"));
        assert!(parse(&["--trace-out"]).is_err(), "missing value");
        assert!(parse(&["--metrics-out"]).is_err(), "missing value");
    }

    #[test]
    fn seed_and_plan_cache_flags() {
        let a = parse(&["--seed", "42", "--plan-cache", "/tmp/plans"]).unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.plan_cache.as_deref(), Some("/tmp/plans"));
        assert_eq!(
            SimArgs::default().seed,
            1,
            "default seed matches the historic run"
        );
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--seed"]).is_err(), "missing value");
        assert!(parse(&["--plan-cache"]).is_err(), "missing value");
    }

    #[test]
    fn solver_flags() {
        let a = parse(&["--solver-chains", "4", "--solver-threads", "2"]).unwrap();
        assert_eq!(a.solver_chains, 4);
        assert_eq!(a.solver_threads, 2);
        assert_eq!(SimArgs::default().solver_chains, 1, "legacy schedule");
        assert_eq!(SimArgs::default().solver_threads, 1);
        assert!(parse(&["--solver-chains", "0"]).is_err());
        assert!(parse(&["--solver-threads", "0"]).is_err());
        assert!(parse(&["--solver-threads", "two"]).is_err());
        assert!(parse(&["--solver-chains"]).is_err(), "missing value");
    }

    #[test]
    fn plain_integer_servers_shorthand() {
        let a = parse(&["--servers", "128"]).unwrap();
        assert_eq!(a.servers, vec![(ServerKind::A100, 128)]);
        assert!(parse(&["--servers", "0"]).is_err());
    }

    #[test]
    fn hierarchical_flag() {
        assert!(!SimArgs::default().hierarchical);
        assert!(parse(&["--hierarchical"]).unwrap().hierarchical);
        let usage = parse(&["--help"]).unwrap_err();
        assert!(usage.contains("--hierarchical"));
    }

    #[test]
    fn h100_server_kind_builds() {
        let a = parse(&["--servers", "h100:2,a100:1"]).unwrap();
        assert_eq!(
            a.servers,
            vec![(ServerKind::H100, 2), (ServerKind::A100, 1)]
        );
        let cluster = build_cluster(&a);
        assert_eq!(cluster.instance_count(), 3);
    }

    fn parse_chaos(words: &[&str]) -> Result<ChaosArgs, String> {
        parse_chaos_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn chaos_defaults_and_full_invocation() {
        assert_eq!(parse_chaos(&[]).unwrap(), ChaosArgs::default());
        let a = parse_chaos(&[
            "--seeds",
            "500",
            "--seed-base",
            "100",
            "--servers",
            "3",
            "--size-kib",
            "256",
            "--horizon-ms",
            "150",
            "--verbose",
        ])
        .unwrap();
        assert_eq!(a.seeds, 500);
        assert_eq!(a.seed_base, 100);
        assert_eq!(a.servers, 3);
        assert_eq!(a.size_kib, 256);
        assert_eq!(a.horizon_ms, 150.0);
        assert!(a.verbose);
    }

    #[test]
    fn chaos_rejects_malformed_input() {
        assert!(parse_chaos(&["--seeds", "0"]).is_err());
        assert!(parse_chaos(&["--horizon-ms", "-1"]).is_err());
        assert!(parse_chaos(&["--banana"]).is_err());
        assert!(parse_chaos(&["--help"])
            .unwrap_err()
            .contains("--seed-base"));
    }

    fn parse_churn(words: &[&str]) -> Result<ChurnArgs, String> {
        parse_churn_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn churn_defaults_and_full_invocation() {
        assert_eq!(parse_churn(&[]).unwrap(), ChurnArgs::default());
        let a = parse_churn(&[
            "--seeds",
            "400",
            "--seed-base",
            "200",
            "--servers",
            "3",
            "--size-kib",
            "512",
            "--horizon-ms",
            "4",
            "--settle-iters",
            "8",
            "--verbose",
            "--bench-append",
            "BENCH_churn.json",
        ])
        .unwrap();
        assert_eq!(a.seeds, 400);
        assert_eq!(a.seed_base, 200);
        assert_eq!(a.servers, 3);
        assert_eq!(a.size_kib, 512);
        assert_eq!(a.horizon_ms, 4.0);
        assert_eq!(a.settle_iters, 8);
        assert!(a.verbose);
        assert_eq!(a.bench_append.as_deref(), Some("BENCH_churn.json"));
    }

    fn parse_serve(words: &[&str]) -> Result<ServeArgs, String> {
        parse_serve_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn serve_defaults_and_full_invocation() {
        assert_eq!(parse_serve(&[]).unwrap(), ServeArgs::default());
        let a = parse_serve(&[
            "--jobs",
            "64",
            "--threads",
            "16",
            "--repeat-ratio",
            "0.5",
            "--shapes",
            "4",
            "--seed",
            "7",
            "--shards",
            "32",
            "--budget-mib",
            "128",
            "--bench-append",
            "BENCH_service.json",
        ])
        .unwrap();
        assert_eq!(a.jobs, 64);
        assert_eq!(a.threads, 16);
        assert_eq!(a.repeat_ratio, 0.5);
        assert_eq!(a.shapes, 4);
        assert_eq!(a.seed, 7);
        assert_eq!(a.shards, 32);
        assert_eq!(a.budget_mib, 128);
        assert_eq!(a.bench_append.as_deref(), Some("BENCH_service.json"));
    }

    #[test]
    fn serve_rejects_malformed_input() {
        assert!(parse_serve(&["--jobs", "0"]).is_err());
        assert!(parse_serve(&["--threads", "0"]).is_err());
        assert!(parse_serve(&["--repeat-ratio", "1.5"]).is_err());
        assert!(parse_serve(&["--repeat-ratio", "-0.1"]).is_err());
        assert!(parse_serve(&["--shards", "x"]).is_err());
        assert!(parse_serve(&["--banana"]).is_err());
        assert!(parse_serve(&["--help"])
            .unwrap_err()
            .contains("--repeat-ratio"));
        let usage = parse(&["--help"]).unwrap_err();
        assert!(usage.contains("serve"), "main usage advertises serve");
    }

    fn parse_engine(words: &[&str]) -> Result<EngineArgs, String> {
        parse_engine_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn engine_defaults_and_full_invocation() {
        let d = parse_engine(&[]).unwrap();
        assert_eq!(d, EngineArgs::default());
        assert_eq!(d.storm, crate::engine_bench::StormMode::Wave);
        assert_eq!(d.alloc, crate::engine_bench::AllocMode::Auto);
        let a = parse_engine(&[
            "--servers",
            "128",
            "--waves",
            "8",
            "--storm",
            "churn",
            "--alloc",
            "incremental",
            "--bench-append",
            "BENCH_engine.json",
        ])
        .unwrap();
        assert_eq!(a.servers, 128);
        assert_eq!(a.waves, 8);
        assert_eq!(a.storm, crate::engine_bench::StormMode::Churn);
        assert_eq!(a.alloc, crate::engine_bench::AllocMode::Incremental);
        assert_eq!(a.bench_append.as_deref(), Some("BENCH_engine.json"));
        let e = parse_engine(&["--storm", "wave", "--alloc", "exact"]).unwrap();
        assert_eq!(e.storm, crate::engine_bench::StormMode::Wave);
        assert_eq!(e.alloc, crate::engine_bench::AllocMode::Exact);
    }

    #[test]
    fn engine_rejects_malformed_input() {
        assert!(parse_engine(&["--servers", "1"]).is_err(), "cross-server");
        assert!(parse_engine(&["--waves", "0"]).is_err());
        assert!(parse_engine(&["--storm", "tsunami"]).is_err());
        assert!(parse_engine(&["--alloc", "magic"]).is_err());
        assert!(parse_engine(&["--banana"]).is_err());
        assert!(parse_engine(&["--help"]).unwrap_err().contains("--waves"));
        assert!(parse_engine(&["--help"]).unwrap_err().contains("--storm"));
        let usage = parse(&["--help"]).unwrap_err();
        assert!(usage.contains("engine"), "main usage advertises engine");
    }

    #[test]
    fn churn_rejects_malformed_input() {
        assert!(parse_churn(&["--seeds", "0"]).is_err());
        assert!(parse_churn(&["--settle-iters", "0"]).is_err());
        assert!(parse_churn(&["--horizon-ms", "nan"]).is_err());
        assert!(parse_churn(&["--banana"]).is_err());
        assert!(parse_churn(&["--help"])
            .unwrap_err()
            .contains("--settle-iters"));
        let usage = parse(&["--help"]).unwrap_err();
        assert!(usage.contains("churn"), "main usage advertises churn");
    }
}
