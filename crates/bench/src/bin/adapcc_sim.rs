//! `adapcc-sim`: run one collective on a simulated cluster from the
//! command line.
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin adapcc_sim -- \
//!     --servers a100:4,v100:2 --primitive allreduce --size-mib 256 --describe
//! ```

use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::chaos::{self, ChaosConfig};
use adapcc_bench::churn::{self, ChurnConfig};
use adapcc_bench::cli::{
    build_cluster, parse_args, parse_chaos_args, parse_churn_args, parse_engine_args,
    parse_parallel3d_args, parse_serve_args, ServerKind, SimArgs,
};
use adapcc_bench::engine_bench::engine_storm;
use adapcc_bench::harness::profiled_with_telemetry;
use adapcc_bench::record::BenchRecord;
use adapcc_bench::service_bench::{run_service_bench, ServiceWorkload};
use adapcc_simnet::cluster::Rank;
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_telemetry::Telemetry;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("chaos") {
        argv.remove(0);
        run_chaos(argv);
        return;
    }
    if argv.first().map(String::as_str) == Some("churn") {
        argv.remove(0);
        run_churn(argv);
        return;
    }
    if argv.first().map(String::as_str) == Some("engine") {
        argv.remove(0);
        run_engine(argv);
        return;
    }
    if argv.first().map(String::as_str) == Some("serve") {
        argv.remove(0);
        run_serve(argv);
        return;
    }
    if argv.first().map(String::as_str) == Some("parallel3d") {
        argv.remove(0);
        run_parallel3d(argv);
        return;
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cluster = build_cluster(&args);
    println!(
        "cluster: {} servers / {} GPUs ({})",
        cluster.instance_count(),
        cluster.gpu_count(),
        if args.tcp { "TCP" } else { "RDMA" }
    );
    let wants_telemetry = args.trace_out.is_some() || args.metrics_out.is_some();
    let telemetry = if wants_telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let hierarchical = if args.hierarchical {
        adapcc_synth::Hierarchical::On
    } else {
        adapcc_synth::Hierarchical::Auto
    };
    let run_start = std::time::Instant::now();
    let (topo, profile, control_secs) =
        profiled_with_telemetry(&cluster, args.seed, telemetry.clone());
    let mut runner = Runner::new(&cluster, &topo, &profile)
        .with_parallelism(args.parallelism)
        .with_solver(args.solver_chains, args.solver_threads)
        .with_hierarchical(hierarchical)
        .with_telemetry(telemetry.at_offset(control_secs));
    runner.seed = args.seed;
    if let Some(dir) = &args.plan_cache {
        runner = runner.with_plan_cache(adapcc_plancache::PlanCache::new(
            adapcc_plancache::PlanCacheConfig::on_disk(dir),
        ));
    }
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    if args.describe && args.system != System::Blink {
        let strategy = runner.strategy(args.system, args.primitive, args.tensor, &ranks);
        print!("{}", adapcc_synth::describe(&topo, &strategy));
    }
    let report = runner.run(
        args.system,
        args.primitive,
        args.tensor,
        &ranks,
        &Default::default(),
    );
    let sim_wall_ms = run_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "{} {} of {}: {} ({:.2} GB/s algorithm bandwidth, {:.0} ms wall)",
        args.system.name(),
        args.primitive,
        args.tensor,
        report.comm_time,
        report.algo_bw_gbytes,
        sim_wall_ms
    );
    // Counters must land in the sink before the metrics summary below
    // renders; the trace itself carries no cache-dependent spans, so it
    // stays byte-identical warm or cold.
    runner.export_plan_cache_counters();
    let cache_stats = runner.plan_cache_stats();
    if let Some(stats) = cache_stats {
        println!(
            "plan cache: {} hit(s), {} warm start(s), {} miss(es), {:.2}s modeled solve time saved",
            stats.hits,
            stats.warm_starts,
            stats.misses,
            stats.saved.as_secs()
        );
    }
    if let Some(path) = &args.trace_out {
        write_or_die(path, &telemetry.chrome_trace(), "trace");
        println!("trace written to {path} (load in chrome://tracing)");
    }
    if let Some(path) = &args.metrics_out {
        write_or_die(path, &telemetry.metrics_summary(), "metrics");
        println!("metrics written to {path}");
    }
    if let Some(path) = &args.bench_append {
        // One extra cold synthesis, timed on the host clock with a
        // throwaway telemetry sink for the synth.* counters. The wall
        // time is a property of this machine, never of the simulated
        // timeline, so it lives only in the bench record.
        let (solver_wall_ms, full_evals, delta_evals, chains) = if args.system == System::AdapCc {
            let probe = Telemetry::enabled();
            let mut timed = Runner::new(&cluster, &topo, &profile)
                .with_parallelism(args.parallelism)
                .with_solver(args.solver_chains, args.solver_threads)
                .with_hierarchical(hierarchical)
                .with_telemetry(probe.clone());
            timed.seed = args.seed;
            let start = std::time::Instant::now();
            let _ = timed.strategy(System::AdapCc, args.primitive, args.tensor, &ranks);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            (
                wall,
                probe.counter("synth.full_evals") as u64,
                probe.counter("synth.delta_evals") as u64,
                probe.counter("synth.chains") as u64,
            )
        } else {
            (0.0, 0, 0, 0)
        };
        // Engine throughput on the same cluster: a short storm so
        // BENCH rows carry events/sec alongside the solver numbers.
        let engine_events_per_sec = if cluster.instance_count() >= 2 {
            engine_storm(
                &cluster,
                4,
                adapcc_bench::engine_bench::StormMode::Wave,
                adapcc_bench::engine_bench::AllocMode::Auto,
            )
            .events_per_sec()
        } else {
            0.0
        };
        let rec = BenchRecord {
            system: args.system.name().to_string(),
            primitive: args.primitive.to_string(),
            servers: servers_spec(&args),
            tensor_mib: args.tensor.as_u64() / (1024 * 1024),
            parallelism: args.parallelism,
            comm_time_ms: report.comm_time.as_millis(),
            algo_bw_gbytes: report.algo_bw_gbytes,
            plan_cache_hits: cache_stats.map_or(0, |s| s.hits),
            plan_cache_misses: cache_stats.map_or(0, |s| s.misses),
            plan_cache_warm_starts: cache_stats.map_or(0, |s| s.warm_starts),
            solver_wall_ms,
            synth_full_evals: full_evals,
            synth_delta_evals: delta_evals,
            synth_chains: chains,
            hierarchical: args.hierarchical,
            sim_wall_ms,
            engine_events_per_sec,
        };
        if let Err(e) = rec.append_to(std::path::Path::new(path)) {
            eprintln!("cannot append bench record to {path}: {e}");
            std::process::exit(1);
        }
        println!("bench record appended to {path}");
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

fn servers_spec(args: &SimArgs) -> String {
    args.servers
        .iter()
        .map(|(kind, count)| {
            let name = match kind {
                ServerKind::A100 => "a100",
                ServerKind::V100 => "v100",
                ServerKind::H100 => "h100",
            };
            format!("{name}:{count}")
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn run_engine(argv: Vec<String>) {
    let args = match parse_engine_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cluster = adapcc_simnet::cluster::Cluster::homogeneous_a100(args.servers);
    let report = engine_storm(&cluster, args.waves, args.storm, args.alloc);
    let alloc_name = if report.incremental {
        "incremental"
    } else {
        "exact"
    };
    println!(
        "engine storm ({} / {} alloc): {} servers / {} GPUs, {} waves, {} transfers \
         -> {} events in {:.1} ms wall ({:.0} events/sec, {:.3} ms simulated, \
         {} fillings touching {} flows)",
        args.storm.as_str(),
        alloc_name,
        cluster.instance_count(),
        cluster.gpu_count(),
        args.waves,
        report.transfers,
        report.events,
        report.wall_ms,
        report.events_per_sec(),
        report.sim_ms,
        report.fillings,
        report.frontier_flows
    );
    if let Some(path) = &args.bench_append {
        let rec = adapcc_bench::record::EngineBenchRecord {
            servers: format!("a100:{}", args.servers),
            gpus: cluster.gpu_count(),
            waves: args.waves,
            storm: args.storm.as_str().into(),
            alloc: alloc_name.into(),
            transfers: report.transfers,
            events: report.events,
            sim_ms: report.sim_ms,
            wall_ms: report.wall_ms,
            events_per_sec: report.events_per_sec(),
            fillings: report.fillings,
            frontier_flows: report.frontier_flows,
            // The storm never synthesizes; the zero cache columns keep
            // engine rows schema-uniform with every other record.
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_cache_warm_starts: 0,
            hierarchical: false,
        };
        if let Err(e) = rec.append_to(std::path::Path::new(path)) {
            eprintln!("cannot append engine record to {path}: {e}");
            std::process::exit(1);
        }
        println!("engine record appended to {path}");
    }
}

fn run_serve(argv: Vec<String>) {
    let args = match parse_serve_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let workload = ServiceWorkload {
        jobs: args.jobs,
        threads: args.threads,
        repeat_ratio: args.repeat_ratio,
        shapes: args.shapes,
        seed: args.seed,
        shards: args.shards,
        byte_budget: args.budget_mib << 20,
        ..ServiceWorkload::default()
    };
    println!(
        "serve: {} jobs on {} threads, repeat ratio {:.2}, {} shapes, \
         {} shards / {} MiB budget",
        args.jobs, args.threads, args.repeat_ratio, args.shapes, args.shards, args.budget_mib
    );
    let r = run_service_bench(&workload);
    println!(
        "service:  {} requests in {:.1} ms -> {:.0} plans/sec \
         (hit {} / warm {} / cold {} / coalesced {}; p50 {:.0} us, p99 {:.0} us)",
        r.service.requests,
        r.service.wall_ms,
        r.service.plans_per_sec,
        r.service.hits,
        r.service.warm_starts,
        r.service.cold_solves,
        r.service.coalesced,
        r.service.p50_us,
        r.service.p99_us,
    );
    println!(
        "baseline: {} requests in {:.1} ms -> {:.0} plans/sec \
         (hit {} / warm {} / cold {}; p50 {:.0} us, p99 {:.0} us)",
        r.baseline.requests,
        r.baseline.wall_ms,
        r.baseline.plans_per_sec,
        r.baseline.hits,
        r.baseline.warm_starts,
        r.baseline.cold_solves,
        r.baseline.p50_us,
        r.baseline.p99_us,
    );
    println!(
        "store: {} entries / {} bytes, {} evictions; speedup {:.2}x",
        r.entries, r.bytes, r.evictions, r.speedup
    );
    if let Some(path) = &args.bench_append {
        let rec = adapcc_bench::record::ServiceBenchRecord {
            jobs: args.jobs,
            threads: args.threads,
            repeat_ratio: args.repeat_ratio,
            shapes: args.shapes,
            requests: r.service.requests,
            hits: r.service.hits,
            warm_starts: r.service.warm_starts,
            cold_solves: r.service.cold_solves,
            coalesced: r.service.coalesced,
            entries: r.entries,
            bytes: r.bytes,
            evictions: r.evictions,
            plans_per_sec: r.service.plans_per_sec,
            p50_us: r.service.p50_us,
            p99_us: r.service.p99_us,
            wall_ms: r.service.wall_ms,
            baseline_plans_per_sec: r.baseline.plans_per_sec,
            baseline_p50_us: r.baseline.p50_us,
            baseline_p99_us: r.baseline.p99_us,
            baseline_wall_ms: r.baseline.wall_ms,
            speedup: r.speedup,
        };
        if let Err(e) = rec.append_to(std::path::Path::new(path)) {
            eprintln!("cannot append service record to {path}: {e}");
            std::process::exit(1);
        }
        println!("service record appended to {path}");
    }
}

fn run_chaos(argv: Vec<String>) {
    let args = match parse_chaos_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cfg = ChaosConfig {
        servers: args.servers,
        tensor: ByteSize::from_kib(args.size_kib),
        horizon: SimDuration::from_millis(args.horizon_ms),
        ..Default::default()
    };
    println!(
        "chaos: {} seeds from {} on {} servers, {} KiB tensors, {} ms horizon",
        args.seeds, args.seed_base, args.servers, args.size_kib, args.horizon_ms
    );
    let summary = chaos::run_sweep(&cfg, args.seed_base, args.seeds, |r| {
        if args.verbose {
            println!(
                "  seed {:>4} ({} faults, {} iters): {:?}",
                r.seed, r.schedule_len, r.iterations, r.outcome
            );
        }
    });
    println!(
        "clean {} / recovered {} / classified {} / mismatched {} (of {})",
        summary.clean,
        summary.recovered,
        summary.classified,
        summary.mismatches.len(),
        summary.total
    );
    if !summary.mismatches.is_empty() {
        for m in &summary.mismatches {
            eprintln!("NUMERIC MISMATCH seed {}: {:?}", m.seed, m.outcome);
        }
        std::process::exit(1);
    }
}

fn run_churn(argv: Vec<String>) {
    let args = match parse_churn_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cfg = ChurnConfig {
        servers: args.servers,
        tensor: ByteSize::from_kib(args.size_kib),
        horizon: SimDuration::from_millis(args.horizon_ms),
        settle_iters: args.settle_iters,
        ..Default::default()
    };
    println!(
        "churn: {} seeds from {} on {} servers, {} KiB tensors, {} ms horizon, {} settle iters",
        args.seeds, args.seed_base, args.servers, args.size_kib, args.horizon_ms, args.settle_iters
    );
    let start = std::time::Instant::now();
    let summary = churn::run_sweep(&cfg, args.seed_base, args.seeds, |r| {
        if args.verbose {
            println!(
                "  seed {:>4} ({} events, {} iters, {} errors, {} rejoins): {:?}",
                r.seed, r.schedule_len, r.iterations, r.errors, r.rejoins, r.outcome
            );
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "converged {} / classified {} / violations {} (of {}); {} rejoins, {} errors absorbed",
        summary.converged,
        summary.classified,
        summary.violations.len(),
        summary.total,
        summary.rejoins,
        summary.errors
    );
    println!(
        "plan cache over the sweep: {} hit(s), {} warm start(s), {} miss(es)",
        summary.plan_hits, summary.plan_warm_starts, summary.plan_misses
    );
    if let Some(path) = &args.bench_append {
        let rec = adapcc_bench::record::ChurnBenchRecord {
            seeds: args.seeds,
            seed_base: args.seed_base,
            servers: args.servers,
            size_kib: args.size_kib,
            horizon_ms: args.horizon_ms,
            settle_iters: args.settle_iters,
            converged: summary.converged,
            classified: summary.classified,
            violations: summary.violations.len(),
            rejoins: summary.rejoins,
            errors: summary.errors,
            plan_cache_hits: summary.plan_hits,
            plan_cache_misses: summary.plan_misses,
            plan_cache_warm_starts: summary.plan_warm_starts,
            hierarchical: false,
            wall_ms,
        };
        if let Err(e) = rec.append_to(std::path::Path::new(path)) {
            eprintln!("cannot append churn record to {path}: {e}");
            std::process::exit(1);
        }
        println!("churn record appended to {path}");
    }
    if !summary.violations.is_empty() {
        for v in &summary.violations {
            eprintln!("INVARIANT VIOLATION seed {}: {:?}", v.seed, v.outcome);
        }
        std::process::exit(1);
    }
}

fn run_parallel3d(argv: Vec<String>) {
    use adapcc_bench::parallel_bench::{self, ParallelConfig};
    use adapcc_train::parallel::ParallelLayout;
    let args = match parse_parallel3d_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let dp = args.dp().expect("validated at parse time");
    let cluster = adapcc_simnet::cluster::Cluster::fat_tree(args.servers, args.gpus);
    println!(
        "parallel3d: {} servers x {} GPUs fat tree, dp={} tp={} pp={}, {} MiB model, {} rounds max",
        args.servers, args.gpus, dp, args.tp, args.pp, args.model_mib, args.rounds
    );
    let start = std::time::Instant::now();
    let (topo, profile, _) = profiled_with_telemetry(&cluster, args.seed, Telemetry::disabled());
    let cfg = ParallelConfig {
        servers: args.servers,
        gpus_per_server: args.gpus,
        layout: ParallelLayout::new(dp, args.tp, args.pp),
        model: ByteSize::from_mib(args.model_mib),
        parallelism: args.parallelism,
        seed: args.seed,
        synth: adapcc_synth::solver::SynthConfig::default(),
        max_rounds: args.rounds,
    };
    let report = parallel_bench::run_parallel3d(&cluster, &topo, &profile, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if args.verbose {
        for p in &report.phases {
            println!(
                "  {:<14} {:>3} groups: executed {:.3} ms oblivious vs {:.3} ms aware \
                 (modeled {:.3} vs {:.3} ms, {} sweeps)",
                p.name,
                p.groups,
                p.oblivious_executed_s * 1e3,
                p.aware_executed_s * 1e3,
                p.oblivious_modeled_s * 1e3,
                p.aware_modeled_s * 1e3,
                p.rounds
            );
        }
    }
    let obl = report.oblivious_executed_s();
    let aware = report.aware_executed_s();
    println!(
        "executed step: {:.3} ms oblivious vs {:.3} ms contention-aware ({:+.1}%); \
         modeled {:.3} vs {:.3} ms ({:.0} ms wall)",
        obl * 1e3,
        aware * 1e3,
        (aware / obl - 1.0) * 100.0,
        report.oblivious_modeled_s() * 1e3,
        report.aware_modeled_s() * 1e3,
        wall_ms
    );
    if let Some(path) = &args.bench_append {
        let rec = adapcc_bench::record::ParallelBenchRecord {
            servers: args.servers,
            gpus_per_server: args.gpus,
            gpus: args.servers * args.gpus,
            dp,
            tp: args.tp,
            pp: args.pp,
            model_mib: args.model_mib,
            parallelism: args.parallelism,
            seed: args.seed,
            phases: report.phases.len(),
            rounds: report.phases.iter().map(|p| p.rounds).sum(),
            oblivious_modeled_s: report.oblivious_modeled_s(),
            aware_modeled_s: report.aware_modeled_s(),
            oblivious_executed_s: obl,
            aware_executed_s: aware,
            wall_ms,
        };
        if let Err(e) = rec.append_to(std::path::Path::new(path)) {
            eprintln!("could not append bench record to {path}: {e}");
            std::process::exit(1);
        }
        println!("appended bench record to {path}");
    }
}
