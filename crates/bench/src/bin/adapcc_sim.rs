//! `adapcc-sim`: run one collective on a simulated cluster from the
//! command line.
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin adapcc_sim -- \
//!     --servers a100:4,v100:2 --primitive allreduce --size-mib 256 --describe
//! ```

use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::cli::{build_cluster, parse_args};
use adapcc_bench::harness::profiled;
use adapcc_simnet::cluster::Rank;

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cluster = build_cluster(&args);
    println!(
        "cluster: {} servers / {} GPUs ({})",
        cluster.instance_count(),
        cluster.gpu_count(),
        if args.tcp { "TCP" } else { "RDMA" }
    );
    let (topo, profile) = profiled(&cluster, 1);
    let runner = Runner::new(&cluster, &topo, &profile).with_parallelism(args.parallelism);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    if args.describe && args.system != System::Blink {
        let strategy = runner.strategy(args.system, args.primitive, args.tensor, &ranks);
        print!("{}", adapcc_synth::describe(&topo, &strategy));
    }
    let report = runner.run(args.system, args.primitive, args.tensor, &ranks, &Default::default());
    println!(
        "{} {} of {}: {} ({:.2} GB/s algorithm bandwidth)",
        args.system.name(),
        args.primitive,
        args.tensor,
        report.comm_time,
        report.algo_bw_gbytes
    );
}
