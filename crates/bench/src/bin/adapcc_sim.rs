//! `adapcc-sim`: run one collective on a simulated cluster from the
//! command line.
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin adapcc_sim -- \
//!     --servers a100:4,v100:2 --primitive allreduce --size-mib 256 --describe
//! ```

use adapcc_baselines::runner::{Runner, System};
use adapcc_bench::chaos::{self, ChaosConfig};
use adapcc_bench::cli::{build_cluster, parse_args, parse_chaos_args};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_bench::harness::profiled;
use adapcc_simnet::cluster::Rank;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("chaos") {
        argv.remove(0);
        run_chaos(argv);
        return;
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cluster = build_cluster(&args);
    println!(
        "cluster: {} servers / {} GPUs ({})",
        cluster.instance_count(),
        cluster.gpu_count(),
        if args.tcp { "TCP" } else { "RDMA" }
    );
    let (topo, profile) = profiled(&cluster, 1);
    let runner = Runner::new(&cluster, &topo, &profile).with_parallelism(args.parallelism);
    let ranks: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();
    if args.describe && args.system != System::Blink {
        let strategy = runner.strategy(args.system, args.primitive, args.tensor, &ranks);
        print!("{}", adapcc_synth::describe(&topo, &strategy));
    }
    let report = runner.run(args.system, args.primitive, args.tensor, &ranks, &Default::default());
    println!(
        "{} {} of {}: {} ({:.2} GB/s algorithm bandwidth)",
        args.system.name(),
        args.primitive,
        args.tensor,
        report.comm_time,
        report.algo_bw_gbytes
    );
}

fn run_chaos(argv: Vec<String>) {
    let args = match parse_chaos_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("adapcc-sim") { 0 } else { 2 });
        }
    };
    let cfg = ChaosConfig {
        servers: args.servers,
        tensor: ByteSize::from_kib(args.size_kib),
        horizon: SimDuration::from_millis(args.horizon_ms),
        ..Default::default()
    };
    println!(
        "chaos: {} seeds from {} on {} servers, {} KiB tensors, {} ms horizon",
        args.seeds, args.seed_base, args.servers, args.size_kib, args.horizon_ms
    );
    let summary = chaos::run_sweep(&cfg, args.seed_base, args.seeds, |r| {
        if args.verbose {
            println!(
                "  seed {:>4} ({} faults, {} iters): {:?}",
                r.seed, r.schedule_len, r.iterations, r.outcome
            );
        }
    });
    println!(
        "clean {} / recovered {} / classified {} / mismatched {} (of {})",
        summary.clean,
        summary.recovered,
        summary.classified,
        summary.mismatches.len(),
        summary.total
    );
    if !summary.mismatches.is_empty() {
        for m in &summary.mismatches {
            eprintln!("NUMERIC MISMATCH seed {}: {:?}", m.seed, m.outcome);
        }
        std::process::exit(1);
    }
}
