//! Regenerates the paper's tables and figures on the simulated
//! testbed. Run everything or name specific figures:
//!
//! ```text
//! cargo run --release -p adapcc-bench --bin figures
//! cargo run --release -p adapcc-bench --bin figures -- fig11 fig12
//! cargo run --release -p adapcc-bench --bin figures -- --write-md
//! ```
//!
//! `--write-md` additionally rewrites EXPERIMENTS.md in the repository
//! root with the freshly measured results.

use std::fmt::Write as _;

use adapcc_bench::{figure_names, run_figure};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let write_md = args.iter().any(|a| a == "--write-md");
    args.retain(|a| a != "--write-md");
    let targets: Vec<&str> = if args.is_empty() {
        figure_names()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut md = String::new();
    for (i, name) in targets.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("================================================================");
        let start = std::time::Instant::now();
        let lines = run_figure(name);
        for line in &lines {
            println!("{line}");
        }
        eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f64());
        let _ = writeln!(md, "\n## {name}\n\n```text");
        for line in &lines {
            let _ = writeln!(md, "{line}");
        }
        let _ = writeln!(md, "```");
    }
    if write_md {
        let header = include_str!("../experiments_header.md");
        let body = format!("{header}{md}");
        std::fs::write(md_path(), body).expect("write EXPERIMENTS.md");
        eprintln!("wrote {}", md_path());
    }
}

/// EXPERIMENTS.md lives at the workspace root, two levels above this
/// crate.
fn md_path() -> &'static str {
    "EXPERIMENTS.md"
}
