//! 3D-parallel (DP × TP × PP) and MoE expert-parallel workloads.
//!
//! Real large-model training runs several parallelism axes at once:
//! tensor parallelism inside a layer, pipeline parallelism across
//! layer groups, data parallelism across replicas, and — for
//! mixture-of-experts models — expert parallelism's all-to-all token
//! dispatch. Each axis communicates over its own process groups, and
//! on a fat-tree fabric those groups *share NICs*: every concurrent
//! collective contends for the same server uplinks.
//!
//! [`ParallelLayout`] maps the classic `(data, pipe, tensor)`
//! coordinate grid onto ranks (`rank = (d·pp + p)·tp + t`, data
//! outermost / tensor innermost, the Megatron-LM convention that keeps
//! TP groups on neighbouring ranks and hence inside one server) and
//! builds the per-axis [`ProcessGroup`]s. [`ParallelLayout::three_d_step`]
//! composes them into the communication phases of one training step;
//! the bench crate lowers each phase's groups into concurrent
//! synthesis requests and compares group-oblivious against
//! contention-aware co-scheduling.

use adapcc_simnet::cluster::Rank;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::group::{GroupAxis, ProcessGroup};
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::SynthRequest;

/// A `(dp, tp, pp)` parallelism grid over `dp·tp·pp` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelLayout {
    /// Data-parallel replicas (outermost axis).
    pub dp: usize,
    /// Tensor-parallel degree (innermost axis: TP groups are
    /// contiguous ranks, so they stay within one server when `tp`
    /// divides the per-server GPU count).
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
}

impl ParallelLayout {
    /// A layout with the given degrees; every axis must be ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    pub fn new(dp: usize, tp: usize, pp: usize) -> Self {
        assert!(dp >= 1 && tp >= 1 && pp >= 1, "degenerate layout");
        ParallelLayout { dp, tp, pp }
    }

    /// Total ranks the layout spans.
    pub fn world_size(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// The rank at grid coordinate `(d, p, t)`.
    pub fn rank(&self, d: usize, p: usize, t: usize) -> Rank {
        debug_assert!(d < self.dp && p < self.pp && t < self.tp);
        Rank((d * self.pp + p) * self.tp + t)
    }

    /// Tensor-parallel groups (axis [`GroupAxis::Tensor`]): one per
    /// `(d, p)` coordinate, spanning the `tp` contiguous ranks of a
    /// layer shard.
    pub fn tp_groups(&self) -> Vec<ProcessGroup> {
        let mut out = Vec::with_capacity(self.dp * self.pp);
        for d in 0..self.dp {
            for p in 0..self.pp {
                let members: Vec<Rank> = (0..self.tp).map(|t| self.rank(d, p, t)).collect();
                out.push(group(GroupAxis::Tensor, &members));
            }
        }
        out
    }

    /// Data-parallel groups (axis [`GroupAxis::Data`]): one per
    /// `(p, t)` coordinate, striding across replicas — on a fat tree
    /// these always cross servers and share every NIC with each other.
    pub fn dp_groups(&self) -> Vec<ProcessGroup> {
        let mut out = Vec::with_capacity(self.pp * self.tp);
        for p in 0..self.pp {
            for t in 0..self.tp {
                let members: Vec<Rank> = (0..self.dp).map(|d| self.rank(d, p, t)).collect();
                out.push(group(GroupAxis::Data, &members));
            }
        }
        out
    }

    /// Pipeline boundary pairs (axis [`GroupAxis::Pipeline`]): one
    /// two-rank group per `(d, t, p→p+1)` stage boundary, carrying the
    /// activation / gradient hand-off. Empty when `pp == 1`.
    pub fn pp_pairs(&self) -> Vec<ProcessGroup> {
        let mut out = Vec::new();
        for d in 0..self.dp {
            for t in 0..self.tp {
                for p in 0..self.pp.saturating_sub(1) {
                    let members = [self.rank(d, p, t), self.rank(d, p + 1, t)];
                    out.push(group(GroupAxis::Pipeline, &members));
                }
            }
        }
        out
    }

    /// Expert-parallel groups (axis [`GroupAxis::Expert`]): one per
    /// pipeline stage, spanning every rank of that stage (`dp·tp`
    /// ranks) — the MoE token all-to-all exchanges across replicas
    /// *and* tensor shards of the stage that hosts the experts.
    pub fn ep_groups(&self) -> Vec<ProcessGroup> {
        let mut out = Vec::with_capacity(self.pp);
        for p in 0..self.pp {
            let mut members = Vec::with_capacity(self.dp * self.tp);
            for d in 0..self.dp {
                for t in 0..self.tp {
                    members.push(self.rank(d, p, t));
                }
            }
            out.push(group(GroupAxis::Expert, &members));
        }
        out
    }

    /// The communication phases of one 3D-parallel + MoE training
    /// step over a model of `model` parameter bytes, in execution
    /// order: TP activation all-reduces, MoE token all-to-alls,
    /// pipeline boundary hand-offs, DP gradient all-reduces. Phases
    /// whose axis is degenerate (`tp == 1`, `pp == 1`) are omitted.
    pub fn three_d_step(&self, model: ByteSize) -> Vec<StepPhase> {
        // Per-rank tensor sizes: parameters shard over tp·pp, so the
        // DP gradient exchange moves model/(tp·pp) per rank; the TP
        // activation all-reduce and the PP boundary hand-off move
        // activation-sized tensors (a fixed fraction of the shard);
        // the MoE dispatch moves a microbatch of routed tokens.
        let shard = ByteSize::from_bytes((model.as_u64() / (self.tp * self.pp) as u64).max(1));
        let activation = ByteSize::from_bytes((shard.as_u64() / 4).max(1));
        let dispatch = ByteSize::from_bytes((shard.as_u64() / 8).max(1));
        let mut phases = Vec::new();
        if self.tp > 1 {
            phases.push(StepPhase {
                name: "tp.allreduce",
                primitive: Primitive::AllReduce,
                tensor: activation,
                groups: self.tp_groups(),
            });
        }
        phases.push(StepPhase {
            name: "moe.alltoall",
            primitive: Primitive::AllToAll,
            tensor: dispatch,
            groups: self.ep_groups(),
        });
        if self.pp > 1 {
            phases.push(StepPhase {
                name: "pp.boundary",
                primitive: Primitive::Broadcast,
                tensor: activation,
                groups: self.pp_pairs(),
            });
        }
        phases.push(StepPhase {
            name: "dp.allreduce",
            primitive: Primitive::AllReduce,
            tensor: shard,
            groups: self.dp_groups(),
        });
        phases
    }
}

fn group(axis: GroupAxis, members: &[Rank]) -> ProcessGroup {
    ProcessGroup::canonical_with_axis(axis, members).expect("layout groups are never empty")
}

/// One communication phase of a 3D-parallel step: every group in the
/// phase runs `primitive` at the same time, contending for shared
/// links.
#[derive(Debug, Clone)]
pub struct StepPhase {
    /// Phase label (`tp.allreduce`, `moe.alltoall`, `pp.boundary`,
    /// `dp.allreduce`).
    pub name: &'static str,
    /// The collective every group of the phase runs.
    pub primitive: Primitive,
    /// Per-rank tensor size.
    pub tensor: ByteSize,
    /// The concurrent process groups.
    pub groups: Vec<ProcessGroup>,
}

impl StepPhase {
    /// Lowers the phase into one [`SynthRequest`] per group, suitable
    /// for [`adapcc_synth::coschedule::co_schedule`]. Rooted
    /// primitives root at the group's first member (for a pipeline
    /// boundary that is the sending stage); seeds are the group index
    /// so concurrent solves explore independently yet deterministically.
    pub fn synth_requests(&self, parallelism: usize) -> Vec<SynthRequest> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut req = SynthRequest::new(
                    self.primitive,
                    self.tensor,
                    parallelism,
                    g.members().to_vec(),
                );
                if matches!(self.primitive, Primitive::Broadcast | Primitive::Reduce) {
                    req.root = Some(g.members()[0]);
                }
                req.seed = i as u64;
                req
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn axes_partition_the_world() {
        let l = ParallelLayout::new(2, 2, 2);
        assert_eq!(l.world_size(), 8);
        for groups in [l.tp_groups(), l.dp_groups(), l.ep_groups()] {
            let mut seen = BTreeSet::new();
            for g in &groups {
                for r in g.members() {
                    assert!(seen.insert(*r), "{r} in two groups of one axis");
                }
            }
            assert_eq!(seen.len(), 8, "axis covers the world exactly once");
        }
    }

    #[test]
    fn tp_groups_are_contiguous_and_dp_groups_stride() {
        let l = ParallelLayout::new(2, 2, 2);
        let tp = l.tp_groups();
        assert_eq!(tp[0].members(), &[Rank(0), Rank(1)]);
        assert_eq!(tp[1].members(), &[Rank(2), Rank(3)]);
        let dp = l.dp_groups();
        // Replica stride is tp·pp = 4.
        assert_eq!(dp[0].members(), &[Rank(0), Rank(4)]);
    }

    #[test]
    fn pp_pairs_link_adjacent_stages() {
        let l = ParallelLayout::new(1, 2, 3);
        let pairs = l.pp_pairs();
        assert_eq!(pairs.len(), 2 * 2, "tp lanes × boundaries");
        // Lane t=0: stage 0 rank 0 → stage 1 rank 2 → stage 2 rank 4.
        assert_eq!(pairs[0].members(), &[Rank(0), Rank(2)]);
        assert_eq!(pairs[1].members(), &[Rank(2), Rank(4)]);
        assert!(ParallelLayout::new(2, 2, 1).pp_pairs().is_empty());
    }

    #[test]
    fn ep_groups_span_each_stage() {
        let l = ParallelLayout::new(2, 2, 2);
        let ep = l.ep_groups();
        assert_eq!(ep.len(), 2);
        assert_eq!(ep[0].members(), &[Rank(0), Rank(1), Rank(4), Rank(5)]);
        assert_eq!(ep[1].members(), &[Rank(2), Rank(3), Rank(6), Rank(7)]);
    }

    #[test]
    fn step_phases_compose_and_lower_to_requests() {
        let l = ParallelLayout::new(2, 2, 2);
        let phases = l.three_d_step(ByteSize::from_mib(512));
        let names: Vec<&str> = phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "tp.allreduce",
                "moe.alltoall",
                "pp.boundary",
                "dp.allreduce"
            ]
        );
        for phase in &phases {
            let reqs = phase.synth_requests(2);
            assert_eq!(reqs.len(), phase.groups.len());
            for (req, g) in reqs.iter().zip(&phase.groups) {
                assert_eq!(req.participants, g.members());
                assert_eq!(req.primitive, phase.primitive);
            }
        }
        // Rooted hand-offs root at the sending (earlier) stage.
        let pp = &phases[2];
        assert!(pp
            .synth_requests(2)
            .iter()
            .all(|r| r.root == Some(r.participants[0])));
        // Degenerate axes drop their phases.
        let flat = ParallelLayout::new(4, 1, 1).three_d_step(ByteSize::from_mib(64));
        let flat_names: Vec<&str> = flat.iter().map(|p| p.name).collect();
        assert_eq!(flat_names, ["moe.alltoall", "dp.allreduce"]);
    }
}
