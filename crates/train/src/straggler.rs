//! Computation-straggler and interference models (paper Sec. II-C and
//! VI-D "Online Serving Interference").
//!
//! Per iteration, every worker's tensor-ready time is its mean compute
//! time (by GPU generation and batch) scaled by a heavy-tailed draw;
//! co-located CPU serving workloads add a multiplicative slowdown to
//! the GPUs they interfere with. Both are seeded and reproducible.

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::rng::{heavy_tail_factor, seeded_rng};
use adapcc_simnet::time::SimTime;

use crate::workload::DnnModel;

/// The per-iteration ready-time generator.
#[derive(Debug)]
pub struct StragglerModel {
    rng: ChaCha8Rng,
    /// GPUs currently slowed by co-located CPU workloads, with their
    /// slowdown factor (> 1).
    interference: BTreeMap<usize, f64>,
}

impl StragglerModel {
    /// A seeded model with no interference.
    pub fn new(seed: u64) -> Self {
        StragglerModel {
            rng: seeded_rng(seed ^ 0x57A6_u64.wrapping_mul(7)),
            interference: BTreeMap::new(),
        }
    }

    /// Applies a CPU-interference episode: each rank in `slowed` is
    /// slowed by `factor` until the next call (paper: 0-2 GPUs per
    /// server re-chosen every 5 minutes).
    pub fn set_interference(&mut self, slowed: &[Rank], factor: f64) {
        self.interference.clear();
        for r in slowed {
            self.interference.insert(r.0, factor.max(1.0));
        }
    }

    /// Translates a CPU utilization level (0-400 %) of a co-located
    /// online task into the GPU compute slowdown it induces (cache and
    /// memory-bandwidth contention).
    pub fn interference_slowdown(level_percent: f64) -> f64 {
        1.0 + 0.25 * (level_percent / 100.0)
    }

    /// Draws every worker's tensor-ready time for one iteration.
    pub fn ready_times(
        &mut self,
        cluster: &Cluster,
        model: DnnModel,
        batch: usize,
    ) -> BTreeMap<Rank, SimTime> {
        let sigma = model.jitter_sigma(batch);
        let mut out = BTreeMap::new();
        for r in 0..cluster.gpu_count() {
            let rank = Rank(r);
            let (inst, _) = cluster.locate(rank);
            let gen = cluster.spec(inst).gpu;
            let mean = model.compute_time(batch, gen).as_secs();
            let noise = heavy_tail_factor(&mut self.rng, sigma);
            let slow = self.interference.get(&r).copied().unwrap_or(1.0);
            out.insert(rank, SimTime::from_secs(mean * noise * slow));
        }
        out
    }

    /// Picks 0-2 GPUs per instance to interfere with (the paper's
    /// episode scheme) and applies the slowdown for `level_percent`.
    pub fn roll_interference_episode(&mut self, cluster: &Cluster, level_percent: f64) {
        let mut slowed = Vec::new();
        for i in 0..cluster.instance_count() {
            let inst = adapcc_simnet::cluster::InstanceId(i);
            let n = cluster.gpus_on(inst);
            let k = self.rng.gen_range(0..=2usize.min(n));
            let mut locals: Vec<usize> = (0..n).collect();
            for j in 0..k {
                let pick = self.rng.gen_range(j..locals.len());
                locals.swap(j, pick);
                slowed.push(cluster.rank_of(inst, locals[j]));
            }
        }
        let factor = Self::interference_slowdown(level_percent);
        self.set_interference(&slowed, factor);
    }
}

/// The paper's Fig. 3(b) metric: how long the fastest worker waits for
/// the slowest, relative to the actual communication time.
pub fn wait_time_ratio(ready: &BTreeMap<Rank, SimTime>, comm_actual_secs: f64) -> f64 {
    if ready.is_empty() || comm_actual_secs <= 0.0 {
        return 0.0;
    }
    let first = ready.values().copied().min().expect("non-empty");
    let last = ready.values().copied().max().expect("non-empty");
    last.duration_since(first).as_secs() / comm_actual_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_ready_times_split_by_generation() {
        let c = Cluster::paper_testbed();
        let mut m = StragglerModel::new(1);
        let ready = m.ready_times(&c, DnnModel::Gpt2, 16);
        // V100 ranks (16..24) are systematically slower.
        let a100_mean: f64 = (0..16).map(|r| ready[&Rank(r)].as_secs()).sum::<f64>() / 16.0;
        let v100_mean: f64 = (16..24).map(|r| ready[&Rank(r)].as_secs()).sum::<f64>() / 8.0;
        assert!(v100_mean > a100_mean * 1.5, "a={a100_mean} v={v100_mean}");
    }

    #[test]
    fn interference_slows_chosen_ranks() {
        let c = Cluster::homogeneous_a100(1);
        let mut m = StragglerModel::new(1);
        m.set_interference(&[Rank(2)], 1.5);
        // Average over draws to see through the jitter.
        let mut slowed = 0.0;
        let mut others = 0.0;
        for _ in 0..200 {
            let ready = m.ready_times(&c, DnnModel::Vit, 128);
            slowed += ready[&Rank(2)].as_secs();
            others += ready[&Rank(0)].as_secs();
        }
        assert!(slowed / others > 1.4, "{}", slowed / others);
    }

    #[test]
    fn interference_levels_monotone() {
        assert!(
            StragglerModel::interference_slowdown(400.0)
                > StragglerModel::interference_slowdown(100.0)
        );
        assert_eq!(StragglerModel::interference_slowdown(0.0), 1.0);
    }

    #[test]
    fn episode_rolls_at_most_two_per_instance() {
        let c = Cluster::homogeneous_a100(4);
        let mut m = StragglerModel::new(5);
        m.roll_interference_episode(&c, 200.0);
        for i in 0..4 {
            let inst = adapcc_simnet::cluster::InstanceId(i);
            let count = (0..c.gpus_on(inst))
                .filter(|l| m.interference.contains_key(&c.rank_of(inst, *l).0))
                .count();
            assert!(count <= 2);
        }
    }

    #[test]
    fn wait_ratio_definition() {
        let mut ready = BTreeMap::new();
        ready.insert(Rank(0), SimTime::from_secs(1.0));
        ready.insert(Rank(1), SimTime::from_secs(1.3));
        assert!((wait_time_ratio(&ready, 1.0) - 0.3).abs() < 1e-12);
        assert_eq!(wait_time_ratio(&BTreeMap::new(), 1.0), 0.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let c = Cluster::paper_testbed();
        let a = StragglerModel::new(9).ready_times(&c, DnnModel::Vgg16, 128);
        let b = StragglerModel::new(9).ready_times(&c, DnnModel::Vgg16, 128);
        assert_eq!(a, b);
    }
}
