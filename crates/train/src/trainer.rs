//! The data-parallel training loop driving the communication backends
//! (paper Sec. VI-D).
//!
//! Each iteration draws per-worker tensor-ready times from the
//! straggler model, runs the model's dominant collective under the
//! selected backend, and records the paper's metrics: per-iteration
//! communication time (waiting included), wait-time ratio (Fig. 3(b)),
//! relay decisions (Fig. 15), iteration time and training throughput
//! (Figs. 14, 16, 17).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use adapcc::{AdapCC, Decision, InitOptions};
use adapcc_baselines::runner::{Runner, System};
use adapcc_profile::profiler::{LinkProfile, Profiler};
use adapcc_simnet::cluster::{Cluster, LinkId, Rank};
use adapcc_simnet::time::SimDuration;
use adapcc_synth::primitive::Primitive;
use adapcc_topo::detect::Detector;
use adapcc_topo::logical::LogicalTopology;

use crate::straggler::{wait_time_ratio, StragglerModel};
use crate::workload::DnnModel;

/// Which communication backend trains the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// AdapCC with adaptive relay control.
    AdapCcAdaptive,
    /// AdapCC strategies but always waiting for every worker
    /// (isolates the synthesized graphs from the relay mechanism).
    AdapCcWaitAll,
    /// One of the baseline systems (always wait-all).
    Baseline(System),
}

impl Backend {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Backend::AdapCcAdaptive => "AdapCC".into(),
            Backend::AdapCcWaitAll => "AdapCC-wait".into(),
            Backend::Baseline(s) => s.name().into(),
        }
    }
}

/// Training-run parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// The DNN workload.
    pub model: DnnModel,
    /// Per-GPU batch size.
    pub batch: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Backend under test.
    pub backend: Backend,
    /// RNG seed.
    pub seed: u64,
    /// CPU-interference level (0 disables; paper Fig. 18(b)).
    pub interference_percent: f64,
    /// Iterations between interference episode re-rolls.
    pub interference_period: usize,
    /// Live capacity factors applied to the fabric (volatile network).
    pub fabric_factors: Vec<(LinkId, f64)>,
}

impl TrainConfig {
    /// A run of `iterations` iterations of `model` under `backend`
    /// with the paper's default batch size.
    pub fn new(model: DnnModel, backend: Backend, iterations: usize) -> Self {
        TrainConfig {
            model,
            batch: model.default_batch(),
            iterations,
            backend,
            seed: 0,
            interference_percent: 0.0,
            interference_period: 20,
            fabric_factors: Vec::new(),
        }
    }

    /// Overrides the per-GPU batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Enables CPU interference at the given level.
    pub fn with_interference(mut self, percent: f64) -> Self {
        self.interference_percent = percent;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-iteration measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationStat {
    /// Communication time including waiting (paper's metric).
    pub comm_secs: f64,
    /// Actual communication time once transfers began.
    pub comm_actual_secs: f64,
    /// Wait-time ratio (Fig. 3(b)).
    pub wait_ratio: f64,
    /// Iteration wall time (compute overlap + communication).
    pub iteration_secs: f64,
    /// Whether a partial (relay) collective ran.
    pub partial: bool,
    /// Relays chosen this iteration.
    pub relays: Vec<usize>,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-iteration measurements.
    pub iterations: Vec<IterationStat>,
    /// Total simulated time.
    pub makespan: SimDuration,
    /// Samples per second: `global batch / mean iteration time`.
    pub throughput: f64,
    /// Relay probability per rank (Fig. 15), when AdapCC ran.
    pub relay_probability: BTreeMap<usize, f64>,
    /// Mean communication seconds per iteration.
    pub mean_comm_secs: f64,
}

/// Runs one training configuration on a cluster.
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn train(cluster: &Cluster, config: &TrainConfig) -> TrainReport {
    assert!(config.iterations > 0, "need at least one iteration");
    let mut stragglers = StragglerModel::new(config.seed);
    let tensor = config.model.tensor_size();
    let primitive = config.model.primitive();
    let workers: Vec<Rank> = (0..cluster.gpu_count()).map(Rank).collect();

    // Backend state.
    let mut session: Option<AdapCC<'_>> = None;
    let mut baseline: Option<(LogicalTopology, LinkProfile, f64)> = None;
    match config.backend {
        Backend::AdapCcAdaptive | Backend::AdapCcWaitAll => {
            let mut cc = AdapCC::init(
                cluster,
                InitOptions {
                    seed: config.seed,
                    ..Default::default()
                },
            );
            cc.setup();
            cc.set_fabric_factors(config.fabric_factors.clone());
            session = Some(cc);
        }
        Backend::Baseline(sys) => {
            let topo = Detector::new(cluster, config.seed)
                .run()
                .logical_topology(cluster);
            let profile = Profiler::new(cluster, &topo, config.seed).run().links;
            // Baseline collectives are deterministic: measure the
            // zero-skew execution once and gate it on the slowest
            // worker each iteration.
            let runner =
                Runner::new(cluster, &topo, &profile).with_capacity_factors(&config.fabric_factors);
            let exec_secs = runner
                .run(sys, primitive, tensor, &workers, &BTreeMap::new())
                .comm_time
                .as_secs();
            baseline = Some((topo, profile, exec_secs));
        }
    }

    let mut iterations = Vec::with_capacity(config.iterations);
    let mut makespan = 0.0f64;
    for it in 0..config.iterations {
        if config.interference_percent > 0.0 && it % config.interference_period == 0 {
            stragglers.roll_interference_episode(cluster, config.interference_percent);
        }
        let ready = stragglers.ready_times(cluster, config.model, config.batch);
        let first = ready
            .values()
            .copied()
            .min()
            .expect("workers exist")
            .as_secs();
        let last = ready
            .values()
            .copied()
            .max()
            .expect("workers exist")
            .as_secs();

        let (finish, comm_secs, partial, relays) = match (&mut session, &baseline, config.backend) {
            (Some(cc), _, Backend::AdapCcAdaptive) => {
                let rep = match primitive {
                    Primitive::AllToAll => cc.alltoall(tensor, &ready, None),
                    _ => cc.allreduce_adaptive(tensor, &ready, None),
                }
                .expect("healthy fabric");
                let (partial, relays) = match &rep.decision {
                    Decision::Partial { relays, .. } => {
                        (true, relays.iter().map(|r| r.0).collect())
                    }
                    Decision::WaitAll { .. } => (false, Vec::new()),
                };
                (
                    rep.finish.as_secs(),
                    rep.comm_time.as_secs(),
                    partial,
                    relays,
                )
            }
            (Some(cc), _, Backend::AdapCcWaitAll) => {
                let rep = match primitive {
                    Primitive::AllToAll => cc.alltoall(tensor, &ready, None),
                    _ => cc.allreduce(tensor, &ready, None),
                }
                .expect("healthy fabric");
                (
                    rep.finish.as_secs(),
                    rep.comm_time.as_secs(),
                    false,
                    Vec::new(),
                )
            }
            (_, Some((_, _, exec_secs)), Backend::Baseline(_)) => {
                let finish = last + exec_secs;
                (finish, finish - first, false, Vec::new())
            }
            _ => unreachable!("backend state initialized above"),
        };

        let comm_actual = (finish - last).max(1e-9);
        let iteration_secs = finish.max(last);
        makespan += iteration_secs;
        iterations.push(IterationStat {
            comm_secs,
            comm_actual_secs: comm_actual,
            wait_ratio: wait_time_ratio(&ready, comm_actual),
            iteration_secs,
            partial,
            relays,
        });
        let _ = first;
    }

    let mean_comm = iterations.iter().map(|i| i.comm_secs).sum::<f64>() / iterations.len() as f64;
    let mean_iter =
        iterations.iter().map(|i| i.iteration_secs).sum::<f64>() / iterations.len() as f64;
    let global_batch = (config.batch * cluster.gpu_count()) as f64;
    let relay_probability = match &session {
        Some(cc) => {
            let stats = cc.relay_stats();
            (0..cluster.gpu_count())
                .map(|r| (r, stats.relay_probability(Rank(r))))
                .collect()
        }
        None => BTreeMap::new(),
    };
    TrainReport {
        iterations,
        makespan: SimDuration::from_secs(makespan),
        throughput: global_batch / mean_iter,
        relay_probability,
        mean_comm_secs: mean_comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_is_competitive_with_wait_all_under_heterogeneity() {
        // Ski rental is 2-competitive: with a systematic compute skew
        // (every V100 is ~2x slower every iteration) the right call is
        // usually to wait, and the adaptive policy must track that
        // within its competitive margin while occasionally trading a
        // partial collective against tail stragglers.
        let c = Cluster::heterogeneous_2a100_2v100();
        let adaptive = train(
            &c,
            &TrainConfig::new(DnnModel::Vit, Backend::AdapCcAdaptive, 12),
        );
        let waiting = train(
            &c,
            &TrainConfig::new(DnnModel::Vit, Backend::AdapCcWaitAll, 12),
        );
        assert!(
            adaptive.mean_comm_secs < waiting.mean_comm_secs * 1.35,
            "adaptive {} vs wait {}",
            adaptive.mean_comm_secs,
            waiting.mean_comm_secs
        );
    }

    #[test]
    fn adapcc_outruns_nccl_end_to_end() {
        // On RDMA 2+2 the V100 NIC duplex is a physical floor both
        // systems reach, so AdapCC only matches NCCL there; the robust
        // end-to-end win the paper highlights is on kernel TCP, where
        // NCCL's single 20 Gbps channel starves a 100 Gbps NIC and
        // AdapCC's parallel sub-collectives do not.
        let mut b = adapcc_simnet::cluster::ClusterBuilder::new();
        b.add_instances(
            adapcc_simnet::hardware::InstanceSpec::a100_server().with_tcp(),
            2,
        );
        b.add_instances(
            adapcc_simnet::hardware::InstanceSpec::v100_server().with_tcp(),
            2,
        );
        let c = b.build();
        let ours = train(
            &c,
            &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, 10),
        );
        let nccl = train(
            &c,
            &TrainConfig::new(DnnModel::Vgg16, Backend::Baseline(System::Nccl), 10),
        );
        assert!(
            ours.throughput > nccl.throughput * 1.03,
            "ours {} vs nccl {}",
            ours.throughput,
            nccl.throughput
        );
        // And on RDMA, AdapCC must at least hold parity.
        let r = Cluster::heterogeneous_2a100_2v100();
        let ours_r = train(
            &r,
            &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, 10),
        );
        let nccl_r = train(
            &r,
            &TrainConfig::new(DnnModel::Vgg16, Backend::Baseline(System::Nccl), 10),
        );
        assert!(
            ours_r.throughput > nccl_r.throughput * 0.97,
            "rdma parity: ours {} vs nccl {}",
            ours_r.throughput,
            nccl_r.throughput
        );
    }

    #[test]
    fn hetero_wait_ratios_exceed_homo() {
        let hetero = Cluster::heterogeneous_2a100_2v100();
        let homo = Cluster::homogeneous_a100(4);
        let cfg = |_c: &Cluster| TrainConfig::new(DnnModel::Gpt2, Backend::AdapCcWaitAll, 10);
        let h = train(&hetero, &cfg(&hetero));
        let o = train(&homo, &cfg(&homo));
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let mh = median(h.iterations.iter().map(|i| i.wait_ratio).collect());
        let mo = median(o.iterations.iter().map(|i| i.wait_ratio).collect());
        assert!(mh > mo, "hetero {mh} vs homo {mo}");
        // Paper Fig. 3(b): >= 23% median in the heterogeneous case.
        assert!(mh > 0.2, "hetero median wait ratio {mh}");
    }

    #[test]
    fn interference_increases_partial_decisions() {
        let c = Cluster::homogeneous_a100(2);
        let calm = train(
            &c,
            &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, 15),
        );
        let noisy = train(
            &c,
            &TrainConfig::new(DnnModel::Vgg16, Backend::AdapCcAdaptive, 15)
                .with_interference(400.0),
        );
        let partials = |r: &TrainReport| r.iterations.iter().filter(|i| i.partial).count();
        assert!(
            partials(&noisy) >= partials(&calm),
            "noisy {} vs calm {}",
            partials(&noisy),
            partials(&calm)
        );
        assert!(noisy.mean_comm_secs > 0.0);
    }

    #[test]
    fn relay_probability_skews_to_slow_gpus() {
        // Partial collectives trigger on tail stragglers; V100s have
        // both slower means and fatter absolute tails, so when relays
        // are chosen at all they should skew V100-ward (Fig. 15).
        let c = Cluster::heterogeneous_2a100_2v100();
        let r = train(
            &c,
            &TrainConfig::new(DnnModel::Gpt2, Backend::AdapCcAdaptive, 25).with_seed(3),
        );
        let a100: f64 = (0..8).map(|i| r.relay_probability[&i]).sum::<f64>() / 8.0;
        let v100: f64 = (8..16).map(|i| r.relay_probability[&i]).sum::<f64>() / 8.0;
        let any_partial = r.iterations.iter().any(|i| i.partial);
        if any_partial {
            assert!(v100 >= a100, "v100 {v100} vs a100 {a100}");
        }
    }

    #[test]
    fn throughput_definition() {
        let c = Cluster::homogeneous_a100(2);
        let r = train(
            &c,
            &TrainConfig::new(DnnModel::Vit, Backend::AdapCcWaitAll, 5),
        );
        let mean_iter = r.iterations.iter().map(|i| i.iteration_secs).sum::<f64>() / 5.0;
        let expect = (128 * 8) as f64 / mean_iter;
        assert!((r.throughput - expect).abs() / expect < 1e-9);
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore]
    fn vgg_hetero_breakdown() {
        let c = Cluster::heterogeneous_2a100_2v100();
        for backend in [
            Backend::AdapCcAdaptive,
            Backend::AdapCcWaitAll,
            Backend::Baseline(System::Nccl),
            Backend::Baseline(System::Msccl),
        ] {
            let r = train(&c, &TrainConfig::new(DnnModel::Vgg16, backend, 10));
            let partials = r.iterations.iter().filter(|i| i.partial).count();
            println!(
                "{:<12} comm={:.1}ms iter={:.1}ms tput={:.0} partials={partials}",
                backend.name(),
                r.mean_comm_secs * 1e3,
                r.iterations.iter().map(|i| i.iteration_secs).sum::<f64>() / 10.0 * 1e3,
                r.throughput
            );
        }
    }
}
