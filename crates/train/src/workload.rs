//! The paper's training workloads (Sec. VI-D): model sizes, default
//! batch sizes, per-iteration compute-time models, and the collective
//! each model's data parallelism relies on.

use serde::{Deserialize, Serialize};

use adapcc_simnet::hardware::GpuGeneration;
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;

/// One of the paper's four DNN workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnnModel {
    /// VGG16 on ImageNet, 528 MB of gradients per iteration.
    Vgg16,
    /// GPT-2 on the personal-chat corpus, 475 MB.
    Gpt2,
    /// Vision Transformer on ImageNet, 208 MB.
    Vit,
    /// fastMoE-style mixture of experts, 512 MB, AlltoAll-bound.
    Moe,
}

impl DnnModel {
    /// All four workloads, in the paper's order.
    pub fn all() -> [DnnModel; 4] {
        [
            DnnModel::Vgg16,
            DnnModel::Gpt2,
            DnnModel::Vit,
            DnnModel::Moe,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DnnModel::Vgg16 => "VGG16",
            DnnModel::Gpt2 => "GPT2",
            DnnModel::Vit => "ViT",
            DnnModel::Moe => "MoE",
        }
    }

    /// Gradient / exchanged-tensor size per iteration (paper Sec. VI-D).
    pub fn tensor_size(self) -> ByteSize {
        match self {
            DnnModel::Vgg16 => ByteSize::from_mib(528),
            DnnModel::Gpt2 => ByteSize::from_mib(475),
            DnnModel::Vit => ByteSize::from_mib(208),
            DnnModel::Moe => ByteSize::from_mib(512),
        }
    }

    /// The collective that dominates the model's communication.
    pub fn primitive(self) -> Primitive {
        match self {
            DnnModel::Moe => Primitive::AllToAll,
            _ => Primitive::AllReduce,
        }
    }

    /// The paper's default per-GPU batch size.
    pub fn default_batch(self) -> usize {
        match self {
            DnnModel::Gpt2 => 16,
            _ => 128,
        }
    }

    /// Mean forward+backward time for one iteration at `batch` on an
    /// A100 (other generations scale by their compute factor).
    ///
    /// Calibrated to public per-GPU throughput figures; only the
    /// compute/communication *ratio* and the variance matter to the
    /// experiments.
    pub fn compute_time(self, batch: usize, gpu: GpuGeneration) -> SimDuration {
        // Seconds per sample on an A100, plus a fixed per-iteration
        // launch overhead.
        let (per_sample, fixed) = match self {
            DnnModel::Vgg16 => (2.1e-3, 0.015),
            DnnModel::Gpt2 => (8.0e-3, 0.020),
            DnnModel::Vit => (1.5e-3, 0.015),
            DnnModel::Moe => (1.1e-3, 0.018),
        };
        let a100 = fixed + per_sample * batch as f64;
        SimDuration::from_secs(a100 / gpu.compute_factor())
    }

    /// Relative compute-time jitter (coefficient of the heavy-tailed
    /// noise); grows with the batch size as the paper observes.
    pub fn jitter_sigma(self, batch: usize) -> f64 {
        let base = match self {
            DnnModel::Gpt2 => 0.10,
            _ => 0.06,
        };
        // More samples -> more work -> wider absolute spread.
        base * (1.0 + (batch as f64 / self.default_batch() as f64 - 1.0) * 0.5).clamp(0.5, 3.0)
    }
}

impl std::fmt::Display for DnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(DnnModel::Vgg16.tensor_size(), ByteSize::from_mib(528));
        assert_eq!(DnnModel::Gpt2.tensor_size(), ByteSize::from_mib(475));
        assert_eq!(DnnModel::Vit.tensor_size(), ByteSize::from_mib(208));
        assert_eq!(DnnModel::Moe.tensor_size(), ByteSize::from_mib(512));
    }

    #[test]
    fn moe_is_alltoall_bound() {
        assert_eq!(DnnModel::Moe.primitive(), Primitive::AllToAll);
        assert_eq!(DnnModel::Gpt2.primitive(), Primitive::AllReduce);
    }

    #[test]
    fn v100_is_slower_than_a100() {
        for m in DnnModel::all() {
            let a = m.compute_time(m.default_batch(), GpuGeneration::A100);
            let v = m.compute_time(m.default_batch(), GpuGeneration::V100);
            assert!(v > a, "{m}");
            let ratio = v.as_secs() / a.as_secs();
            assert!((ratio - 1.0 / 0.55).abs() < 0.05);
        }
    }

    #[test]
    fn compute_scales_with_batch() {
        let small = DnnModel::Vgg16.compute_time(32, GpuGeneration::A100);
        let large = DnnModel::Vgg16.compute_time(256, GpuGeneration::A100);
        assert!(large.as_secs() > small.as_secs() * 4.0);
    }

    #[test]
    fn jitter_grows_with_batch() {
        let m = DnnModel::Gpt2;
        assert!(m.jitter_sigma(32) > m.jitter_sigma(16));
    }
}
