//! The model-accuracy experiment (paper Fig. 19(b)).
//!
//! The paper trains VGG16 on a down-scaled ImageNet and shows that
//! AdapCC's two-phase relay aggregation converges identically to a
//! normal collective, that a different aggregation *order* (the graph
//! dumped from NCCL) is equally harmless, and that simply discarding
//! straggler gradients ("Relay Async") hurts convergence.
//!
//! Those claims are *algorithmic*, so we demonstrate them honestly: a
//! real MLP classifier is trained data-parallel on a synthetic
//! 10-class problem, with each iteration's gradients flowing through
//! the **actual collective implementations** — the synthesized AdapCC
//! strategy, the two-phase adaptive path with a genuine straggler, or
//! the NCCL-like graph — so floating-point summation orders are
//! whatever the communication graphs produce, not a hand-written
//! stand-in.

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use adapcc::{AdapCC, InitOptions, RelayConfig};
use adapcc_baselines::nccl::nccl_strategy;
use adapcc_simnet::cluster::{Cluster, Rank};
use adapcc_simnet::rng::seeded_rng;
use adapcc_simnet::time::{SimDuration, SimTime};
use adapcc_simnet::units::ByteSize;
use adapcc_synth::primitive::Primitive;
use adapcc_synth::solver::SynthConfig;

/// How gradients are aggregated each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationMode {
    /// Full collective over every worker (the NCCL reference curve).
    FullSync,
    /// AdapCC's two-phase relay protocol with a real straggler each
    /// iteration — numerically a full collective.
    RelaySync,
    /// Straggler gradients are discarded (the paper's "Relay Async"
    /// strawman).
    RelayAsync,
    /// Full collective through the NCCL-like graph: a different
    /// summation order ("AdapCC-nccl graph").
    NcclGraphOrder,
}

impl AggregationMode {
    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            AggregationMode::FullSync => "NCCL",
            AggregationMode::RelaySync => "AdapCC",
            AggregationMode::RelayAsync => "Relay Async",
            AggregationMode::NcclGraphOrder => "AdapCC-nccl graph",
        }
    }
}

/// A small two-layer MLP classifier (32 -> 64 -> 10) with flattened
/// parameter access for collective-based gradient exchange.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
}

/// Input dimension.
pub const IN: usize = 32;
/// Hidden width.
pub const HIDDEN: usize = 64;
/// Classes.
pub const CLASSES: usize = 10;

impl Mlp {
    /// Xavier-ish random initialization.
    pub fn new(rng: &mut ChaCha8Rng) -> Self {
        let mut draw = |n: usize, scale: f32| -> Vec<f32> {
            (0..n)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
                .collect()
        };
        Mlp {
            w1: draw(IN * HIDDEN, (1.0 / IN as f32).sqrt()),
            b1: vec![0.0; HIDDEN],
            w2: draw(HIDDEN * CLASSES, (1.0 / HIDDEN as f32).sqrt()),
            b2: vec![0.0; CLASSES],
        }
    }

    /// Total parameter count.
    pub fn param_count() -> usize {
        IN * HIDDEN + HIDDEN + HIDDEN * CLASSES + CLASSES
    }

    /// Forward pass; returns (hidden activations, logits).
    #[allow(clippy::needless_range_loop)] // index math mirrors W[i*H+j]
    fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut h = vec![0.0f32; HIDDEN];
        for j in 0..HIDDEN {
            let mut acc = self.b1[j];
            for i in 0..IN {
                acc += self.w1[i * HIDDEN + j] * x[i];
            }
            h[j] = acc.max(0.0);
        }
        let mut z = vec![0.0f32; CLASSES];
        for k in 0..CLASSES {
            let mut acc = self.b2[k];
            for j in 0..HIDDEN {
                acc += self.w2[j * CLASSES + k] * h[j];
            }
            z[k] = acc;
        }
        (h, z)
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let (_, z) = self.forward(x);
        argmax(&z)
    }

    /// Cross-entropy gradient of one mini-batch, flattened; returns
    /// (gradient, mean loss).
    #[allow(clippy::needless_range_loop)] // index math mirrors W[i*H+j]
    pub fn gradient(&self, xs: &[Vec<f32>], ys: &[usize]) -> (Vec<f32>, f32) {
        let mut grad = vec![0.0f32; Self::param_count()];
        let mut loss = 0.0f32;
        let n = xs.len().max(1) as f32;
        let (gw1, rest) = grad.split_at_mut(IN * HIDDEN);
        let (gb1, rest) = rest.split_at_mut(HIDDEN);
        let (gw2, gb2) = rest.split_at_mut(HIDDEN * CLASSES);
        for (x, &y) in xs.iter().zip(ys) {
            let (h, z) = self.forward(x);
            let p = softmax(&z);
            loss -= p[y].max(1e-9).ln();
            // dL/dz.
            let mut dz = p;
            dz[y] -= 1.0;
            for k in 0..CLASSES {
                gb2[k] += dz[k] / n;
                for j in 0..HIDDEN {
                    gw2[j * CLASSES + k] += dz[k] * h[j] / n;
                }
            }
            // Back through ReLU.
            for j in 0..HIDDEN {
                if h[j] <= 0.0 {
                    continue;
                }
                let mut dh = 0.0f32;
                for k in 0..CLASSES {
                    dh += dz[k] * self.w2[j * CLASSES + k];
                }
                gb1[j] += dh / n;
                for i in 0..IN {
                    gw1[i * HIDDEN + j] += dh * x[i] / n;
                }
            }
        }
        (grad, loss / n)
    }

    /// SGD step with a flattened gradient.
    pub fn apply(&mut self, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), Self::param_count(), "gradient shape");
        let mut it = grad.iter();
        for w in self
            .w1
            .iter_mut()
            .chain(&mut self.b1)
            .chain(&mut self.w2)
            .chain(&mut self.b2)
        {
            *w -= lr * it.next().expect("length checked");
        }
    }
}

fn softmax(z: &[f32]) -> Vec<f32> {
    let m = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(z: &[f32]) -> usize {
    let mut best = 0;
    for (i, v) in z.iter().enumerate() {
        if *v > z[best] {
            best = i;
        }
    }
    best
}

/// A synthetic 10-class Gaussian-cluster dataset (the experiment's
/// "down-scaled ImageNet").
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training samples.
    pub train: Vec<(Vec<f32>, usize)>,
    /// Held-out samples.
    pub test: Vec<(Vec<f32>, usize)>,
}

impl Dataset {
    /// Generates `train_n` training and `test_n` test samples.
    pub fn synthesize(seed: u64, train_n: usize, test_n: usize) -> Self {
        let mut rng = seeded_rng(seed ^ 0xDA7A);
        let centers: Vec<Vec<f32>> = (0..CLASSES)
            .map(|_| (0..IN).map(|_| (rng.gen::<f32>() - 0.5) * 2.2).collect())
            .collect();
        let mut draw = |n: usize| -> Vec<(Vec<f32>, usize)> {
            (0..n)
                .map(|_| {
                    let y = rng.gen_range(0..CLASSES);
                    let x = centers[y]
                        .iter()
                        .map(|c| c + (rng.gen::<f32>() - 0.5) * 4.5)
                        .collect();
                    (x, y)
                })
                .collect()
        };
        Dataset {
            train: draw(train_n),
            test: draw(test_n),
        }
    }

    /// Top-1 accuracy of a model on the held-out set.
    pub fn accuracy(&self, model: &Mlp) -> f64 {
        let hits = self
            .test
            .iter()
            .filter(|(x, y)| model.predict(x) == *y)
            .count();
        hits as f64 / self.test.len().max(1) as f64
    }
}

/// One accuracy curve: top-1 per epoch.
#[derive(Debug, Clone)]
pub struct AccuracyCurve {
    /// The aggregation mode that produced the curve.
    pub mode: AggregationMode,
    /// Held-out top-1 accuracy after each epoch.
    pub per_epoch: Vec<f64>,
}

/// Trains the MLP data-parallel under one aggregation mode and records
/// the accuracy curve. Every synchronous mode routes real gradients
/// through real collective executions on the cluster.
pub fn run_accuracy_experiment(
    cluster: &Cluster,
    mode: AggregationMode,
    epochs: usize,
    seed: u64,
) -> AccuracyCurve {
    let data = Dataset::synthesize(seed, 6000, 1500);
    let mut rng = seeded_rng(seed ^ 0xACC);
    let mut model = Mlp::new(&mut rng);
    let n_workers = cluster.gpu_count();
    let workers: Vec<Rank> = (0..n_workers).map(Rank).collect();
    let per_worker_batch = 32usize;
    let lr = 0.05f32;
    let tensor = ByteSize::from_bytes((Mlp::param_count() * 4) as u64);

    // One session reused across iterations; a generous fault horizon
    // keeps deliberate stragglers in the job.
    let mut cc = AdapCC::init(
        cluster,
        InitOptions {
            seed,
            relay: RelayConfig {
                fault_floor: SimDuration::from_millis(2000.0),
                ..Default::default()
            },
            synth: SynthConfig {
                anneal_iters: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    cc.setup();
    let nccl = nccl_strategy(cc.topology(), Primitive::AllReduce, &workers);

    // Non-IID sharding: the training set is sorted by label and split
    // into contiguous per-worker shards, so each worker's gradients
    // carry distinct class information — which is exactly why
    // discarding a straggler's gradients (Relay Async) costs accuracy.
    let mut sorted = data.train.clone();
    sorted.sort_by_key(|(_, y)| *y);
    let shard_len = sorted.len() / n_workers;
    let shards: Vec<&[(Vec<f32>, usize)]> = (0..n_workers)
        .map(|w| &sorted[w * shard_len..(w + 1) * shard_len])
        .collect();
    // The straggler is sticky (a systematically slow worker), with
    // occasional excursions — mirroring real interference patterns.
    let sticky = Rank(rng.gen_range(0..n_workers));

    let iters_per_epoch = (shard_len / per_worker_batch).max(1);
    let mut per_epoch = Vec::with_capacity(epochs);
    let mut cursor = 0usize;
    for _epoch in 0..epochs {
        for _ in 0..iters_per_epoch {
            // Each worker samples its own shard.
            let mut grads: BTreeMap<Rank, Vec<f32>> = BTreeMap::new();
            for w in &workers {
                let shard = shards[w.0];
                let mut xs = Vec::with_capacity(per_worker_batch);
                let mut ys = Vec::with_capacity(per_worker_batch);
                for k in 0..per_worker_batch {
                    let (x, y) = &shard[(cursor + k * 17) % shard.len()];
                    xs.push(x.clone());
                    ys.push(*y);
                }
                let (g, _) = model.gradient(&xs, &ys);
                grads.insert(*w, g);
            }
            cursor += per_worker_batch;
            let straggler = if rng.gen_bool(0.8) {
                sticky
            } else {
                Rank(rng.gen_range(0..n_workers))
            };
            let mut ready: BTreeMap<Rank, SimTime> =
                workers.iter().map(|r| (*r, SimTime::ZERO)).collect();
            ready.insert(straggler, SimTime::from_secs(0.06));

            let summed: Vec<f32> = match mode {
                AggregationMode::FullSync => {
                    let rep = cc
                        .allreduce(tensor, &ready, Some(grads.clone()))
                        .expect("healthy fabric");
                    rep.outputs.values().next().expect("outputs").clone()
                }
                AggregationMode::RelaySync => {
                    let rep = cc
                        .allreduce_adaptive(tensor, &ready, Some(grads.clone()))
                        .expect("healthy fabric");
                    assert!(rep.faults.is_empty(), "straggler must not be faulted");
                    rep.outputs.values().next().expect("outputs").clone()
                }
                AggregationMode::NcclGraphOrder => {
                    let exec = adapcc::executor::Executor::new(cluster, cc.topology());
                    let req = adapcc::executor::ExecutionRequest::timing(&nccl, tensor)
                        .with_inputs(grads.clone());
                    let batch = exec.execute(&[req]);
                    batch.requests[0]
                        .outputs
                        .values()
                        .next()
                        .expect("outputs")
                        .clone()
                }
                AggregationMode::RelayAsync => {
                    // Straggler gradients are simply discarded.
                    let mut acc = vec![0.0f32; Mlp::param_count()];
                    for (r, g) in &grads {
                        if *r == straggler {
                            continue;
                        }
                        for (a, v) in acc.iter_mut().zip(g) {
                            *a += v;
                        }
                    }
                    acc
                }
            };
            let denom = match mode {
                AggregationMode::RelayAsync => (n_workers - 1) as f32,
                _ => n_workers as f32,
            };
            let mean: Vec<f32> = summed.iter().map(|v| v / denom).collect();
            model.apply(&mean, lr);
        }
        per_epoch.push(data.accuracy(&model));
    }
    AccuracyCurve { mode, per_epoch }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_learns_the_synthetic_task() {
        let data = Dataset::synthesize(3, 2000, 500);
        let mut rng = seeded_rng(4);
        let mut model = Mlp::new(&mut rng);
        let initial = data.accuracy(&model);
        for _ in 0..120 {
            let batch: Vec<_> = (0..64)
                .map(|i| data.train[(i * 31) % data.train.len()].clone())
                .collect();
            let xs: Vec<Vec<f32>> = batch.iter().map(|(x, _)| x.clone()).collect();
            let ys: Vec<usize> = batch.iter().map(|(_, y)| *y).collect();
            let (g, _) = model.gradient(&xs, &ys);
            model.apply(&g, 0.1);
        }
        let trained = data.accuracy(&model);
        assert!(
            trained > initial + 0.2,
            "initial {initial}, trained {trained}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = seeded_rng(5);
        let model = Mlp::new(&mut rng);
        let x: Vec<f32> = (0..IN).map(|i| (i as f32 / IN as f32) - 0.5).collect();
        let y = 3usize;
        let (grad, _) = model.gradient(std::slice::from_ref(&x), &[y]);
        // Check a few coordinates of w1 numerically.
        for &idx in &[0usize, 77, IN * HIDDEN - 1] {
            let eps = 1e-3f32;
            let mut plus = model.clone();
            plus.w1[idx] += eps;
            let mut minus = model.clone();
            minus.w1[idx] -= eps;
            let lp = loss_of(&plus, &x, y);
            let lm = loss_of(&minus, &x, y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad[idx] - numeric).abs() < 2e-2,
                "idx {idx}: analytic {} numeric {numeric}",
                grad[idx]
            );
        }
    }

    fn loss_of(m: &Mlp, x: &[f32], y: usize) -> f32 {
        let (_, z) = m.forward(x);
        -softmax(&z)[y].max(1e-9).ln()
    }

    #[test]
    fn sync_modes_converge_async_lags() {
        let c = Cluster::homogeneous_a100(1);
        let epochs = 4;
        let sync = run_accuracy_experiment(&c, AggregationMode::FullSync, epochs, 7);
        let relay = run_accuracy_experiment(&c, AggregationMode::RelaySync, epochs, 7);
        let nccl = run_accuracy_experiment(&c, AggregationMode::NcclGraphOrder, epochs, 7);
        let last = |c: &AccuracyCurve| *c.per_epoch.last().unwrap();
        // The three synchronous variants land together (float-order
        // differences only).
        assert!(
            (last(&sync) - last(&relay)).abs() < 0.05,
            "sync {sync:?} relay {relay:?}"
        );
        assert!((last(&sync) - last(&nccl)).abs() < 0.05);
        assert!(
            last(&sync) > 0.4,
            "model must actually learn: {}",
            last(&sync)
        );
    }

    #[test]
    fn dataset_is_seed_deterministic() {
        let a = Dataset::synthesize(11, 100, 50);
        let b = Dataset::synthesize(11, 100, 50);
        assert_eq!(a.train[0].0, b.train[0].0);
        assert_eq!(a.test.len(), 50);
    }
}
