//! # adapcc-train
//!
//! Training-side experiments for the AdapCC reproduction: the paper's
//! four DNN [`workload`]s with calibrated compute-time models, the
//! [`straggler`] and CPU-interference models that create the wait-time
//! distributions of Sec. II-C, the data-parallel [`trainer`] loop that
//! drives AdapCC or a baseline backend and records the paper's
//! throughput and communication metrics, and the real MLP [`accuracy`]
//! experiment behind Fig. 19(b).
//!
//! # Example
//!
//! ```
//! use adapcc_simnet::cluster::Cluster;
//! use adapcc_train::trainer::{train, Backend, TrainConfig};
//! use adapcc_train::workload::DnnModel;
//!
//! let cluster = Cluster::homogeneous_a100(2);
//! let report = train(&cluster, &TrainConfig::new(DnnModel::Vit, Backend::AdapCcAdaptive, 3));
//! assert!(report.throughput > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod parallel;
pub mod straggler;
pub mod trainer;
pub mod workload;

pub use accuracy::{run_accuracy_experiment, AccuracyCurve, AggregationMode};
pub use parallel::{ParallelLayout, StepPhase};
pub use straggler::{wait_time_ratio, StragglerModel};
pub use trainer::{train, Backend, TrainConfig, TrainReport};
pub use workload::DnnModel;
