//! Exhaustive strategy search for small jobs — ground truth for the
//! annealer.
//!
//! The paper hands its MIP to Gurobi; our production path substitutes
//! annealing. For *small* clusters the space of hierarchical plans is
//! enumerable — every (root, leader assignment, instance parent map)
//! combination with every grid chunk — so we can compute the true
//! optimum of the cost model and measure the annealer's optimality gap
//! (asserted in tests and reported by the `ablation` harness).

use std::collections::BTreeMap;

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{LogicalNode, LogicalTopology};

use crate::cost::CostModel;
use crate::primitive::Primitive;
use crate::solver::{group_by_instance, SynthRequest};
use crate::strategy::{Flow, Strategy, SubCollective};

/// Upper bound on instances for which exhaustive search is tractable.
pub const MAX_INSTANCES: usize = 3;

/// Enumerates every hierarchical single-sub-collective plan for the
/// request and returns the cost-model optimum.
///
/// Restricted (documented) plan family: one sub-collective, a leader
/// per instance, leaders connected by any in-tree over instances,
/// every grid chunk size — the same family the production generators
/// draw from, minus parallel sub-collectives, so the comparison in
/// tests scales both to `parallelism = 1`.
///
/// # Panics
///
/// Panics if the job spans more than [`MAX_INSTANCES`] instances, has
/// no participants, or requests an unsupported primitive (only Reduce
/// and AllReduce are enumerated).
pub fn exhaustive_optimum(
    topo: &LogicalTopology,
    profile: &LinkProfile,
    req: &SynthRequest,
) -> (Strategy, f64) {
    assert!(!req.participants.is_empty(), "no participants");
    assert!(
        matches!(req.primitive, Primitive::Reduce | Primitive::AllReduce),
        "exhaustive search covers Reduce/AllReduce only"
    );
    let by_inst = group_by_instance(topo, &req.participants);
    let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
    assert!(
        insts.len() <= MAX_INSTANCES,
        "exhaustive search is exponential; {} instances exceed the cap",
        insts.len()
    );
    let model = CostModel::new(topo, profile);
    let chunk_grid = [
        ByteSize::from_kib(256),
        ByteSize::from_kib(512),
        ByteSize::from_mib(1),
        ByteSize::from_mib(2),
        ByteSize::from_mib(4),
        ByteSize::from_mib(8),
    ];

    let mut best: Option<(Strategy, f64)> = None;
    // Enumerate: root rank × leader per non-root instance × parent map
    // (in-tree over instances) × chunk.
    for &root in &req.participants {
        let root_inst = crate::solver::instance_of(topo, root);
        for leaders in leader_assignments(&by_inst, root_inst, root) {
            for parents in instance_trees(&insts, root_inst) {
                for &chunk in &chunk_grid {
                    let Some(strategy) = realize(
                        topo, req, &by_inst, root, root_inst, &leaders, &parents, chunk,
                    ) else {
                        continue;
                    };
                    if strategy.validate(topo).is_err() {
                        continue;
                    }
                    let cost = model.evaluate(&strategy, req.tensor).completion.as_secs();
                    if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                        best = Some((strategy, cost));
                    }
                }
            }
        }
    }
    best.expect("at least one feasible plan")
}

/// All leader assignments: the root instance's leader is the root; each
/// other instance picks any member.
fn leader_assignments(
    by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
    root_inst: InstanceId,
    root: Rank,
) -> Vec<BTreeMap<InstanceId, Rank>> {
    let mut out = vec![BTreeMap::new()];
    for (inst, members) in by_inst {
        let choices: Vec<Rank> = if *inst == root_inst {
            vec![root]
        } else {
            members.clone()
        };
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for partial in &out {
            for c in &choices {
                let mut p = partial.clone();
                p.insert(*inst, *c);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// All in-trees over the instances rooted at `root_inst`: every
/// non-root instance picks any parent, filtered to acyclic maps.
fn instance_trees(
    insts: &[InstanceId],
    root_inst: InstanceId,
) -> Vec<BTreeMap<InstanceId, InstanceId>> {
    let others: Vec<InstanceId> = insts.iter().copied().filter(|i| *i != root_inst).collect();
    let mut out = vec![BTreeMap::from([(root_inst, root_inst)])];
    for child in &others {
        let mut next = Vec::with_capacity(out.len() * insts.len());
        for partial in &out {
            for parent in insts {
                if parent == child {
                    continue;
                }
                let mut p = partial.clone();
                p.insert(*child, *parent);
                next.push(p);
            }
        }
        out = next;
    }
    // Keep only acyclic maps (every node reaches the root).
    out.retain(|parents| {
        insts.iter().all(|start| {
            let mut here = *start;
            for _ in 0..=insts.len() {
                if here == root_inst {
                    return true;
                }
                here = match parents.get(&here) {
                    Some(p) => *p,
                    None => return false,
                };
            }
            false
        })
    });
    out
}

#[allow(clippy::too_many_arguments)] // one-shot plan realization
fn realize(
    topo: &LogicalTopology,
    req: &SynthRequest,
    by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
    root: Rank,
    root_inst: InstanceId,
    leaders: &BTreeMap<InstanceId, Rank>,
    parents: &BTreeMap<InstanceId, InstanceId>,
    chunk: ByteSize,
) -> Option<Strategy> {
    let g = LogicalNode::Gpu;
    let nic = LogicalNode::Nic;
    let mut aggregate = BTreeMap::new();
    for l in leaders.values() {
        aggregate.insert(g(*l), true);
    }
    aggregate.insert(g(root), true);
    let mut flows = Vec::new();
    for (inst, members) in by_inst {
        for r in members {
            if *r == root {
                continue;
            }
            let mut route = Vec::new();
            let mut cursor = *r;
            let leader = leaders[inst];
            if cursor != leader {
                route.push(topo.edge_between(g(cursor), g(leader))?);
                cursor = leader;
            }
            let mut here = *inst;
            let mut guard = 0;
            while here != root_inst {
                let up = *parents.get(&here)?;
                let up_leader = if up == root_inst { root } else { leaders[&up] };
                route.push(topo.edge_between(g(cursor), nic(here))?);
                route.push(topo.edge_between(nic(here), nic(up))?);
                route.push(topo.edge_between(nic(up), g(up_leader))?);
                cursor = up_leader;
                here = up;
                guard += 1;
                if guard > parents.len() + 1 {
                    return None;
                }
            }
            if cursor != root {
                route.push(topo.edge_between(g(cursor), g(root))?);
            }
            flows.push(Flow {
                src: g(*r),
                dst: g(root),
                route,
            });
        }
    }
    Some(Strategy {
        primitive: req.primitive,
        subs: vec![SubCollective {
            fraction: 1.0,
            chunk,
            root: Some(root),
            flows,
            aggregate,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SynthConfig, Synthesizer};
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::{Cluster, ClusterBuilder};
    use adapcc_simnet::hardware::InstanceSpec;
    use adapcc_topo::detect::Detector;

    fn setup(c: &Cluster) -> (LogicalTopology, LinkProfile) {
        let topo = Detector::new(c, 1).run().logical_topology(c);
        let profile = Profiler::new(c, &topo, 1).without_noise().run().links;
        (topo, profile)
    }

    #[test]
    fn annealer_is_near_optimal_on_small_homogeneous_jobs() {
        let c = Cluster::homogeneous_a100(3);
        let (topo, profile) = setup(&c);
        let model = CostModel::new(&topo, &profile);
        let req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(64),
            1,
            (0..12).map(Rank).collect(),
        );
        let (_, optimal) = exhaustive_optimum(&topo, &profile, &req);
        let annealed = Synthesizer::new(&topo, &profile).synthesize(&req);
        let got = model.evaluate(&annealed, req.tensor).completion.as_secs();
        assert!(
            got <= optimal * 1.20,
            "annealed {got} vs optimal {optimal} exceeds 20% gap"
        );
    }

    #[test]
    fn annealer_is_near_optimal_on_small_heterogeneous_jobs() {
        let mut b = ClusterBuilder::new();
        b.add_instances(InstanceSpec::a100_server(), 2);
        b.add_instance(InstanceSpec::v100_server());
        let c = b.build();
        let (topo, profile) = setup(&c);
        let model = CostModel::new(&topo, &profile);
        let req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(128),
            1,
            (0..12).map(Rank).collect(),
        );
        let (opt_strategy, optimal) = exhaustive_optimum(&topo, &profile, &req);
        assert!(opt_strategy.validate(&topo).is_ok());
        let annealed = Synthesizer::new(&topo, &profile).synthesize(&req);
        let got = model.evaluate(&annealed, req.tensor).completion.as_secs();
        assert!(
            got <= optimal * 1.20,
            "annealed {got} vs optimal {optimal} exceeds 20% gap"
        );
        // The optimum never roots on the thin-NIC V100 instance.
        let root = opt_strategy.subs[0].root.unwrap();
        assert!(
            root.0 < 8,
            "optimal root {root:?} should sit on an A100 server"
        );
    }

    #[test]
    fn generators_alone_trail_or_match_the_optimum() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let model = CostModel::new(&topo, &profile);
        let req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(32),
            1,
            (0..8).map(Rank).collect(),
        );
        let (_, optimal) = exhaustive_optimum(&topo, &profile, &req);
        let quick = Synthesizer::new(&topo, &profile)
            .with_config(SynthConfig {
                anneal_iters: 0,
                ..Default::default()
            })
            .synthesize(&req);
        let got = model.evaluate(&quick, req.tensor).completion.as_secs();
        assert!(got + 1e-12 >= optimal, "optimum must lower-bound any plan");
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn large_jobs_rejected() {
        let c = Cluster::homogeneous_a100(4);
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(16),
            1,
            (0..16).map(Rank).collect(),
        );
        let _ = exhaustive_optimum(&topo, &profile, &req);
    }
}
