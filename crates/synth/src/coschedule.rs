//! Contention-aware co-scheduling of concurrent per-group strategies.
//!
//! A 3D-parallel training step runs many collectives at once — DP
//! rings, TP slices, PP transfers, MoE all-to-alls — and their flows
//! share NICs and spine links. Solving each group on an empty fabric
//! (the *group-oblivious* baseline) systematically underestimates
//! contention: the eq. 3 equal-share model divides bandwidth only among
//! a strategy's own streams, so independently-optimal trees pile onto
//! the same fat links. [`co_schedule`] lifts the equal-share model
//! across groups: each group's solve scores against a pinned
//! [`BackgroundLoad`] contributed by its co-scheduled peers, and a
//! deterministic round-robin loop (fixed sweep order: group index
//! ascending) alternates which group re-anneals against the others
//! until no group can strictly improve its contended cost — a
//! fix-point.
//!
//! Determinism: every per-group solve is bit-reproducible for any
//! `solver_threads` (chain seeds and the cost argmin are independent of
//! the thread mapping), the sweep order is fixed, and acceptance is a
//! strict `<` on contended cost — so the whole loop is bit-identical
//! across solver thread counts.

use adapcc_profile::profiler::LinkProfile;
use adapcc_topo::logical::LogicalTopology;

use crate::cost::{BackgroundLoad, CostModel};
use crate::solver::{SynthConfig, SynthRequest, Synthesizer};
use crate::strategy::Strategy;

/// Knobs for the fix-point refinement loop.
#[derive(Debug, Clone)]
pub struct CoScheduleOptions {
    /// Maximum round-robin sweeps after the oblivious round. The loop
    /// stops earlier at the first sweep where no group improves.
    pub max_rounds: usize,
}

impl Default for CoScheduleOptions {
    fn default() -> Self {
        CoScheduleOptions { max_rounds: 4 }
    }
}

/// Result of [`co_schedule`]: both the oblivious baseline and the
/// contention-aware strategies, each scored under peer contention so
/// the two columns are directly comparable.
#[derive(Debug, Clone)]
pub struct CoScheduled {
    /// Group-oblivious strategies: each solved on an empty fabric,
    /// blind to its peers (round 0).
    pub oblivious: Vec<Strategy>,
    /// Contention-aware strategies after the fix-point loop.
    pub strategies: Vec<Strategy>,
    /// Predicted per-group completion (secs) of the *oblivious*
    /// strategies when their peers' traffic is accounted for.
    pub oblivious_cost: Vec<f64>,
    /// Predicted per-group completion (secs) of the aware strategies
    /// under the same peer accounting.
    pub contended_cost: Vec<f64>,
    /// Round-robin sweeps executed (the last one observes no change).
    pub rounds: usize,
}

impl CoScheduled {
    /// Predicted concurrent makespan of the oblivious strategies: the
    /// slowest group under peer contention.
    pub fn oblivious_makespan(&self) -> f64 {
        self.oblivious_cost.iter().copied().fold(0.0, f64::max)
    }

    /// Predicted concurrent makespan of the aware strategies.
    pub fn contended_makespan(&self) -> f64 {
        self.contended_cost.iter().copied().fold(0.0, f64::max)
    }
}

/// Accumulates the stream loads of every strategy except `skip` into
/// one pinned background.
fn background_of_peers(
    topo: &LogicalTopology,
    profile: &LinkProfile,
    strategies: &[Strategy],
    skip: usize,
) -> BackgroundLoad {
    let mut bg = BackgroundLoad::new(topo);
    for (j, s) in strategies.iter().enumerate() {
        if j != skip {
            bg.add_strategy(topo, profile, s);
        }
    }
    bg
}

/// Scores each strategy under the pinned background of all its peers:
/// the per-group completion times the concurrent step would actually
/// see if every group ran at once (by the eq. 3 equal-share model).
pub fn contended_costs(
    topo: &LogicalTopology,
    profile: &LinkProfile,
    reqs: &[SynthRequest],
    strategies: &[Strategy],
) -> Vec<f64> {
    assert_eq!(reqs.len(), strategies.len(), "one request per strategy");
    (0..strategies.len())
        .map(|i| {
            let bg = background_of_peers(topo, profile, strategies, i);
            CostModel::new(topo, profile)
                .with_background(&bg)
                .evaluate(&strategies[i], reqs[i].tensor)
                .completion
                .as_secs()
        })
        .collect()
}

/// Co-schedules one strategy per request under shared-link contention.
///
/// Round 0 solves every group on an empty fabric (this *is* the
/// group-oblivious baseline, returned as
/// [`oblivious`](CoScheduled::oblivious)). Each subsequent sweep visits
/// groups in index order, re-solves group `i` with its peers' current
/// strategies pinned as background load, and accepts the candidate only
/// if its contended cost strictly improves on the incumbent's under the
/// same background. The loop stops at the first sweep with no
/// acceptance (costs have fix-pointed) or after
/// [`max_rounds`](CoScheduleOptions::max_rounds) sweeps.
///
/// # Panics
///
/// Panics if `reqs` is empty or any request is invalid for
/// [`Synthesizer::synthesize`].
pub fn co_schedule(
    topo: &LogicalTopology,
    profile: &LinkProfile,
    config: &SynthConfig,
    telemetry: &adapcc_telemetry::Telemetry,
    reqs: &[SynthRequest],
    opts: &CoScheduleOptions,
) -> CoScheduled {
    assert!(!reqs.is_empty(), "co_schedule needs at least one group");
    let base = Synthesizer::new(topo, profile)
        .with_config(config.clone())
        .with_telemetry(telemetry.clone());
    let oblivious: Vec<Strategy> = reqs.iter().map(|r| base.synthesize(r)).collect();
    let oblivious_cost = contended_costs(topo, profile, reqs, &oblivious);

    let mut strategies = oblivious.clone();
    let mut rounds = 0usize;
    for _ in 0..opts.max_rounds {
        rounds += 1;
        let mut changed = false;
        // Fixed sweep order: group index ascending. Combined with the
        // bit-reproducible per-group solves this makes the whole loop
        // deterministic for any solver thread count.
        for i in 0..reqs.len() {
            let bg = background_of_peers(topo, profile, &strategies, i);
            let aware = Synthesizer::new(topo, profile)
                .with_config(config.clone())
                .with_telemetry(telemetry.clone())
                .with_background(&bg);
            let candidate = aware.synthesize(&reqs[i]);
            let model = CostModel::new(topo, profile).with_background(&bg);
            let incumbent = model
                .evaluate(&strategies[i], reqs[i].tensor)
                .completion
                .as_secs();
            let challenger = model
                .evaluate(&candidate, reqs[i].tensor)
                .completion
                .as_secs();
            if challenger < incumbent {
                strategies[i] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    telemetry.add_counter("synth.coschedule.groups", reqs.len() as f64);
    telemetry.add_counter("synth.coschedule.sweeps", rounds as f64);

    let contended_cost = contended_costs(topo, profile, reqs, &strategies);
    CoScheduled {
        oblivious,
        strategies,
        oblivious_cost,
        contended_cost,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::{Cluster, Rank};
    use adapcc_simnet::units::ByteSize;
    use adapcc_topo::detect::Detector;

    fn fixture(servers: usize, gpus: usize) -> (LogicalTopology, LinkProfile) {
        let cluster = Cluster::fat_tree(servers, gpus);
        let topo = Detector::new(&cluster, 7).run().logical_topology(&cluster);
        let profile = Profiler::new(&cluster, &topo, 7).run().links;
        (topo, profile)
    }

    fn dp_requests(servers: usize, gpus: usize) -> Vec<SynthRequest> {
        // One cross-server DP ring per local GPU slot: groups genuinely
        // share every NIC.
        (0..gpus)
            .map(|slot| {
                let members: Vec<Rank> = (0..servers).map(|s| Rank(s * gpus + slot)).collect();
                let mut req =
                    SynthRequest::new(Primitive::AllReduce, ByteSize::from_mib(64), 2, members);
                req.seed = slot as u64;
                req
            })
            .collect()
    }

    #[test]
    fn background_seeding_changes_scores_not_validity() {
        let (topo, profile) = fixture(2, 4);
        let reqs = dp_requests(2, 4);
        let base = Synthesizer::new(&topo, &profile);
        let strategies: Vec<Strategy> = reqs.iter().map(|r| base.synthesize(r)).collect();
        let mut bg = BackgroundLoad::new(&topo);
        for s in &strategies[1..] {
            bg.add_strategy(&topo, &profile, s);
        }
        assert!(!bg.is_empty());
        let empty = CostModel::new(&topo, &profile)
            .evaluate(&strategies[0], reqs[0].tensor)
            .completion
            .as_secs();
        let loaded = CostModel::new(&topo, &profile)
            .with_background(&bg)
            .evaluate(&strategies[0], reqs[0].tensor)
            .completion
            .as_secs();
        assert!(
            loaded > empty,
            "peer streams on shared NICs must slow the foreground ({loaded} vs {empty})"
        );
    }

    #[test]
    fn co_schedule_never_loses_to_oblivious() {
        let (topo, profile) = fixture(2, 4);
        let reqs = dp_requests(2, 4);
        let telemetry = adapcc_telemetry::Telemetry::disabled();
        let out = co_schedule(
            &topo,
            &profile,
            &SynthConfig::default(),
            &telemetry,
            &reqs,
            &CoScheduleOptions::default(),
        );
        assert_eq!(out.strategies.len(), reqs.len());
        for (s, r) in out.strategies.iter().zip(&reqs) {
            assert!(s.validate(&topo).is_ok());
            assert_eq!(
                s.participants(),
                {
                    let mut p = r.participants.clone();
                    p.sort_unstable();
                    p
                },
                "aware strategy must keep its group's membership"
            );
        }
        assert!(
            out.contended_makespan() <= out.oblivious_makespan() + 1e-12,
            "fix-point loop only accepts strict improvements"
        );
        assert!(out.rounds >= 1 && out.rounds <= CoScheduleOptions::default().max_rounds);
    }

    #[test]
    fn co_schedule_is_deterministic_across_solver_threads() {
        let (topo, profile) = fixture(2, 4);
        let reqs = dp_requests(2, 4);
        let telemetry = adapcc_telemetry::Telemetry::disabled();
        let solve = |threads: usize| {
            let cfg = SynthConfig {
                anneal_chains: 4,
                solver_threads: threads,
                ..SynthConfig::default()
            };
            co_schedule(
                &topo,
                &profile,
                &cfg,
                &telemetry,
                &reqs,
                &CoScheduleOptions::default(),
            )
        };
        let a = solve(1);
        let b = solve(4);
        assert_eq!(
            a.strategies, b.strategies,
            "bit-identical across thread counts"
        );
        assert_eq!(a.contended_cost, b.contended_cost);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn single_group_degenerates_to_plain_synthesis() {
        let (topo, profile) = fixture(2, 2);
        let reqs = dp_requests(2, 2)[..1].to_vec();
        let telemetry = adapcc_telemetry::Telemetry::disabled();
        let out = co_schedule(
            &topo,
            &profile,
            &SynthConfig::default(),
            &telemetry,
            &reqs,
            &CoScheduleOptions::default(),
        );
        let plain = Synthesizer::new(&topo, &profile).synthesize(&reqs[0]);
        assert_eq!(out.oblivious[0], plain);
        assert_eq!(
            out.strategies[0], plain,
            "no peers means no pressure to move"
        );
        assert_eq!(out.oblivious_cost, out.contended_cost);
    }
}
