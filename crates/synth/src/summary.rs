//! Human-readable strategy summaries — what `nccl-topo-dump` is to
//! NCCL, for logs, examples, and the figure harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use adapcc_simnet::cluster::InstanceId;
use adapcc_topo::logical::{EdgeKind, LogicalNode, LogicalTopology};

use crate::solver::instance_of;
use crate::strategy::Strategy;

/// Aggregated shape statistics of one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyStats {
    /// Parallel sub-collectives.
    pub parallelism: usize,
    /// Total flows across sub-collectives.
    pub flows: usize,
    /// Distinct network (NIC-to-NIC) edges used.
    pub network_edges: usize,
    /// Distinct NVLink edges used.
    pub nvlink_edges: usize,
    /// Longest route, in logical hops.
    pub max_route_hops: usize,
    /// Roots per sub-collective (rooted primitives).
    pub roots: Vec<Option<usize>>,
    /// Streams crossing each instance's NIC egress, summed over subs.
    pub egress_streams: BTreeMap<usize, usize>,
}

/// Computes shape statistics.
pub fn stats(topo: &LogicalTopology, strategy: &Strategy) -> StrategyStats {
    let mut network = std::collections::HashSet::new();
    let mut nvlink = std::collections::HashSet::new();
    let mut flows = 0;
    let mut max_hops = 0;
    let mut egress: BTreeMap<usize, usize> = BTreeMap::new();
    for sub in &strategy.subs {
        flows += sub.flows.len();
        for f in &sub.flows {
            max_hops = max_hops.max(f.route.len());
        }
        for e in sub.edges() {
            match topo.edge(e).kind {
                EdgeKind::Network => {
                    network.insert(e);
                    if let LogicalNode::Nic(InstanceId(i)) = topo.edge(e).from {
                        *egress.entry(i).or_insert(0) += 1;
                    }
                }
                EdgeKind::NvLink => {
                    nvlink.insert(e);
                }
                _ => {}
            }
        }
    }
    StrategyStats {
        parallelism: strategy.subs.len(),
        flows,
        network_edges: network.len(),
        nvlink_edges: nvlink.len(),
        max_route_hops: max_hops,
        roots: strategy.subs.iter().map(|s| s.root.map(|r| r.0)).collect(),
        egress_streams: egress,
    }
}

/// Renders a compact multi-line description of a strategy.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, Rank};
/// use adapcc_simnet::units::ByteSize;
/// use adapcc_topo::detect::Detector;
/// use adapcc_profile::profiler::Profiler;
/// use adapcc_synth::{describe, Primitive, SynthRequest, Synthesizer};
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
/// let profile = Profiler::new(&cluster, &topo, 1).run().links;
/// let req = SynthRequest::new(Primitive::AllReduce, ByteSize::from_mib(64), 2,
///                             (0..8).map(Rank).collect());
/// let s = Synthesizer::new(&topo, &profile).synthesize(&req);
/// let text = describe(&topo, &s);
/// assert!(text.contains("allreduce"));
/// ```
pub fn describe(topo: &LogicalTopology, strategy: &Strategy) -> String {
    let st = stats(topo, strategy);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} strategy: M={} ({} flows, {} network edges, {} NVLinks, max {} hops)",
        strategy.primitive,
        st.parallelism,
        st.flows,
        st.network_edges,
        st.nvlink_edges,
        st.max_route_hops
    );
    for (m, sub) in strategy.subs.iter().enumerate() {
        let root = sub
            .root
            .map(|r| format!("root gpu{} (inst{})", r.0, instance_of(topo, r).0))
            .unwrap_or_else(|| "rootless".into());
        let _ = writeln!(
            out,
            "  sub {m}: {:.0}% of tensor, {} chunks, {root}",
            sub.fraction * 100.0,
            sub.chunk,
        );
    }
    if !st.egress_streams.is_empty() {
        let loads: Vec<String> = st
            .egress_streams
            .iter()
            .map(|(i, n)| format!("inst{i}:{n}"))
            .collect();
        let _ = writeln!(out, "  NIC egress streams: {}", loads.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SynthRequest, Synthesizer};
    use crate::Primitive;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::{Cluster, Rank};
    use adapcc_simnet::units::ByteSize;
    use adapcc_topo::detect::Detector;

    #[test]
    fn stats_count_shapes() {
        let c = Cluster::paper_testbed();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).run().links;
        let req = SynthRequest::new(
            Primitive::AllReduce,
            ByteSize::from_mib(64),
            4,
            (0..24).map(Rank).collect(),
        );
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        let st = stats(&topo, &s);
        assert_eq!(st.parallelism, 4);
        assert_eq!(st.flows, 4 * 23);
        assert!(st.network_edges >= 5, "{st:?}");
        assert!(st.nvlink_edges > 0);
        assert!(!st.egress_streams.is_empty());
    }

    #[test]
    fn describe_is_readable() {
        let c = Cluster::homogeneous_a100(2);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).run().links;
        let req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(32),
            2,
            (0..8).map(Rank).collect(),
        );
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        let text = describe(&topo, &s);
        assert!(text.contains("reduce strategy: M=2"));
        assert!(text.contains("sub 0"));
        assert!(text.contains("root gpu"));
    }
}
