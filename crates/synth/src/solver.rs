//! The strategy synthesizer (paper Sec. IV-D).
//!
//! The paper formulates routing, chunk sizing and aggregation control as
//! a mixed-integer program and hands it to Gurobi. Gurobi is not
//! available here, and the MIP is NP-hard anyway, so — as documented in
//! DESIGN.md — we optimize the *same objective* (the [`CostModel`]
//! implementing eqs. 1–6) with a structured search:
//!
//! 1. **Candidate generation**: hierarchical reduce trees (per-instance
//!    leaders fed by local stars, optionally through relay hubs; star /
//!    chain / binary inter-instance shapes), with leaders rotated across
//!    the `M` sub-collectives so parallel sub-collectives use disjoint
//!    NVLinks and spread NIC load.
//! 2. **Chunk-size sweep** over a geometric grid (the latency/pipelining
//!    trade-off of eq. 5).
//! 3. **Fraction balancing**: partition sizes `S_m` reweighted inversely
//!    to each sub-collective's predicted completion.
//! 4. **Simulated annealing** over tree mutations (re-parenting
//!    instances, swapping leaders, toggling relay hubs, chunk steps),
//!    accepting strictly by the cost model, with a seeded RNG for
//!    reproducibility.

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::rng::seeded_rng;
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{EdgeKind, LogicalNode, LogicalTopology};

use crate::cost::{BackgroundLoad, CostModel, CostState};
use crate::hierarchy::Hierarchical;
use crate::primitive::Primitive;
use crate::strategy::{validate_sub, Flow, Strategy, SubCollective};

/// What to synthesize.
#[derive(Debug, Clone)]
pub struct SynthRequest {
    /// The primitive.
    pub primitive: Primitive,
    /// Per-rank tensor size.
    pub tensor: ByteSize,
    /// Number of parallel sub-collectives (`M`, paper default 4).
    pub parallelism: usize,
    /// Workers contributing data.
    pub participants: Vec<Rank>,
    /// Non-ready workers available as forwarding/aggregating relays.
    pub relays: Vec<Rank>,
    /// Preferred root (rooted primitives); chosen automatically if
    /// `None`.
    pub root: Option<Rank>,
    /// RNG seed for the annealer.
    pub seed: u64,
}

impl SynthRequest {
    /// A request with no relays and an automatic root.
    pub fn new(
        primitive: Primitive,
        tensor: ByteSize,
        parallelism: usize,
        participants: Vec<Rank>,
    ) -> Self {
        SynthRequest {
            primitive,
            tensor,
            parallelism,
            participants,
            relays: Vec::new(),
            root: None,
            seed: 0,
        }
    }
}

/// Search effort knobs.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Annealing iterations.
    pub anneal_iters: usize,
    /// Initial acceptance temperature relative to the initial cost.
    pub initial_temp: f64,
    /// Chunk-size grid swept for every sub-collective.
    pub chunk_grid: Vec<ByteSize>,
    /// Fraction-balancing passes.
    pub balance_passes: usize,
    /// Independent annealing chains the iteration budget is split
    /// across. Part of the *search definition*: changing it changes the
    /// synthesized strategy (each chain explores from its own seed and
    /// the deterministic argmin picks the cheapest). The default of 1
    /// is bit-identical to the historical sequential annealer.
    pub anneal_chains: usize,
    /// Worker threads chains are scheduled onto, clamped to
    /// [`anneal_chains`](Self::anneal_chains). Pure *execution* knob:
    /// the synthesized strategy is bit-identical for any value — chain
    /// seeds, iteration splits and the cost argmin are all independent
    /// of how chains map to threads.
    pub solver_threads: usize,
    /// When to decompose into intra-/inter-server tiers instead of
    /// running the flat whole-fleet search (see [`crate::hierarchy`]).
    pub hierarchical: Hierarchical,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            anneal_iters: 240,
            initial_temp: 0.08,
            chunk_grid: vec![
                ByteSize::from_kib(256),
                ByteSize::from_kib(512),
                ByteSize::from_mib(1),
                ByteSize::from_mib(2),
                ByteSize::from_mib(4),
                ByteSize::from_mib(8),
            ],
            balance_passes: 3,
            anneal_chains: 1,
            solver_threads: 1,
            hierarchical: Hierarchical::Auto,
        }
    }
}

/// The synthesizer.
///
/// # Examples
///
/// ```
/// use adapcc_simnet::cluster::{Cluster, Rank};
/// use adapcc_simnet::units::ByteSize;
/// use adapcc_topo::detect::Detector;
/// use adapcc_profile::profiler::Profiler;
/// use adapcc_synth::primitive::Primitive;
/// use adapcc_synth::solver::{SynthRequest, Synthesizer};
///
/// let cluster = Cluster::homogeneous_a100(2);
/// let topo = Detector::new(&cluster, 1).run().logical_topology(&cluster);
/// let profile = Profiler::new(&cluster, &topo, 1).run().links;
/// let req = SynthRequest::new(
///     Primitive::Reduce,
///     ByteSize::from_mib(64),
///     4,
///     (0..8).map(Rank).collect(),
/// );
/// let strategy = Synthesizer::new(&topo, &profile).synthesize(&req);
/// assert_eq!(strategy.parallelism(), 4);
/// assert!(strategy.validate(&topo).is_ok());
/// ```
#[derive(Debug)]
pub struct Synthesizer<'a> {
    topo: &'a LogicalTopology,
    profile: &'a LinkProfile,
    config: SynthConfig,
    telemetry: adapcc_telemetry::Telemetry,
    background: Option<&'a BackgroundLoad>,
}

/// Instance of a rank, derived from the logical topology's host links
/// (the synthesizer never touches the physical cluster).
pub fn instance_of(topo: &LogicalTopology, rank: Rank) -> InstanceId {
    for e in topo.edges_from(LogicalNode::Gpu(rank)) {
        let edge = topo.edge(*e);
        if edge.kind == EdgeKind::HostLink {
            if let LogicalNode::Nic(i) = edge.to {
                return i;
            }
        }
    }
    panic!("rank {rank:?} has no host link in the logical topology");
}

/// The per-sub-collective tree blueprint the annealer mutates;
/// `realize` expands it to flows.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TreeSpec {
    /// Leader GPU per participating instance.
    pub(crate) leader: BTreeMap<InstanceId, Rank>,
    /// Inter-instance tree: child instance -> parent instance.
    pub(crate) parent: BTreeMap<InstanceId, InstanceId>,
    /// Root GPU of this sub-collective. Plain Reduce pins one root for
    /// every sub; AllReduce spreads roots across instances so the
    /// aggregation load is not funnelled into a single NIC (the
    /// parallel-sub-collective benefit of Fig. 8).
    pub(crate) root: Rank,
    /// Root instance.
    pub(crate) root_inst: InstanceId,
    /// Members routed through a relay hub: member -> hub.
    pub(crate) via_hub: BTreeMap<Rank, Rank>,
    /// Chunk size flows of this sub are pipelined at.
    pub(crate) chunk: ByteSize,
    /// Share of the tensor carried by this sub.
    pub(crate) fraction: f64,
}

/// A full strategy blueprint: one [`TreeSpec`] per sub-collective.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    /// Blueprints, indexed like `Strategy::subs`.
    pub(crate) specs: Vec<TreeSpec>,
}

/// Salt deriving the seeds of annealing chains 1.. from the request
/// seed; chain 0 keeps the raw seed so a single chain replays the
/// historical sequential stream bit-for-bit.
const CHAIN_SEED_SALT: u64 = 0xC4A1_4E5D_5EED_0001;

/// Result of one annealing chain: its best cost, the improving plan and
/// strategy if it found one, and its evaluation tallies.
struct ChainOut {
    cost: f64,
    best: Option<(Plan, Strategy)>,
    full: u64,
    delta: u64,
}

/// What a mutation changed: one sub-collective's tree (re-realize and
/// delta-score just that sub) or the fraction split (re-partition
/// only — no flow changes).
#[derive(Debug, Clone, Copy)]
enum Mutated {
    Spec(usize),
    Fractions,
}

/// The fraction half of `Strategy::validate`, applied before a
/// fraction delta (fraction mutations leave every tree untouched, so
/// this is the only check that can newly fail).
fn fractions_valid(fracs: &[f64]) -> bool {
    let total: f64 = fracs.iter().sum();
    (total - 1.0).abs() <= 1e-6 && fracs.iter().all(|f| *f >= 0.0)
}

/// Serializable blueprint of one sub-collective's tree — the public
/// mirror of the solver's internal `TreeSpec`, exported so plan caches
/// can persist enough structure to warm-start a later search.
#[derive(Debug, Clone, PartialEq)]
pub struct SubSeed {
    /// Leader GPU per participating instance.
    pub leader: BTreeMap<InstanceId, Rank>,
    /// Inter-instance tree: child instance -> parent instance.
    pub parent: BTreeMap<InstanceId, InstanceId>,
    /// Root GPU of this sub-collective.
    pub root: Rank,
    /// Root instance.
    pub root_inst: InstanceId,
    /// Members routed through a relay hub: member -> hub.
    pub via_hub: BTreeMap<Rank, Rank>,
    /// Pipelining chunk size.
    pub chunk: ByteSize,
    /// Tensor fraction assigned to this sub-collective.
    pub fraction: f64,
}

/// Blueprint of a whole synthesized plan, returned alongside the
/// strategy by [`Synthesizer::synthesize_with_seed`] and accepted by
/// [`Synthesizer::synthesize_warm`].
///
/// Empty for analytic primitives (AllToAll) whose synthesis has no
/// annealed tree structure worth reusing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSeed {
    /// One blueprint per sub-collective.
    pub subs: Vec<SubSeed>,
}

impl From<&TreeSpec> for SubSeed {
    fn from(spec: &TreeSpec) -> Self {
        SubSeed {
            leader: spec.leader.clone(),
            parent: spec.parent.clone(),
            root: spec.root,
            root_inst: spec.root_inst,
            via_hub: spec.via_hub.clone(),
            chunk: spec.chunk,
            fraction: spec.fraction,
        }
    }
}

fn spec_from_seed(seed: &SubSeed) -> TreeSpec {
    TreeSpec {
        leader: seed.leader.clone(),
        parent: seed.parent.clone(),
        root: seed.root,
        root_inst: seed.root_inst,
        via_hub: seed.via_hub.clone(),
        chunk: seed.chunk,
        fraction: seed.fraction,
    }
}

fn plan_seed(plan: &Plan) -> PlanSeed {
    PlanSeed {
        subs: plan.specs.iter().map(SubSeed::from).collect(),
    }
}

impl<'a> Synthesizer<'a> {
    /// A synthesizer with default search effort.
    pub fn new(topo: &'a LogicalTopology, profile: &'a LinkProfile) -> Self {
        Synthesizer {
            topo,
            profile,
            config: SynthConfig::default(),
            telemetry: adapcc_telemetry::Telemetry::disabled(),
            background: None,
        }
    }

    /// Overrides the search configuration.
    pub fn with_config(mut self, config: SynthConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry sink: every synthesis bumps `synth.*`
    /// counters (requests, search effort, chosen root). The timed
    /// `synthesize` span is emitted by callers that own the session
    /// timeline — synthesis itself runs on the control plane, not the
    /// simulated fabric.
    pub fn with_telemetry(mut self, telemetry: adapcc_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pins a background load: every cost evaluation during synthesis
    /// scores the candidate against these already-scheduled streams in
    /// addition to its own, lifting the eq. 3 equal-share bandwidth
    /// model across co-scheduled process groups. The solve stays fully
    /// deterministic — the background is a fixed snapshot, not live
    /// state.
    pub fn with_background(mut self, background: &'a BackgroundLoad) -> Self {
        self.background = Some(background);
        self
    }

    /// The logical topology being synthesized over.
    pub(crate) fn topo(&self) -> &'a LogicalTopology {
        self.topo
    }

    /// The profiled link fits driving the cost model.
    pub(crate) fn profile(&self) -> &'a LinkProfile {
        self.profile
    }

    /// The active search configuration.
    pub(crate) fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The telemetry sink.
    pub(crate) fn telemetry(&self) -> &adapcc_telemetry::Telemetry {
        &self.telemetry
    }

    /// The pinned background load, if co-scheduled.
    pub(crate) fn background(&self) -> Option<&'a BackgroundLoad> {
        self.background
    }

    /// The cost model every solve scores against, with the pinned
    /// background (if any) applied.
    pub(crate) fn cost_model(&self) -> CostModel<'a> {
        let model = CostModel::new(self.topo, self.profile);
        match self.background {
            Some(bg) => model.with_background(bg),
            None => model,
        }
    }

    /// Produces a validated strategy for the request.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty, contains duplicates, or if
    /// `parallelism` is zero.
    pub fn synthesize(&self, req: &SynthRequest) -> Strategy {
        self.synthesize_with_seed(req).0
    }

    /// Like [`synthesize`](Self::synthesize), but also returns the
    /// winning plan blueprint so callers (the plan cache) can persist
    /// it and later [`synthesize_warm`](Self::synthesize_warm) from it.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty, contains duplicates, or if
    /// `parallelism` is zero.
    pub fn synthesize_with_seed(&self, req: &SynthRequest) -> (Strategy, PlanSeed) {
        assert!(!req.participants.is_empty(), "no participants");
        assert!(req.parallelism > 0, "parallelism must be positive");
        self.telemetry.add_counter("synth.requests", 1.0);
        self.telemetry
            .set_counter("synth.participants", req.participants.len() as f64);
        self.telemetry
            .set_counter("synth.anneal_iters", self.config.anneal_iters as f64);
        let mut uniq = req.participants.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), req.participants.len(), "duplicate participants");

        match req.primitive {
            Primitive::AllToAll => (self.synthesize_alltoall(req), PlanSeed::default()),
            Primitive::Broadcast => {
                let (reduce, plan) = self.synthesize_reduce_plan(req);
                (
                    reduce.reversed(self.topo, Primitive::Broadcast),
                    plan_seed(&plan),
                )
            }
            Primitive::Reduce | Primitive::AllReduce => {
                let (mut s, plan) = self.synthesize_reduce_plan(req);
                s.primitive = req.primitive;
                (s, plan_seed(&plan))
            }
            Primitive::AllGather | Primitive::ReduceScatter => panic!(
                "{} is composed from per-root Broadcast/Reduce strategies by the \
                 Communicator (paper Sec. IV-D); synthesize those instead",
                req.primitive
            ),
        }
    }

    /// Warm-starts synthesis from a previously-cached [`PlanSeed`]:
    /// skips candidate generation and the long anneal, re-running only
    /// the analytic chunk-size sweep, fraction balancing and a short
    /// polish anneal (1/8 of the configured iterations).
    ///
    /// Returns `None` when the seed no longer matches the request —
    /// participants moved instances, a seeded leader or root left the
    /// participant set, a hub is no longer a relay, or the requested
    /// root changed — in which case callers fall back to a cold
    /// [`synthesize_with_seed`](Self::synthesize_with_seed).
    pub fn synthesize_warm(
        &self,
        req: &SynthRequest,
        seed: &PlanSeed,
    ) -> Option<(Strategy, PlanSeed)> {
        assert!(!req.participants.is_empty(), "no participants");
        assert!(req.parallelism > 0, "parallelism must be positive");
        self.telemetry.add_counter("synth.warm_requests", 1.0);
        match req.primitive {
            Primitive::AllToAll => Some((self.synthesize_alltoall(req), PlanSeed::default())),
            Primitive::Broadcast => {
                let (reduce, plan) = self.warm_reduce_plan(req, seed)?;
                Some((
                    reduce.reversed(self.topo, Primitive::Broadcast),
                    plan_seed(&plan),
                ))
            }
            Primitive::Reduce | Primitive::AllReduce => {
                let (mut s, plan) = self.warm_reduce_plan(req, seed)?;
                s.primitive = req.primitive;
                Some((s, plan_seed(&plan)))
            }
            Primitive::AllGather | Primitive::ReduceScatter => None,
        }
    }

    /// Synthesizes the Reduce strategy and its reverse Broadcast —
    /// the pair AllReduce pipelines (paper Sec. IV-D).
    pub fn synthesize_allreduce(&self, req: &SynthRequest) -> (Strategy, Strategy) {
        let (mut reduce, _) = self.synthesize_reduce_plan(req);
        reduce.primitive = Primitive::Reduce;
        let bcast = reduce.reversed(self.topo, Primitive::Broadcast);
        (reduce, bcast)
    }

    // ---- Reduce family ----

    /// Synthesizes the reduce-family strategy and its blueprint,
    /// dispatching to the two-tier decomposition for cluster-scale
    /// fleets (see [`crate::hierarchy`]) and the flat search otherwise.
    pub(crate) fn synthesize_reduce_plan(&self, req: &SynthRequest) -> (Strategy, Plan) {
        let by_inst = group_by_instance(self.topo, &req.participants);
        if self
            .config
            .hierarchical
            .enabled_for(req.participants.len(), by_inst.len())
        {
            if let Some(out) = crate::hierarchy::synthesize_hierarchical(self, req, &by_inst) {
                return out;
            }
            // Composition failed realization or validation: fall back
            // to the flat whole-fleet search.
        }
        let model = self.cost_model();
        let hubs = group_by_instance(self.topo, &req.relays);
        let insts: Vec<InstanceId> = by_inst.keys().copied().collect();

        // Root: requested, else a participant on the instance with the
        // fattest profiled ingress.
        let root = req.root.unwrap_or_else(|| {
            let best = insts
                .iter()
                .max_by(|a, b| {
                    self.ingress_score(**a)
                        .partial_cmp(&self.ingress_score(**b))
                        .unwrap()
                        .then(b.0.cmp(&a.0)) // deterministic tie-break: lower id
                })
                .copied()
                .expect("non-empty instance set");
            by_inst[&best][0]
        });
        let root_inst = instance_of(self.topo, root);
        self.telemetry.set_counter("synth.root_rank", root.0 as f64);
        self.telemetry.set_counter(
            "synth.root_ingress_gbps",
            self.ingress_score(root_inst) / 1e9,
        );

        // Initial plan per inter-tree shape x root family; keep the best.
        let allow_multi = req.primitive == Primitive::AllReduce && req.root.is_none();
        let mut best: Option<(f64, Plan, Strategy)> = None;
        let mut candidate_evals = 0u64;
        for shape in [TreeShape::Star, TreeShape::Binary, TreeShape::Chain] {
            for multi_root in [false, true] {
                if multi_root && !allow_multi {
                    continue;
                }
                let plan =
                    self.initial_plan(req, &by_inst, &hubs, root, root_inst, shape, multi_root);
                if let Some(strategy) = self.realize_plan(&plan, req, &by_inst, &hubs) {
                    if strategy.validate(self.topo).is_err() {
                        continue;
                    }
                    let cost = model.evaluate(&strategy, req.tensor).completion.as_secs();
                    candidate_evals += 1;
                    if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                        best = Some((cost, plan, strategy));
                    }
                }
            }
        }
        let (best_cost, plan, best_strategy) = best.expect("at least one candidate realizes");
        let (_, plan, best_strategy) = self.refine_plan(
            best_cost,
            plan,
            best_strategy,
            req,
            &by_inst,
            &hubs,
            &model,
            self.config.anneal_iters,
            req.seed ^ 0x5EED_CAFE,
            candidate_evals,
        );
        (best_strategy, plan)
    }

    /// Warm path of the reduce family: rebuild the plan from a seed
    /// blueprint, validate it against the current participant
    /// structure, then run only the cheap refinement (chunk sweep,
    /// fraction balancing, short polish anneal).
    fn warm_reduce_plan(&self, req: &SynthRequest, seed: &PlanSeed) -> Option<(Strategy, Plan)> {
        if seed.subs.len() != req.parallelism {
            return None;
        }
        let model = self.cost_model();
        let by_inst = group_by_instance(self.topo, &req.participants);
        let hubs = group_by_instance(self.topo, &req.relays);
        for sub in &seed.subs {
            if sub.leader.len() != by_inst.len() || sub.parent.len() != by_inst.len() {
                return None;
            }
            for (inst, members) in &by_inst {
                if !sub.leader.get(inst).is_some_and(|l| members.contains(l)) {
                    return None;
                }
                if !sub.parent.contains_key(inst) {
                    return None;
                }
            }
            if !req.participants.contains(&sub.root) {
                return None;
            }
            if req.root.is_some_and(|r| sub.root != r) {
                return None;
            }
            for hub in sub.via_hub.values() {
                let inst = instance_of(self.topo, *hub);
                if !hubs.get(&inst).is_some_and(|h| h.contains(hub)) {
                    return None;
                }
            }
            if !(sub.fraction.is_finite() && sub.fraction > 0.0) {
                return None;
            }
        }
        let mut plan = Plan {
            specs: seed.subs.iter().map(spec_from_seed).collect(),
        };
        // Disk-loaded seeds may carry drifted fractions; renormalize.
        let total: f64 = plan.specs.iter().map(|s| s.fraction).sum();
        for s in &mut plan.specs {
            s.fraction /= total;
        }
        let (best_cost, best_strategy) = self.eval_plan(&plan, req, &by_inst, &hubs, &model)?;
        let polish_iters = self.config.anneal_iters / 8;
        let (_, plan, best_strategy) = self.refine_plan(
            best_cost,
            plan,
            best_strategy,
            req,
            &by_inst,
            &hubs,
            &model,
            polish_iters,
            req.seed ^ 0x3A3A_F00D,
            1,
        );
        Some((best_strategy, plan))
    }

    /// Shared refinement pipeline: chunk sweep, fraction balancing and
    /// an anneal of `anneal_iters` mutations split across
    /// `anneal_chains` independent chains. The cold path runs the full
    /// configured anneal; the warm path a short polish. Every step is
    /// scored incrementally against a persistent [`CostState`] —
    /// `caller_full_evals` folds the caller's candidate evaluations
    /// into the emitted `synth.full_evals` counter.
    #[allow(clippy::too_many_arguments)] // refinement state travels as one bundle
    pub(crate) fn refine_plan(
        &self,
        mut best_cost: f64,
        mut plan: Plan,
        mut best_strategy: Strategy,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
        hubs: &BTreeMap<InstanceId, Vec<Rank>>,
        model: &CostModel<'_>,
        anneal_iters: usize,
        rng_seed: u64,
        caller_full_evals: u64,
    ) -> (f64, Plan, Strategy) {
        let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
        let mut state = model.state(&best_strategy, req.tensor);
        debug_assert_eq!(
            state.completion_secs().to_bits(),
            best_cost.to_bits(),
            "state rebuild diverged from the caller's evaluation"
        );

        // Chunk sweep (uniform across subs): replace every sub's chunk
        // as one delta batch, keep the batch only if it improves.
        for &chunk in &self.config.chunk_grid {
            let mut cost = best_cost;
            for m in 0..plan.specs.len() {
                let mut sub = state.sub(m).clone();
                sub.chunk = chunk;
                cost = state.replace_sub(m, sub);
            }
            if cost < best_cost {
                state.commit();
                best_cost = cost;
                for s in &mut plan.specs {
                    s.chunk = chunk;
                }
            } else {
                state.rollback();
            }
        }

        // Fraction balancing: reweight inversely to the current per-sub
        // completions (state-cached — the state *is* the best plan
        // here) and keep the reweighting while it improves.
        for _ in 0..self.config.balance_passes {
            let est = state.estimate();
            let mut p = plan.clone();
            rebalance_fractions(&mut p, &est.per_sub);
            let fracs: Vec<f64> = p.specs.iter().map(|s| s.fraction).collect();
            if !fractions_valid(&fracs) {
                continue;
            }
            let cost = state.set_fractions(&fracs);
            if cost < best_cost {
                state.commit();
                best_cost = cost;
                plan = p;
            } else {
                state.rollback();
                break;
            }
        }
        best_strategy = state.strategy();
        let (pre_full, pre_delta) = state.take_eval_counts();

        // Simulated annealing, split over `anneal_chains` independent
        // chains. Chain 0 continues the historical sequential stream
        // (seed `rng_seed`, so `anneal_chains == 1` is bit-identical to
        // the old annealer); chains 1.. draw their seeds from a salted
        // ChaCha stream. Every chain starts from the refined plan and
        // owns a private `CostState`; the winner is the deterministic
        // argmin over (cost, chain index) — independent of how many
        // threads the chains ran on.
        let chains = self.config.anneal_chains.max(1);
        let t0 = best_cost * self.config.initial_temp;
        let chain_seeds: Vec<u64> = {
            let mut salt_rng = seeded_rng(rng_seed ^ CHAIN_SEED_SALT);
            std::iter::once(rng_seed)
                .chain((1..chains).map(|_| salt_rng.gen::<u64>()))
                .collect()
        };
        let chain_iters: Vec<usize> = (0..chains)
            .map(|c| anneal_iters / chains + usize::from(c < anneal_iters % chains))
            .collect();

        let run_chain = |state: &mut CostState<'_>, seed: u64, iters: usize| -> ChainOut {
            let mut rng = seeded_rng(seed);
            let mut cur = plan.clone();
            let mut cur_cost = best_cost;
            let mut chain_cost = best_cost;
            let mut chain_best: Option<(Plan, Strategy)> = None;
            for it in 0..iters {
                let temp = t0 * (1.0 - it as f64 / iters as f64).max(1e-3);
                let mut cand = cur.clone();
                let Some(mutated) = self.mutate(&mut cand, req, by_inst, hubs, &insts, &mut rng)
                else {
                    continue;
                };
                // Delta-score the single change. Untouched subs keep
                // their realization and validity, so validating just
                // the mutated one is equivalent to the historical
                // whole-strategy check.
                let cost = match mutated {
                    Mutated::Spec(m) => {
                        let Some(sub) = self.realize_sub(&cand.specs[m], req, by_inst) else {
                            continue;
                        };
                        if validate_sub(&sub, self.topo, m).is_err() {
                            continue;
                        }
                        state.replace_sub(m, sub)
                    }
                    Mutated::Fractions => {
                        let fracs: Vec<f64> = cand.specs.iter().map(|s| s.fraction).collect();
                        if !fractions_valid(&fracs) {
                            continue;
                        }
                        state.set_fractions(&fracs)
                    }
                };
                let accept = cost < cur_cost
                    || rng.gen::<f64>() < ((cur_cost - cost) / temp.max(1e-12)).exp();
                if accept {
                    state.commit();
                    cur_cost = cost;
                    cur = cand;
                    if cost < chain_cost {
                        chain_cost = cost;
                        chain_best = Some((cur.clone(), state.strategy()));
                    }
                } else {
                    state.rollback();
                }
            }
            let (full, delta) = state.take_eval_counts();
            ChainOut {
                cost: chain_cost,
                best: chain_best,
                full,
                delta,
            }
        };

        let mut outs: Vec<ChainOut> = if chains == 1 {
            // Sequential fast path: continue on the refinement state.
            vec![run_chain(&mut state, chain_seeds[0], chain_iters[0])]
        } else {
            // Each chain gets a fresh state (even single-threaded, so
            // the eval counters are invariant in the thread count) and
            // chains are dealt round-robin onto the workers.
            let threads = self.config.solver_threads.clamp(1, chains);
            let mut slots: Vec<Option<ChainOut>> = (0..chains).map(|_| None).collect();
            let run = &run_chain;
            let strategy = &best_strategy;
            let seeds = &chain_seeds;
            let iters = &chain_iters;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut outs = Vec::new();
                            let mut c = t;
                            while c < chains {
                                let mut st = model.state(strategy, req.tensor);
                                outs.push((c, run(&mut st, seeds[c], iters[c])));
                                c += threads;
                            }
                            outs
                        })
                    })
                    .collect();
                for h in handles {
                    for (c, out) in h.join().expect("annealing chain panicked") {
                        slots[c] = Some(out);
                    }
                }
            });
            slots
                .into_iter()
                .map(|o| o.expect("every chain ran"))
                .collect()
        };

        let full: u64 = caller_full_evals + pre_full + outs.iter().map(|o| o.full).sum::<u64>();
        let delta: u64 = pre_delta + outs.iter().map(|o| o.delta).sum::<u64>();
        self.telemetry.add_counter("synth.full_evals", full as f64);
        self.telemetry
            .add_counter("synth.delta_evals", delta as f64);
        self.telemetry.set_counter("synth.chains", chains as f64);

        let mut win = 0;
        for c in 1..outs.len() {
            if outs[c].cost < outs[win].cost {
                win = c;
            }
        }
        let winner = outs.swap_remove(win);
        if let Some((p, s)) = winner.best {
            best_cost = winner.cost;
            plan = p;
            best_strategy = s;
        }
        (best_cost, plan, best_strategy)
    }

    pub(crate) fn eval_plan(
        &self,
        plan: &Plan,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
        hubs: &BTreeMap<InstanceId, Vec<Rank>>,
        model: &CostModel<'_>,
    ) -> Option<(f64, Strategy)> {
        let strategy = self.realize_plan(plan, req, by_inst, hubs)?;
        strategy.validate(self.topo).ok()?;
        let cost = model.evaluate(&strategy, req.tensor).completion.as_secs();
        Some((cost, strategy))
    }

    /// Profiled ingress bandwidth of an instance's NIC (score for root
    /// placement). Prefers the fan-in aggregate measurement — pairwise
    /// edge fits are capped by the slower peer and cannot distinguish a
    /// fat NIC from its neighbours — and falls back to the fattest
    /// profiled edge into the NIC when no fan-in pass ran.
    fn ingress_score(&self, inst: InstanceId) -> f64 {
        if let Some(bw) = self.profile.nic_ingress(inst) {
            return bw.as_bytes_per_sec();
        }
        let nic = LogicalNode::Nic(inst);
        let mut best = 0.0_f64;
        for e in self.topo.edges_into(nic) {
            if self.topo.edge(*e).kind == EdgeKind::Network {
                if let Some(ab) = self.profile.get(*e) {
                    best = best.max(ab.bandwidth().as_bytes_per_sec());
                }
            }
        }
        best
    }

    #[allow(clippy::too_many_arguments)] // plan construction is one step
    fn initial_plan(
        &self,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
        hubs: &BTreeMap<InstanceId, Vec<Rank>>,
        root: Rank,
        root_inst: InstanceId,
        shape: TreeShape,
        multi_root: bool,
    ) -> Plan {
        let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
        // Order non-root instances by descending NIC ingress for tree
        // layout decisions.
        let mut others: Vec<InstanceId> =
            insts.iter().copied().filter(|i| *i != root_inst).collect();
        others.sort_by(|a, b| {
            self.ingress_score(*b)
                .partial_cmp(&self.ingress_score(*a))
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        // AllReduce may spread sub-collective roots over the instances
        // with the fattest profiled ingress; plain Reduce keeps the
        // single semantic root.
        let mut root_order: Vec<InstanceId> = insts.clone();
        root_order.sort_by(|a, b| {
            self.ingress_score(*b)
                .partial_cmp(&self.ingress_score(*a))
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        let mut specs = Vec::with_capacity(req.parallelism);
        for m in 0..req.parallelism {
            let (sub_root_inst, sub_root) = if multi_root {
                let inst = root_order[m % root_order.len()];
                let members = &by_inst[&inst];
                (inst, members[m % members.len()])
            } else {
                (root_inst, root)
            };
            let sub_others: Vec<InstanceId> = insts
                .iter()
                .copied()
                .filter(|i| *i != sub_root_inst)
                .collect();
            let mut leader = BTreeMap::new();
            for (inst, members) in by_inst {
                if *inst == sub_root_inst {
                    leader.insert(*inst, sub_root);
                } else {
                    // Rotate leaders across sub-collectives to spread
                    // NVLink and PCIe load.
                    leader.insert(*inst, members[m % members.len()]);
                }
            }
            let mut parent = BTreeMap::new();
            parent.insert(sub_root_inst, sub_root_inst);
            match shape {
                TreeShape::Star => {
                    for i in &sub_others {
                        parent.insert(*i, sub_root_inst);
                    }
                }
                TreeShape::Binary => {
                    // Heap order over [root, others...].
                    let order: Vec<InstanceId> = std::iter::once(sub_root_inst)
                        .chain(sub_others.iter().copied())
                        .collect();
                    for (idx, inst) in order.iter().enumerate().skip(1) {
                        parent.insert(*inst, order[(idx - 1) / 2]);
                    }
                }
                TreeShape::Chain => {
                    let order: Vec<InstanceId> = std::iter::once(sub_root_inst)
                        .chain(sub_others.iter().copied())
                        .collect();
                    for w in order.windows(2) {
                        parent.insert(w[1], w[0]);
                    }
                }
            }
            // Relay hubs: route the back half of each instance's members
            // through a local relay on odd sub-collectives, exercising
            // extra NVLinks.
            let mut via_hub = BTreeMap::new();
            if m % 2 == 1 {
                for (inst, members) in by_inst {
                    if let Some(hub_list) = hubs.get(inst) {
                        if !hub_list.is_empty() && members.len() > 2 {
                            let hub = hub_list[m % hub_list.len()];
                            for r in members.iter().skip(members.len() / 2) {
                                if *r != leader[inst] {
                                    via_hub.insert(*r, hub);
                                }
                            }
                        }
                    }
                }
            }
            specs.push(TreeSpec {
                leader,
                parent,
                root: sub_root,
                root_inst: sub_root_inst,
                via_hub,
                chunk: ByteSize::from_mib(1),
                fraction: 1.0 / req.parallelism as f64,
            });
        }
        Plan { specs }
    }

    /// Expands a plan into a flow-level strategy. Returns `None` if a
    /// needed logical edge is missing (mutation produced nonsense).
    fn realize_plan(
        &self,
        plan: &Plan,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
        _hubs: &BTreeMap<InstanceId, Vec<Rank>>,
    ) -> Option<Strategy> {
        let mut subs = Vec::with_capacity(plan.specs.len());
        for spec in &plan.specs {
            subs.push(self.realize_sub(spec, req, by_inst)?);
        }
        Some(Strategy {
            // Evaluate under the requested primitive's pricing rules —
            // an AllReduce must be costed as reduce + reverse broadcast
            // in duplex, not as its reduce half alone.
            primitive: req.primitive,
            subs,
        })
    }

    /// Expands one tree blueprint into a flow-level sub-collective —
    /// the per-sub unit the annealer re-realizes after a mutation.
    /// Returns `None` if a needed logical edge is missing.
    fn realize_sub(
        &self,
        spec: &TreeSpec,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
    ) -> Option<SubCollective> {
        // Leader chain to the root for each instance: sequence of
        // (leader, instance) hops up the inter tree.
        let mut aggregate: BTreeMap<LogicalNode, bool> = BTreeMap::new();
        if req.primitive.aggregates() || matches!(req.primitive, Primitive::AllGather) {
            for (_, l) in spec.leader.iter() {
                aggregate.insert(LogicalNode::Gpu(*l), true);
            }
            for hub in spec.via_hub.values() {
                aggregate.insert(LogicalNode::Gpu(*hub), true);
            }
            aggregate.insert(LogicalNode::Gpu(spec.root), true);
        }
        let mut flows = Vec::new();
        for (inst, members) in by_inst {
            for r in members {
                if *r == spec.root {
                    continue;
                }
                let route = self.route_to_root(*r, *inst, spec, spec.root)?;
                flows.push(Flow {
                    src: LogicalNode::Gpu(*r),
                    dst: LogicalNode::Gpu(spec.root),
                    route,
                });
            }
        }
        Some(SubCollective {
            fraction: spec.fraction,
            chunk: spec.chunk,
            root: Some(spec.root),
            flows,
            aggregate,
        })
    }

    /// Edge chain carrying rank `r` (on `inst`) to the root: local hop
    /// to the hub and/or leader, then up the instance tree via NICs.
    fn route_to_root(
        &self,
        r: Rank,
        inst: InstanceId,
        spec: &TreeSpec,
        root: Rank,
    ) -> Option<Vec<adapcc_topo::logical::EdgeId>> {
        let g = LogicalNode::Gpu;
        let nic = LogicalNode::Nic;
        let mut route = Vec::new();
        let leader = spec.leader[&inst];
        let mut cursor = r;
        if let Some(hub) = spec.via_hub.get(&r) {
            if *hub != cursor && *hub != leader {
                route.push(self.topo.edge_between(g(cursor), g(*hub))?);
                cursor = *hub;
            }
        }
        if cursor != leader {
            route.push(self.topo.edge_between(g(cursor), g(leader))?);
            cursor = leader;
        }
        // Climb the inter-instance tree.
        let mut here_inst = inst;
        let mut guard = 0;
        while here_inst != spec.root_inst {
            let up = *spec.parent.get(&here_inst)?;
            if up == here_inst {
                return None;
            }
            let up_leader = if up == spec.root_inst {
                root
            } else {
                spec.leader[&up]
            };
            route.push(self.topo.edge_between(g(cursor), nic(here_inst))?);
            route.push(self.topo.edge_between(nic(here_inst), nic(up))?);
            route.push(self.topo.edge_between(nic(up), g(up_leader))?);
            cursor = up_leader;
            here_inst = up;
            guard += 1;
            if guard > spec.parent.len() + 1 {
                return None; // parent map has a cycle
            }
        }
        if cursor != root {
            route.push(self.topo.edge_between(g(cursor), g(root))?);
        }
        Some(route)
    }

    /// Applies one random structural mutation to `plan`, reporting what
    /// changed so the caller can delta-score exactly that. The RNG draw
    /// sequence is identical to the historical boolean version —
    /// `insts` is hoisted out of the hot loop and drawn against by
    /// index, never re-collected or re-filtered into fresh `Vec`s.
    fn mutate(
        &self,
        plan: &mut Plan,
        req: &SynthRequest,
        by_inst: &BTreeMap<InstanceId, Vec<Rank>>,
        hubs: &BTreeMap<InstanceId, Vec<Rank>>,
        insts: &[InstanceId],
        rng: &mut ChaCha8Rng,
    ) -> Option<Mutated> {
        let m = rng.gen_range(0..plan.specs.len());
        let op = rng.gen_range(0..6u8);
        if op == 5 {
            // Re-root one sub-collective (AllReduce only: plain Reduce
            // has a single semantic root).
            if req.primitive != Primitive::AllReduce || req.root.is_some() {
                return None;
            }
            let spec = &mut plan.specs[m];
            let inst = insts[rng.gen_range(0..insts.len())];
            let members = &by_inst[&inst];
            let new_root = members[rng.gen_range(0..members.len())];
            if new_root == spec.root {
                return None;
            }
            spec.root = new_root;
            spec.root_inst = inst;
            spec.leader.insert(inst, new_root);
            // Rebuild the parent map as a star from the new root; the
            // re-parent mutation refines it afterwards.
            spec.parent.clear();
            spec.parent.insert(inst, inst);
            for i in insts.iter().filter(|i| **i != inst) {
                spec.parent.insert(*i, inst);
            }
            spec.via_hub
                .retain(|r, hub| *r != new_root && *hub != new_root);
            return Some(Mutated::Spec(m));
        }
        if op == 4 {
            // Move fraction between two subs (operates on the whole plan).
            if plan.specs.len() < 2 {
                return None;
            }
            let a = rng.gen_range(0..plan.specs.len());
            let b = rng.gen_range(0..plan.specs.len());
            if a == b {
                return None;
            }
            let delta = (plan.specs[a].fraction * 0.25).min(0.1);
            if plan.specs[a].fraction - delta < 0.02 {
                return None;
            }
            plan.specs[a].fraction -= delta;
            plan.specs[b].fraction += delta;
            return Some(Mutated::Fractions);
        }
        let spec = &mut plan.specs[m];
        match op {
            0 => {
                // Re-parent a non-root instance. Count-then-nth keeps
                // the historical filtered-`Vec` selection order without
                // allocating.
                let candidates = insts.iter().filter(|i| **i != spec.root_inst).count();
                if candidates == 0 {
                    return None;
                }
                let pick = rng.gen_range(0..candidates);
                let child = *insts
                    .iter()
                    .filter(|i| **i != spec.root_inst)
                    .nth(pick)
                    .expect("pick < candidate count");
                let new_parent = insts[rng.gen_range(0..insts.len())];
                if new_parent == child {
                    return None;
                }
                spec.parent.insert(child, new_parent);
                Some(Mutated::Spec(m))
            }
            1 => {
                // Swap an instance's leader.
                let inst = insts[rng.gen_range(0..insts.len())];
                if inst == spec.root_inst {
                    return None;
                }
                let members = &by_inst[&inst];
                if members.len() < 2 {
                    return None;
                }
                let new_leader = members[rng.gen_range(0..members.len())];
                spec.leader.insert(inst, new_leader);
                // Drop hub routes that now collide with the leader.
                spec.via_hub
                    .retain(|r, hub| *r != new_leader && *hub != new_leader);
                Some(Mutated::Spec(m))
            }
            2 => {
                // Toggle a hub route for a random member.
                let inst = insts[rng.gen_range(0..insts.len())];
                let members = &by_inst[&inst];
                let hub_list = match hubs.get(&inst) {
                    Some(h) if !h.is_empty() => h,
                    _ => return None,
                };
                let r = members[rng.gen_range(0..members.len())];
                if r == spec.leader[&inst] {
                    return None;
                }
                if spec.via_hub.remove(&r).is_none() {
                    spec.via_hub
                        .insert(r, hub_list[rng.gen_range(0..hub_list.len())]);
                }
                Some(Mutated::Spec(m))
            }
            3 => {
                // Chunk step.
                let grid = &self.config.chunk_grid;
                let pos = grid.iter().position(|c| *c == spec.chunk).unwrap_or(2);
                let next = if rng.gen_bool(0.5) {
                    pos.saturating_sub(1)
                } else {
                    (pos + 1).min(grid.len() - 1)
                };
                spec.chunk = grid[next];
                Some(Mutated::Spec(m))
            }
            _ => unreachable!("op 4 is handled before the spec borrow"),
        }
    }

    // ---- AlltoAll ----

    fn synthesize_alltoall(&self, req: &SynthRequest) -> Strategy {
        let model = self.cost_model();
        let g = LogicalNode::Gpu;
        let nic = LogicalNode::Nic;
        let mut flows = Vec::new();
        for &a in &req.participants {
            for &b in &req.participants {
                if a == b {
                    continue;
                }
                let ia = instance_of(self.topo, a);
                let ib = instance_of(self.topo, b);
                let route = if ia == ib {
                    vec![self.topo.edge_between(g(a), g(b)).expect("intra edge")]
                } else {
                    vec![
                        self.topo.edge_between(g(a), nic(ia)).expect("host link"),
                        self.topo.edge_between(nic(ia), nic(ib)).expect("network"),
                        self.topo.edge_between(nic(ib), g(b)).expect("host link"),
                    ]
                };
                flows.push(Flow {
                    src: g(a),
                    dst: g(b),
                    route,
                });
            }
        }
        let make = |chunk: ByteSize, m: usize| Strategy {
            primitive: Primitive::AllToAll,
            subs: (0..m)
                .map(|_| SubCollective {
                    fraction: 1.0 / m as f64,
                    chunk,
                    root: None,
                    flows: flows.clone(),
                    aggregate: BTreeMap::new(),
                })
                .collect(),
        };
        // Chunk sweep; parallelism fixed by the request.
        let mut best = make(ByteSize::from_mib(1), req.parallelism);
        let mut best_cost = model.evaluate(&best, req.tensor).completion;
        for &chunk in &self.config.chunk_grid {
            let s = make(chunk, req.parallelism);
            let cost = model.evaluate(&s, req.tensor).completion;
            if cost < best_cost {
                best_cost = cost;
                best = s;
            }
        }
        self.telemetry.add_counter(
            "synth.full_evals",
            (1 + self.config.chunk_grid.len()) as f64,
        );
        best
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreeShape {
    Star,
    Binary,
    Chain,
}

/// Groups ranks by their instance (instance order, rank order within).
pub fn group_by_instance(
    topo: &LogicalTopology,
    ranks: &[Rank],
) -> BTreeMap<InstanceId, Vec<Rank>> {
    let mut map: BTreeMap<InstanceId, Vec<Rank>> = BTreeMap::new();
    for &r in ranks {
        map.entry(instance_of(topo, r)).or_default().push(r);
    }
    for v in map.values_mut() {
        v.sort();
    }
    map
}

/// Reweights fractions inversely to predicted per-sub completion.
fn rebalance_fractions(plan: &mut Plan, per_sub: &[adapcc_simnet::time::SimDuration]) {
    let rates: Vec<f64> = plan
        .specs
        .iter()
        .zip(per_sub)
        .map(|(s, t)| {
            if t.as_secs() > 0.0 {
                s.fraction / t.as_secs()
            } else {
                s.fraction
            }
        })
        .collect();
    let total: f64 = rates.iter().sum();
    if total <= 0.0 {
        return;
    }
    for (s, r) in plan.specs.iter_mut().zip(&rates) {
        s.fraction = (r / total).clamp(0.02, 0.9);
    }
    // Renormalize after clamping.
    let sum: f64 = plan.specs.iter().map(|s| s.fraction).sum();
    for s in &mut plan.specs {
        s.fraction /= sum;
    }
}

/// Convenience map from participants to instances used by callers that
/// need per-instance views of a strategy. Keyed by `BTreeMap` so
/// iteration is instance-ordered — never hash-ordered — like every
/// other instance map in the solver.
pub fn participants_by_instance(
    topo: &LogicalTopology,
    strategy: &Strategy,
) -> BTreeMap<InstanceId, Vec<Rank>> {
    let mut map: BTreeMap<InstanceId, Vec<Rank>> = BTreeMap::new();
    for r in strategy.participants() {
        map.entry(instance_of(topo, r)).or_default().push(r);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    fn setup(cluster: &Cluster) -> (LogicalTopology, LinkProfile) {
        let topo = Detector::new(cluster, 1).run().logical_topology(cluster);
        let profile = Profiler::new(cluster, &topo, 1).without_noise().run().links;
        (topo, profile)
    }

    fn all_ranks(c: &Cluster) -> Vec<Rank> {
        (0..c.gpu_count()).map(Rank).collect()
    }

    #[test]
    fn reduce_strategy_validates_on_testbed() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(256), 4, all_ranks(&c));
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.validate(&topo), Ok(()));
        assert_eq!(s.parallelism(), 4);
        // Every participant except the root has a flow in every sub.
        for sub in &s.subs {
            assert_eq!(sub.flows.len(), c.gpu_count() - 1);
        }
    }

    #[test]
    fn root_lands_on_fat_nic_instance() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(256), 4, all_ranks(&c));
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        let root = s.subs[0].root.expect("rooted");
        // A100 instances are 0..=3 (ranks 0..16); V100 NICs are slower.
        assert!(root.0 < 16, "root {root:?} should sit on an A100 server");
    }

    #[test]
    fn respects_requested_root() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let mut req =
            SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(64), 2, all_ranks(&c));
        req.root = Some(Rank(17));
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.subs[0].root, Some(Rank(17)));
    }

    #[test]
    fn broadcast_is_reverse_of_reduce() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(
            Primitive::Broadcast,
            ByteSize::from_mib(64),
            2,
            all_ranks(&c),
        );
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.validate(&topo), Ok(()));
        // Flows originate at the root.
        for sub in &s.subs {
            let root = sub.root.expect("rooted");
            for f in &sub.flows {
                assert_eq!(f.src, LogicalNode::Gpu(root));
            }
            assert!(sub.aggregate.is_empty());
        }
    }

    #[test]
    fn alltoall_has_all_pairs() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(
            Primitive::AllToAll,
            ByteSize::from_mib(64),
            4,
            all_ranks(&c),
        );
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.validate(&topo), Ok(()));
        assert_eq!(s.subs[0].flows.len(), 8 * 7);
    }

    #[test]
    fn relays_appear_as_forwarders_not_sources() {
        let c = Cluster::homogeneous_a100(2);
        let (topo, profile) = setup(&c);
        let participants: Vec<Rank> = (0..8).filter(|r| *r != 3).map(Rank).collect();
        let mut req = SynthRequest::new(
            Primitive::Reduce,
            ByteSize::from_mib(64),
            4,
            participants.clone(),
        );
        req.relays = vec![Rank(3)];
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.validate(&topo), Ok(()));
        for sub in &s.subs {
            for f in &sub.flows {
                assert_ne!(
                    f.src,
                    LogicalNode::Gpu(Rank(3)),
                    "relay must not contribute data"
                );
            }
        }
        // At least one sub routes through the relay hub.
        let uses_relay = s.subs.iter().any(|sub| {
            sub.flows
                .iter()
                .any(|f| f.nodes(&topo).contains(&LogicalNode::Gpu(Rank(3))))
        });
        assert!(uses_relay, "no sub-collective exploited the relay");
    }

    #[test]
    fn deterministic_by_seed() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(128), 4, all_ranks(&c));
        let a = Synthesizer::new(&topo, &profile).synthesize(&req);
        let b = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(a, b);
    }

    #[test]
    fn annealing_never_worsens_initial_candidates() {
        let c = Cluster::paper_testbed();
        let (topo, profile) = setup(&c);
        let model = CostModel::new(&topo, &profile);
        let tensor = ByteSize::from_mib(256);
        let req = SynthRequest::new(Primitive::Reduce, tensor, 4, all_ranks(&c));
        let quick = Synthesizer::new(&topo, &profile)
            .with_config(SynthConfig {
                anneal_iters: 0,
                ..Default::default()
            })
            .synthesize(&req);
        let full = Synthesizer::new(&topo, &profile).synthesize(&req);
        let cq = model.evaluate(&quick, tensor).completion;
        let cf = model.evaluate(&full, tensor).completion;
        assert!(cf <= cq, "annealed {cf} vs initial {cq}");
    }

    #[test]
    fn single_instance_collective() {
        let c = Cluster::homogeneous_a100(1);
        let (topo, profile) = setup(&c);
        let req = SynthRequest::new(Primitive::Reduce, ByteSize::from_mib(64), 2, all_ranks(&c));
        let s = Synthesizer::new(&topo, &profile).synthesize(&req);
        assert_eq!(s.validate(&topo), Ok(()));
        for sub in &s.subs {
            for f in &sub.flows {
                // Intra-instance routes never touch a NIC.
                for n in f.nodes(&topo) {
                    assert!(matches!(n, LogicalNode::Gpu(_)));
                }
            }
        }
    }

    #[test]
    fn instance_grouping() {
        let c = Cluster::paper_testbed();
        let (topo, _) = setup(&c);
        let groups = group_by_instance(&topo, &all_ranks(&c));
        assert_eq!(groups.len(), 6);
        assert_eq!(
            groups[&InstanceId(0)],
            vec![Rank(0), Rank(1), Rank(2), Rank(3)]
        );
        assert_eq!(groups[&InstanceId(5)].len(), 4);
    }

    /// Shared fixture for the proptests below, built once.
    fn cached_env() -> &'static (LogicalTopology, LinkProfile) {
        use std::sync::OnceLock;
        static ENV: OnceLock<(LogicalTopology, LinkProfile)> = OnceLock::new();
        ENV.get_or_init(|| {
            let c = Cluster::homogeneous_a100(2);
            setup(&c)
        })
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Delta-scored cost stays bitwise equal to a fresh full
        /// evaluation across random accept/reject mutation sequences —
        /// the incremental-evaluation contract, checked through the
        /// public scoring path so it holds in release builds where
        /// `assert_matches_full` is compiled out.
        #[test]
        fn delta_cost_matches_full_eval_over_mutation_sequences(
            seed in 0u64..1000,
            m in 1usize..4,
            steps in 10usize..40,
        ) {
            use proptest::prelude::prop_assert_eq;
            let (topo, profile) = cached_env();
            let ranks: Vec<Rank> = (0..8).map(Rank).collect();
            let mut req =
                SynthRequest::new(Primitive::AllReduce, ByteSize::from_mib(32), m, ranks);
            req.seed = seed;
            let synth = Synthesizer::new(topo, profile);
            let (strategy, mut plan) = synth.synthesize_reduce_plan(&req);
            let model = CostModel::new(topo, profile);
            let by_inst = group_by_instance(topo, &req.participants);
            let hubs = group_by_instance(topo, &req.relays);
            let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
            let mut state = model.state(&strategy, req.tensor);
            let mut rng = seeded_rng(seed ^ 0xD0_17A);
            for _ in 0..steps {
                let mut cand = plan.clone();
                let Some(mutated) =
                    synth.mutate(&mut cand, &req, &by_inst, &hubs, &insts, &mut rng)
                else {
                    continue;
                };
                let cost = match mutated {
                    Mutated::Spec(i) => {
                        let Some(sub) = synth.realize_sub(&cand.specs[i], &req, &by_inst)
                        else {
                            continue;
                        };
                        if validate_sub(&sub, topo, i).is_err() {
                            continue;
                        }
                        state.replace_sub(i, sub)
                    }
                    Mutated::Fractions => {
                        let fracs: Vec<f64> =
                            cand.specs.iter().map(|s| s.fraction).collect();
                        if !fractions_valid(&fracs) {
                            continue;
                        }
                        state.set_fractions(&fracs)
                    }
                };
                let keep = rng.gen::<bool>();
                if keep {
                    state.commit();
                    plan = cand;
                    prop_assert_eq!(cost.to_bits(), state.completion_secs().to_bits());
                } else {
                    state.rollback();
                }
                let full = model
                    .evaluate(&state.strategy(), req.tensor)
                    .completion
                    .as_secs();
                prop_assert_eq!(
                    state.completion_secs().to_bits(),
                    full.to_bits(),
                    "state diverged from full evaluation after a {} step",
                    if keep { "committed" } else { "rolled-back" }
                );
            }
        }
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::cost::CostModel;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::Cluster;
    use adapcc_topo::detect::Detector;

    #[test]
    #[ignore]
    fn candidate_costs() {
        let c = Cluster::heterogeneous_2a100_2v100();
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        let req = SynthRequest::new(
            Primitive::AllReduce,
            adapcc_simnet::units::ByteSize::from_mib(528),
            4,
            (0..16).map(Rank).collect(),
        );
        let synth = Synthesizer::new(&topo, &profile);
        let model = CostModel::new(&topo, &profile);
        let by_inst = group_by_instance(&topo, &req.participants);
        let hubs: BTreeMap<InstanceId, Vec<Rank>> = BTreeMap::new();
        let insts: Vec<InstanceId> = by_inst.keys().copied().collect();
        let root_inst = insts[0];
        let root = by_inst[&root_inst][0];
        for shape in [TreeShape::Star, TreeShape::Binary, TreeShape::Chain] {
            for multi in [false, true] {
                let plan = synth.initial_plan(&req, &by_inst, &hubs, root, root_inst, shape, multi);
                match synth.realize_plan(&plan, &req, &by_inst, &hubs) {
                    Some(s) => match s.validate(&topo) {
                        Ok(()) => {
                            let est = model.evaluate(&s, req.tensor);
                            let per: Vec<f64> = est.per_sub.iter().map(|d| d.as_millis()).collect();
                            println!(
                                "{shape:?} multi={multi}: {:.1}ms per_sub={per:?}",
                                est.completion.as_millis()
                            );
                        }
                        Err(e) => println!("{shape:?} multi={multi}: INVALID {e:?}"),
                    },
                    None => println!("{shape:?} multi={multi}: UNREALIZABLE"),
                }
            }
        }
    }
}
