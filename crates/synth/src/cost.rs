//! Analytic cost model — the objective the synthesizer optimizes
//! (paper eqs. (1)–(6)).
//!
//! Given a [`Strategy`], a profiled topology, and the tensor size, the
//! model predicts the collective's completion time:
//!
//! * **Bandwidth sharing (eq. 3)** — each link's profiled bandwidth is
//!   divided by the number of *streams* traversing it, summed over all
//!   sub-collectives. Flows merged by an upstream aggregation count as
//!   one stream (Reduce); broadcast replicas on a shared link group as
//!   one; AlltoAll flows count individually.
//! * **Chunk timing (eq. 2)** — a chunk leaves node `j` either when it
//!   arrives (forwarding) or when the same-offset chunk of *every* flow
//!   through `j` has arrived (aggregation).
//! * **Pipelining (eqs. 5–6)** — a flow of `⌈S_m/C_m⌉` chunks finishes
//!   at `h_dst + ⌈S_m/C_m⌉ · T_bottle`, with `T_bottle` the slowest
//!   hop-to-hop gap along its route.
//!
//! The model deliberately ignores kernel-launch and staging overheads,
//! as the paper's MIP does; the executor (crate `adapcc`) charges them.

use std::collections::HashMap;

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{EdgeId, LogicalNode, LogicalTopology};

use crate::primitive::Primitive;
use crate::strategy::{Strategy, SubCollective};

/// Predicted performance of a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Predicted completion time of the whole collective (eq. 4).
    pub completion: SimDuration,
    /// Predicted completion per sub-collective.
    pub per_sub: Vec<SimDuration>,
}

impl CostEstimate {
    /// Algorithm bandwidth implied by the estimate: tensor bytes per
    /// second of completion time (the paper's `Algo.bw` metric).
    ///
    /// # Panics
    ///
    /// Panics if the completion time is zero.
    pub fn algo_bandwidth(&self, tensor: ByteSize) -> f64 {
        let t = self.completion.as_secs();
        assert!(t > 0.0, "zero completion time");
        tensor.as_f64() / t
    }
}

/// The evaluator.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    topo: &'a LogicalTopology,
    profile: &'a LinkProfile,
}

impl<'a> CostModel<'a> {
    /// A model over a profiled topology.
    pub fn new(topo: &'a LogicalTopology, profile: &'a LinkProfile) -> Self {
        CostModel { topo, profile }
    }

    /// Predicts the completion time of `strategy` moving a tensor of
    /// `total` bytes per participant.
    ///
    /// # Panics
    ///
    /// Panics if a flow uses an edge with no profiled cost, or if the
    /// chunk-time recursion fails to converge (a cyclic graph — caught
    /// earlier by [`Strategy::validate`]).
    pub fn evaluate(&self, strategy: &Strategy, total: ByteSize) -> CostEstimate {
        // AllReduce executes the reduce graph and its reverse broadcast
        // *chunk-pipelined in parallel*: an interior node's NIC carries
        // both directions at once, so both stages must be priced under
        // one combined port load (a chain through a slow server looks
        // fine one-way and melts in duplex).
        let reversed;
        let mut groups: Vec<(&SubCollective, Primitive)> = strategy
            .subs
            .iter()
            .map(|s| (s, strategy.primitive))
            .collect();
        if strategy.primitive == Primitive::AllReduce {
            reversed = strategy.reversed(self.topo, Primitive::Broadcast);
            for s in &reversed.subs {
                groups.push((s, Primitive::Broadcast));
            }
        }
        // Eq. 3 denominator: streams per edge summed over sub-collectives.
        let mut shared_load: HashMap<EdgeId, f64> = HashMap::new();
        let per_sub_streams: Vec<HashMap<EdgeId, f64>> = groups
            .iter()
            .map(|(sub, prim)| {
                let streams = edge_streams(self.topo, sub, *prim);
                for (e, n) in &streams {
                    *shared_load.entry(*e).or_insert(0.0) += n;
                }
                streams
            })
            .collect();
        // Distinct logical NIC-pair edges share physical ports: all
        // streams leaving one NIC contend on its egress, all streams
        // arriving contend on its ingress. Without this term the model
        // prices a star over N children as N parallel full-rate links
        // and the search degenerates to root-ingress hot spots.
        let mut egress_load: HashMap<LogicalNode, f64> = HashMap::new();
        let mut ingress_load: HashMap<LogicalNode, f64> = HashMap::new();
        for (e, n) in &shared_load {
            let edge = self.topo.edge(*e);
            if edge.kind == adapcc_topo::logical::EdgeKind::Network {
                *egress_load.entry(edge.from).or_insert(0.0) += n;
                *ingress_load.entry(edge.to).or_insert(0.0) += n;
            }
        }
        // Per-NIC port bandwidth: the best profiled aggregate over its
        // adjacent network edges (an edge's own port term is the min of
        // its two ends, so the max over edges recovers each end's own
        // capacity).
        let mut egress_bw: HashMap<LogicalNode, f64> = HashMap::new();
        let mut ingress_bw: HashMap<LogicalNode, f64> = HashMap::new();
        for (i, edge) in self.topo.edges().iter().enumerate() {
            if edge.kind != adapcc_topo::logical::EdgeKind::Network {
                continue;
            }
            if let Some(ab) = self.profile.get(EdgeId(i)) {
                let bw = ab.port_bandwidth().as_bytes_per_sec();
                let e = egress_bw.entry(edge.from).or_insert(0.0);
                *e = e.max(bw);
                let g = ingress_bw.entry(edge.to).or_insert(0.0);
                *g = g.max(bw);
            }
        }
        let port_load = PortLoad {
            egress_load,
            ingress_load,
            egress_bw,
            ingress_bw,
        };

        let n_primary = strategy.subs.len();
        let mut per_sub = Vec::with_capacity(groups.len());
        for (m, (sub, _)) in groups.iter().enumerate() {
            let s_m = strategy.partition(total, m % n_primary);
            per_sub.push(self.sub_completion(
                sub,
                s_m,
                &shared_load,
                &port_load,
                &per_sub_streams[m],
            ));
        }
        let completion = per_sub
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        CostEstimate {
            completion,
            per_sub,
        }
    }

    /// Chunk transfer time on one edge (eq. 2's `t_{i,j}`), with the
    /// shared bandwidth of eq. 3 and physical-port contention.
    fn edge_time(
        &self,
        e: EdgeId,
        chunk: ByteSize,
        shared_load: &HashMap<EdgeId, f64>,
        ports: &PortLoad,
    ) -> f64 {
        let ab = self
            .profile
            .get(e)
            .unwrap_or_else(|| panic!("edge {e:?} used but not profiled"));
        let edge = self.topo.edge(e);
        let load = shared_load.get(&e).copied().unwrap_or(1.0).max(1.0);
        // A stream's rate: min of its single-stream ceiling and its fair
        // share of each physical port it crosses (tail egress, head
        // ingress) — per-byte time is the max of the inverses.
        let mut per_byte = ab.beta_secs_per_byte.max(ab.port_beta_secs_per_byte * load);
        if edge.kind == adapcc_topo::logical::EdgeKind::Network {
            let el = ports.egress_load.get(&edge.from).copied().unwrap_or(load);
            let il = ports.ingress_load.get(&edge.to).copied().unwrap_or(load);
            if let Some(bw) = ports.egress_bw.get(&edge.from) {
                per_byte = per_byte.max(el / bw);
            }
            if let Some(bw) = ports.ingress_bw.get(&edge.to) {
                per_byte = per_byte.max(il / bw);
            }
        }
        ab.alpha_secs + per_byte * chunk.as_f64()
    }

    fn sub_completion(
        &self,
        sub: &SubCollective,
        s_m: ByteSize,
        shared_load: &HashMap<EdgeId, f64>,
        ports: &PortLoad,
        _streams: &HashMap<EdgeId, f64>,
    ) -> SimDuration {
        if sub.flows.is_empty() || s_m.is_zero() {
            return SimDuration::ZERO;
        }
        let chunk = ByteSize::from_bytes(sub.chunk.as_u64().min(s_m.as_u64().max(1)));
        let chunks = s_m.chunks(chunk) as f64;

        // Fixpoint of eq. 2: per-flow arrival times, synchronized at
        // aggregating nodes. H grows monotonically; trees converge in
        // depth iterations.
        let mut sync: HashMap<LogicalNode, f64> = HashMap::new();
        let mut arrivals: Vec<Vec<f64>> = vec![Vec::new(); sub.flows.len()];
        let mut bottles: Vec<f64> = vec![0.0; sub.flows.len()];
        let max_iters = sub.nodes(self.topo).len() + 2;
        let mut converged = false;
        for _ in 0..max_iters {
            let mut changed = false;
            for (fi, flow) in sub.flows.iter().enumerate() {
                let mut t = 0.0_f64;
                let mut arr = Vec::with_capacity(flow.route.len() + 1);
                arr.push(0.0);
                let mut bottle = 0.0_f64;
                let mut here = flow.src;
                for e in &flow.route {
                    let edge = self.topo.edge(*e);
                    // Departure from `here`: synchronized if it aggregates —
                    // including an aggregating *source* (a leader waits for
                    // its members before its merged stream departs).
                    let dep = if sub.aggregates_at(here) {
                        sync.get(&here).copied().unwrap_or(t).max(t)
                    } else {
                        t
                    };
                    let hop = self.edge_time(*e, chunk, shared_load, ports);
                    bottle = bottle.max(hop);
                    let arr_t = dep + hop;
                    if sub.aggregates_at(edge.to) {
                        let s = sync.entry(edge.to).or_insert(0.0);
                        if arr_t > *s {
                            *s = arr_t;
                            changed = true;
                        }
                    }
                    t = arr_t;
                    arr.push(t);
                    here = edge.to;
                }
                arrivals[fi] = arr;
                bottles[fi] = bottle;
            }
            if !changed {
                converged = true;
                break;
            }
        }
        assert!(converged, "chunk-time recursion did not converge");

        // Eq. 5 per flow. We deviate from eq. 6's literal `h_j - h_i`
        // bottleneck (which charges first-chunk synchronization waits on
        // *every* chunk): in the warmed-up pipeline the executor
        // actually implements, only the slowest single-edge transfer
        // gates each additional chunk. The first chunk's full latency —
        // synchronization included — is still `h_dst`.
        let mut worst = 0.0_f64;
        for (fi, _flow) in sub.flows.iter().enumerate() {
            let h_dst = *arrivals[fi].last().expect("non-empty route arrivals");
            let t_f = h_dst + chunks * bottles[fi];
            worst = worst.max(t_f);
        }
        SimDuration::from_secs(worst)
    }
}

/// Streams per edge for one sub-collective (the `N^m_{i,j}` of eq. 3).
///
/// A *stream group* is a set of flows already merged by an upstream
/// aggregation: flows are grouped by the last aggregating node at or
/// before the edge's tail on their route (or by flow identity if none).
pub fn edge_streams(
    topo: &LogicalTopology,
    sub: &SubCollective,
    primitive: Primitive,
) -> HashMap<EdgeId, f64> {
    let mut out: HashMap<EdgeId, f64> = HashMap::new();
    match primitive {
        Primitive::Broadcast | Primitive::AllGather => {
            // Replicas on a shared link are grouped: one stream per edge.
            for f in &sub.flows {
                for e in &f.route {
                    out.insert(*e, 1.0);
                }
            }
        }
        Primitive::AllToAll => {
            // Personalized data: every flow loads the edge.
            for f in &sub.flows {
                for e in &f.route {
                    *out.entry(*e).or_insert(0.0) += 1.0;
                }
            }
        }
        Primitive::Reduce | Primitive::AllReduce | Primitive::ReduceScatter => {
            // Group flows by their most recent aggregation point. A flow
            // *originating* at an aggregating node (a leader's own data)
            // merges into that node's stream immediately: the kernel
            // combines local and received chunks into one output stream.
            let mut groups: HashMap<EdgeId, std::collections::HashSet<GroupKey>> = HashMap::new();
            for (fi, f) in sub.flows.iter().enumerate() {
                let mut here = f.src;
                let mut key = if sub.aggregates_at(f.src) {
                    GroupKey::Merged(f.src)
                } else {
                    GroupKey::Flow(fi)
                };
                for e in &f.route {
                    if sub.aggregates_at(here) {
                        key = GroupKey::Merged(here);
                    }
                    groups.entry(*e).or_default().insert(key);
                    here = topo.edge(*e).to;
                }
            }
            for (e, g) in groups {
                out.insert(e, g.len() as f64);
            }
        }
    }
    out
}

/// Per-NIC stream totals and port capacities for physical-port
/// contention.
#[derive(Debug, Default)]
struct PortLoad {
    egress_load: HashMap<LogicalNode, f64>,
    ingress_load: HashMap<LogicalNode, f64>,
    egress_bw: HashMap<LogicalNode, f64>,
    ingress_bw: HashMap<LogicalNode, f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GroupKey {
    Flow(usize),
    Merged(LogicalNode),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Flow;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
    use adapcc_topo::detect::Detector;
    use std::collections::BTreeMap;

    fn setup(n: usize) -> (Cluster, LogicalTopology, LinkProfile) {
        let c = Cluster::homogeneous_a100(n);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        (c, topo, profile)
    }

    fn g(r: usize) -> LogicalNode {
        LogicalNode::Gpu(Rank(r))
    }

    fn star_reduce(topo: &LogicalTopology, sources: &[usize], root: usize) -> Strategy {
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let flows = sources
            .iter()
            .map(|&s| Flow {
                src: g(s),
                dst: g(root),
                route: vec![e(g(s), g(root))],
            })
            .collect();
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(root), true);
        Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(root)),
                flows,
                aggregate,
            }],
        }
    }

    #[test]
    fn intra_star_cost_close_to_nvlink_time() {
        let (_c, topo, profile) = setup(1);
        let s = star_reduce(&topo, &[1, 2, 3], 0);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let est = model.evaluate(&s, total);
        // Three parallel NVLink flows into gpu0, each on its own link:
        // ~256 MiB / 100 GB/s ≈ 2.7 ms; pipelining roughly doubles the
        // paper-formula estimate (h_dst + all chunks).
        let secs = est.completion.as_secs();
        assert!(secs > 0.002 && secs < 0.008, "estimate {secs}");
    }

    #[test]
    fn aggregation_reduces_downstream_load() {
        let (_c, topo, profile) = setup(2);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let nic = |i: usize| LogicalNode::Nic(InstanceId(i));
        // Three flows hop gpu->leader(gpu0)->nic0->nic1->gpu4.
        let mk = |aggregate_at_leader: bool| {
            let mut flows = Vec::new();
            for s in [1usize, 2, 3] {
                flows.push(Flow {
                    src: g(s),
                    dst: g(4),
                    route: vec![
                        e(g(s), g(0)),
                        e(g(0), nic(0)),
                        e(nic(0), nic(1)),
                        e(nic(1), g(4)),
                    ],
                });
            }
            let mut aggregate = BTreeMap::new();
            aggregate.insert(g(4), true);
            if aggregate_at_leader {
                aggregate.insert(g(0), true);
            }
            Strategy {
                primitive: Primitive::Reduce,
                subs: vec![SubCollective {
                    fraction: 1.0,
                    chunk: ByteSize::from_mib(1),
                    root: Some(Rank(4)),
                    flows,
                    aggregate,
                }],
            }
        };
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(128);
        let merged = model.evaluate(&mk(true), total).completion;
        let forwarded = model.evaluate(&mk(false), total).completion;
        // Aggregating at the leader sends 1 stream over the NIC instead
        // of 3: ~3x less network volume.
        assert!(
            forwarded.as_secs() / merged.as_secs() > 2.0,
            "merged {merged} forwarded {forwarded}"
        );
    }

    #[test]
    fn stream_counting_matches_rules() {
        let (_c, topo, _p) = setup(1);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        // Two flows share edge g2->g0; one aggregates at g2 first.
        let flows = vec![
            Flow {
                src: g(1),
                dst: g(0),
                route: vec![e(g(1), g(2)), e(g(2), g(0))],
            },
            Flow {
                src: g(3),
                dst: g(0),
                route: vec![e(g(3), g(2)), e(g(2), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(2), true);
        aggregate.insert(g(0), true);
        let sub = SubCollective {
            fraction: 1.0,
            chunk: ByteSize::from_mib(1),
            root: Some(Rank(0)),
            flows,
            aggregate,
        };
        let streams = edge_streams(&topo, &sub, Primitive::Reduce);
        assert_eq!(streams[&e(g(2), g(0))], 1.0, "merged at g2");
        assert_eq!(streams[&e(g(1), g(2))], 1.0);
        // Without aggregation at g2, the shared edge carries 2 streams.
        let mut sub2 = sub.clone();
        sub2.aggregate.remove(&g(2));
        let streams2 = edge_streams(&topo, &sub2, Primitive::Reduce);
        assert_eq!(streams2[&e(g(2), g(0))], 2.0);
        // Broadcast always groups.
        let streams3 = edge_streams(&topo, &sub2, Primitive::Broadcast);
        assert_eq!(streams3[&e(g(2), g(0))], 1.0);
        // AlltoAll counts each flow.
        let streams4 = edge_streams(&topo, &sub2, Primitive::AllToAll);
        assert_eq!(streams4[&e(g(2), g(0))], 2.0);
    }

    #[test]
    fn smaller_chunks_pipeline_better_until_latency_binds() {
        let (_c, topo, profile) = setup(2);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let nic = |i: usize| LogicalNode::Nic(InstanceId(i));
        let mk = |chunk: ByteSize| {
            let flows = vec![Flow {
                src: g(0),
                dst: g(4),
                route: vec![e(g(0), nic(0)), e(nic(0), nic(1)), e(nic(1), g(4))],
            }];
            Strategy {
                primitive: Primitive::Reduce,
                subs: vec![SubCollective {
                    fraction: 1.0,
                    chunk,
                    root: Some(Rank(4)),
                    flows,
                    aggregate: BTreeMap::new(),
                }],
            }
        };
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let huge = model
            .evaluate(&mk(ByteSize::from_mib(256)), total)
            .completion;
        let mid = model.evaluate(&mk(ByteSize::from_mib(4)), total).completion;
        let tiny = model.evaluate(&mk(ByteSize::from_kib(1)), total).completion;
        // One giant chunk forfeits pipelining across the 3-hop path.
        assert!(mid < huge, "mid {mid} huge {huge}");
        // Chunks so small that per-chunk latency dominates lose again.
        assert!(mid < tiny, "mid {mid} tiny {tiny}");
    }

    #[test]
    fn parallel_subs_share_link_bandwidth() {
        let (_c, topo, profile) = setup(1);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let one = star_reduce(&topo, &[1], 0);
        let mut two = one.clone();
        two.subs = vec![
            SubCollective {
                fraction: 0.5,
                ..one.subs[0].clone()
            },
            SubCollective {
                fraction: 0.5,
                ..one.subs[0].clone()
            },
        ];
        let t1 = model.evaluate(&one, total).completion;
        let t2 = model.evaluate(&two, total).completion;
        // Same edge, two streams at half size each: roughly the same
        // time (no free lunch on a single link).
        let ratio = t2.as_secs() / t1.as_secs();
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "not profiled")]
    fn unprofiled_edge_panics() {
        let (_c, topo, _) = setup(1);
        let empty = LinkProfile::new();
        let s = star_reduce(&topo, &[1], 0);
        let model = CostModel::new(&topo, &empty);
        let _ = model.evaluate(&s, ByteSize::from_mib(1));
    }
}
