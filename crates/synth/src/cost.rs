//! Analytic cost model — the objective the synthesizer optimizes
//! (paper eqs. (1)–(6)).
//!
//! Given a [`Strategy`], a profiled topology, and the tensor size, the
//! model predicts the collective's completion time:
//!
//! * **Bandwidth sharing (eq. 3)** — each link's profiled bandwidth is
//!   divided by the number of *streams* traversing it, summed over all
//!   sub-collectives. Flows merged by an upstream aggregation count as
//!   one stream (Reduce); broadcast replicas on a shared link group as
//!   one; AlltoAll flows count individually.
//! * **Chunk timing (eq. 2)** — a chunk leaves node `j` either when it
//!   arrives (forwarding) or when the same-offset chunk of *every* flow
//!   through `j` has arrived (aggregation).
//! * **Pipelining (eqs. 5–6)** — a flow of `⌈S_m/C_m⌉` chunks finishes
//!   at `h_dst + ⌈S_m/C_m⌉ · T_bottle`, with `T_bottle` the slowest
//!   hop-to-hop gap along its route.
//!
//! The model deliberately ignores kernel-launch and staging overheads,
//! as the paper's MIP does; the executor (crate `adapcc`) charges them.
//!
//! # Incremental evaluation
//!
//! [`CostModel::evaluate`] performs a full evaluation; the annealer
//! instead keeps a persistent [`CostState`] — per-link stream loads,
//! per-NIC port loads and per-sub-collective completion times in dense
//! index-keyed `Vec`s — and applies each mutation as a *delta*
//! ([`CostState::replace_sub`], [`CostState::set_fractions`]),
//! re-scoring only the sub-collectives whose inputs changed and undoing
//! rejected mutations exactly ([`CostState::rollback`]). Stream counts
//! are small integers, so load updates are exact in `f64` and the delta
//! path is **bit-identical** to a fresh full evaluation — asserted after
//! every delta under `debug_assertions`.

use std::collections::HashMap;

use adapcc_profile::profiler::LinkProfile;
use adapcc_simnet::cluster::{InstanceId, Rank};
use adapcc_simnet::time::SimDuration;
use adapcc_simnet::units::ByteSize;
use adapcc_topo::logical::{EdgeId, EdgeKind, LogicalNode, LogicalTopology};

use crate::primitive::Primitive;
use crate::strategy::{reversed_sub, split_sizes, Strategy, SubCollective};

/// Predicted performance of a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Predicted completion time of the whole collective (eq. 4).
    pub completion: SimDuration,
    /// Predicted completion per sub-collective.
    pub per_sub: Vec<SimDuration>,
}

impl CostEstimate {
    /// Algorithm bandwidth implied by the estimate: tensor bytes per
    /// second of completion time (the paper's `Algo.bw` metric).
    ///
    /// # Panics
    ///
    /// Panics if the completion time is zero.
    pub fn algo_bandwidth(&self, tensor: ByteSize) -> f64 {
        let t = self.completion.as_secs();
        assert!(t > 0.0, "zero completion time");
        tensor.as_f64() / t
    }
}

/// Pinned stream loads contributed by *co-scheduled* collectives: the
/// eq. 3 equal-share bandwidth model lifted across process groups.
///
/// A solve for one group normally scores against an empty fabric; when
/// several groups (DP rings, TP slices, MoE all-to-alls) run
/// concurrently they share links and NIC ports, and a strategy that
/// looks optimal alone can melt under its peers' traffic. A
/// `BackgroundLoad` accumulates the per-edge and per-port stream counts
/// of the peer strategies ([`add_strategy`](Self::add_strategy), using
/// the exact same stream-counting rules as the foreground evaluation,
/// reverse-broadcast AllReduce twins included) and is pinned under a
/// [`CostModel`] via [`CostModel::with_background`]: every foreground
/// score then adds these counts to the eq. 3 denominators.
///
/// Loads are stream *counts* (small integers in `f64`), so seeding them
/// before the foreground accumulation keeps the delta path bit-exact —
/// deltas add and remove only foreground streams, and the debug
/// [`CostState`] oracle rebuilds with the same background.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundLoad {
    /// Streams per edge (indexed by `EdgeId`).
    shared: Vec<f64>,
    /// Streams leaving each node over network edges (node index order
    /// of `topo.nodes()`).
    egress: Vec<f64>,
    /// Streams entering each node over network edges.
    ingress: Vec<f64>,
    /// Total streams accumulated (0 ⇒ empty fabric).
    streams: f64,
}

impl BackgroundLoad {
    /// An empty background sized for `topo` (an empty fabric).
    pub fn new(topo: &LogicalTopology) -> Self {
        BackgroundLoad {
            shared: vec![0.0; topo.edges().len()],
            egress: vec![0.0; topo.nodes().len()],
            ingress: vec![0.0; topo.nodes().len()],
            streams: 0.0,
        }
    }

    /// Accumulates the stream loads of one co-scheduled strategy, by
    /// the same counting rules the foreground evaluation uses
    /// (AllReduce adds its reverse-broadcast twins).
    pub fn add_strategy(&mut self, topo: &LogicalTopology, profile: &LinkProfile, s: &Strategy) {
        let dense = DenseTopo::new(topo, profile);
        let mut pairs = Vec::new();
        let mut add_sub = |sub: &SubCollective, prim: Primitive, pairs: &mut Vec<(EdgeId, f64)>| {
            compute_streams(topo, sub, prim, pairs);
            for &(e, n) in pairs.iter() {
                self.shared[e.0] += n;
                self.streams += n;
                let ec = &dense.edges[e.0];
                if ec.network {
                    self.egress[ec.from as usize] += n;
                    self.ingress[ec.to as usize] += n;
                }
            }
        };
        for sub in &s.subs {
            add_sub(sub, s.primitive, &mut pairs);
            if s.primitive == Primitive::AllReduce {
                add_sub(&reversed_sub(sub, topo), Primitive::Broadcast, &mut pairs);
            }
        }
    }

    /// Whether any stream has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.streams == 0.0
    }

    /// Total accumulated stream count across all edges.
    pub fn total_streams(&self) -> f64 {
        self.streams
    }
}

/// The evaluator.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    topo: &'a LogicalTopology,
    profile: &'a LinkProfile,
    background: Option<&'a BackgroundLoad>,
}

impl<'a> CostModel<'a> {
    /// A model over a profiled topology (empty fabric: no co-scheduled
    /// background traffic).
    pub fn new(topo: &'a LogicalTopology, profile: &'a LinkProfile) -> Self {
        CostModel {
            topo,
            profile,
            background: None,
        }
    }

    /// Pins the stream loads of co-scheduled peer groups under every
    /// evaluation of this model (see [`BackgroundLoad`]).
    ///
    /// # Panics
    ///
    /// Panics if `background` was sized for a different topology.
    pub fn with_background(mut self, background: &'a BackgroundLoad) -> Self {
        assert_eq!(
            background.shared.len(),
            self.topo.edges().len(),
            "background sized for a different topology"
        );
        self.background = Some(background);
        self
    }

    /// The optionally pinned background, for callers re-scoping models.
    pub fn background(&self) -> Option<&'a BackgroundLoad> {
        self.background
    }

    /// Predicts the completion time of `strategy` moving a tensor of
    /// `total` bytes per participant.
    ///
    /// # Panics
    ///
    /// Panics if a flow uses an edge with no profiled cost, or if the
    /// chunk-time recursion fails to converge (a cyclic graph — caught
    /// earlier by [`Strategy::validate`]).
    pub fn evaluate(&self, strategy: &Strategy, total: ByteSize) -> CostEstimate {
        CostState::new(*self, strategy, total).estimate()
    }

    /// Opens a persistent evaluation state over `strategy` for
    /// incremental (delta) re-scoring.
    pub fn state(&self, strategy: &Strategy, total: ByteSize) -> CostState<'a> {
        CostState::new(*self, strategy, total)
    }
}

/// Streams per edge for one sub-collective (the `N^m_{i,j}` of eq. 3).
///
/// A *stream group* is a set of flows already merged by an upstream
/// aggregation: flows are grouped by the last aggregating node at or
/// before the edge's tail on their route (or by flow identity if none).
pub fn edge_streams(
    topo: &LogicalTopology,
    sub: &SubCollective,
    primitive: Primitive,
) -> HashMap<EdgeId, f64> {
    let mut pairs = Vec::new();
    compute_streams(topo, sub, primitive, &mut pairs);
    let mut out = HashMap::with_capacity(pairs.len());
    for (e, n) in pairs {
        out.insert(e, n);
    }
    out
}

/// Sorted `(edge, stream count)` pairs for one sub-collective — the
/// dense-friendly twin of [`edge_streams`], writing into a reusable
/// buffer. Counts are identical; only the container differs.
fn compute_streams(
    topo: &LogicalTopology,
    sub: &SubCollective,
    primitive: Primitive,
    out: &mut Vec<(EdgeId, f64)>,
) {
    out.clear();
    match primitive {
        Primitive::Broadcast | Primitive::AllGather => {
            // Replicas on a shared link are grouped: one stream per edge.
            let mut edges: Vec<u32> = Vec::new();
            for f in &sub.flows {
                for e in &f.route {
                    edges.push(e.0 as u32);
                }
            }
            edges.sort_unstable();
            edges.dedup();
            out.extend(edges.into_iter().map(|e| (EdgeId(e as usize), 1.0)));
        }
        Primitive::AllToAll => {
            // Personalized data: every flow loads the edge.
            let mut edges: Vec<u32> = Vec::new();
            for f in &sub.flows {
                for e in &f.route {
                    edges.push(e.0 as u32);
                }
            }
            edges.sort_unstable();
            let mut i = 0;
            while i < edges.len() {
                let e = edges[i];
                let mut n = 0usize;
                while i < edges.len() && edges[i] == e {
                    n += 1;
                    i += 1;
                }
                out.push((EdgeId(e as usize), n as f64));
            }
        }
        Primitive::Reduce | Primitive::AllReduce | Primitive::ReduceScatter => {
            // Group flows by their most recent aggregation point. A flow
            // *originating* at an aggregating node (a leader's own data)
            // merges into that node's stream immediately: the kernel
            // combines local and received chunks into one output stream.
            let mut pairs: Vec<(u32, GroupKey)> = Vec::new();
            for (fi, f) in sub.flows.iter().enumerate() {
                let mut here = f.src;
                let mut key = if sub.aggregates_at(f.src) {
                    GroupKey::Merged(f.src)
                } else {
                    GroupKey::Flow(fi)
                };
                for e in &f.route {
                    if sub.aggregates_at(here) {
                        key = GroupKey::Merged(here);
                    }
                    pairs.push((e.0 as u32, key));
                    here = topo.edge(*e).to;
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let mut i = 0;
            while i < pairs.len() {
                let e = pairs[i].0;
                let mut n = 0usize;
                while i < pairs.len() && pairs[i].0 == e {
                    n += 1;
                    i += 1;
                }
                out.push((EdgeId(e as usize), n as f64));
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GroupKey {
    Flow(usize),
    Merged(LogicalNode),
}

/// Static per-edge pricing inputs, resolved once per [`CostState`]:
/// profiled α/β terms, endpoint indices, and the port bandwidths of the
/// edge's own ends (`0.0` = no profiled adjacent network edge, i.e. the
/// port term does not apply — matching the absent-key semantics of the
/// former `HashMap` representation).
#[derive(Debug, Clone, Copy)]
struct EdgeCost {
    alpha: f64,
    beta: f64,
    port_beta: f64,
    profiled: bool,
    network: bool,
    from: u32,
    to: u32,
    egress_bw: f64,
    ingress_bw: f64,
}

/// Dense node/edge index over a logical topology plus the static
/// pricing table. Node indices are positions in `topo.nodes()`.
#[derive(Debug)]
struct DenseTopo {
    node_count: usize,
    /// Rank -> node index (`u32::MAX` = not a node).
    gpu_idx: Vec<u32>,
    /// Instance -> NIC node index (`u32::MAX` = not a node).
    nic_idx: Vec<u32>,
    edges: Vec<EdgeCost>,
}

impl DenseTopo {
    fn new(topo: &LogicalTopology, profile: &LinkProfile) -> Self {
        let nodes = topo.nodes();
        let mut max_rank = 0usize;
        let mut max_inst = 0usize;
        for n in nodes {
            match n {
                LogicalNode::Gpu(Rank(r)) => max_rank = max_rank.max(*r),
                LogicalNode::Nic(InstanceId(i)) => max_inst = max_inst.max(*i),
            }
        }
        let mut gpu_idx = vec![u32::MAX; max_rank + 1];
        let mut nic_idx = vec![u32::MAX; max_inst + 1];
        for (i, n) in nodes.iter().enumerate() {
            match n {
                LogicalNode::Gpu(Rank(r)) => gpu_idx[*r] = i as u32,
                LogicalNode::Nic(InstanceId(inst)) => nic_idx[*inst] = i as u32,
            }
        }
        let mut dense = DenseTopo {
            node_count: nodes.len(),
            gpu_idx,
            nic_idx,
            edges: Vec::with_capacity(topo.edges().len()),
        };
        // Per-NIC port bandwidth: the best profiled aggregate over its
        // adjacent network edges (an edge's own port term is the min of
        // its two ends, so the max over edges recovers each end's own
        // capacity).
        let mut egress_bw = vec![0.0_f64; nodes.len()];
        let mut ingress_bw = vec![0.0_f64; nodes.len()];
        for (i, edge) in topo.edges().iter().enumerate() {
            if edge.kind != EdgeKind::Network {
                continue;
            }
            if let Some(ab) = profile.get(EdgeId(i)) {
                let bw = ab.port_bandwidth().as_bytes_per_sec();
                let from = dense.node(edge.from);
                let to = dense.node(edge.to);
                egress_bw[from] = egress_bw[from].max(bw);
                ingress_bw[to] = ingress_bw[to].max(bw);
            }
        }
        for (i, edge) in topo.edges().iter().enumerate() {
            let from = dense.node(edge.from);
            let to = dense.node(edge.to);
            let ab = profile.get(EdgeId(i));
            dense.edges.push(EdgeCost {
                alpha: ab.map_or(0.0, |ab| ab.alpha_secs),
                beta: ab.map_or(0.0, |ab| ab.beta_secs_per_byte),
                port_beta: ab.map_or(0.0, |ab| ab.port_beta_secs_per_byte),
                profiled: ab.is_some(),
                network: edge.kind == EdgeKind::Network,
                from: from as u32,
                to: to as u32,
                egress_bw: egress_bw[from],
                ingress_bw: ingress_bw[to],
            });
        }
        dense
    }

    fn node(&self, n: LogicalNode) -> usize {
        let i = match n {
            LogicalNode::Gpu(Rank(r)) => self.gpu_idx[r],
            LogicalNode::Nic(InstanceId(i)) => self.nic_idx[i],
        };
        debug_assert_ne!(i, u32::MAX, "node {n} not in topology");
        i as usize
    }
}

/// One priced stream group: a sub-collective (or the reverse-broadcast
/// twin AllReduce pipelines against it) with its per-edge stream counts
/// and current predicted completion.
#[derive(Debug, Clone)]
struct Group {
    sub: SubCollective,
    prim: Primitive,
    /// Sorted distinct `(edge, stream count)` pairs.
    streams: Vec<(EdgeId, f64)>,
    /// Predicted completion in seconds.
    completion: f64,
}

/// Generation-stamped scratch buffers reused across evaluations: dense
/// arrays never cleared, only re-stamped, so each re-score is
/// allocation-free.
#[derive(Debug, Default)]
struct Scratch {
    gen: u64,
    /// Per-node chunk synchronization front (eq. 2 fixpoint).
    sync_gen: Vec<u64>,
    sync_val: Vec<f64>,
    /// Per-node aggregation membership of the group being scored.
    agg_gen: Vec<u64>,
    /// Per-node visit marks (distinct-node count for the fixpoint bound).
    visit_gen: Vec<u64>,
    /// Per-flow arrival instants along the route.
    arrivals: Vec<Vec<f64>>,
    /// Per-flow slowest hop.
    bottles: Vec<f64>,
    /// Per-edge load-delta accumulator for one mutation.
    edge_acc_gen: Vec<u64>,
    edge_acc: Vec<f64>,
    touched_edges: Vec<u32>,
    /// Per-edge "load changed" marks.
    edge_hot_gen: Vec<u64>,
    /// Per-node port-load delta accumulators and "changed" marks.
    eg_acc_gen: Vec<u64>,
    eg_acc: Vec<f64>,
    eg_hot_gen: Vec<u64>,
    in_acc_gen: Vec<u64>,
    in_acc: Vec<f64>,
    in_hot_gen: Vec<u64>,
    touched_eg: Vec<u32>,
    touched_in: Vec<u32>,
    /// Stream-pair buffer reused by group re-scoring.
    streams_buf: Vec<(EdgeId, f64)>,
}

impl Scratch {
    fn new(node_count: usize, edge_count: usize) -> Self {
        Scratch {
            sync_gen: vec![0; node_count],
            sync_val: vec![0.0; node_count],
            agg_gen: vec![0; node_count],
            visit_gen: vec![0; node_count],
            edge_acc_gen: vec![0; edge_count],
            edge_acc: vec![0.0; edge_count],
            edge_hot_gen: vec![0; edge_count],
            eg_acc_gen: vec![0; node_count],
            eg_acc: vec![0.0; node_count],
            eg_hot_gen: vec![0; node_count],
            in_acc_gen: vec![0; node_count],
            in_acc: vec![0.0; node_count],
            in_hot_gen: vec![0; node_count],
            ..Scratch::default()
        }
    }

    fn next_gen(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }

    fn ensure_flows(&mut self, n: usize) {
        if self.arrivals.len() < n {
            self.arrivals.resize_with(n, Vec::new);
        }
        if self.bottles.len() < n {
            self.bottles.resize(n, 0.0);
        }
    }
}

/// One undoable delta applied to a [`CostState`].
#[derive(Debug)]
enum UndoOp {
    /// [`CostState::replace_sub`]: the displaced groups, the exact load
    /// deltas that were applied, and every re-scored completion.
    ReplaceSub {
        m: usize,
        old_primary: Box<Group>,
        old_twin: Option<Box<Group>>,
        edge_deltas: Vec<(u32, f64)>,
        rescored: Vec<(usize, f64)>,
    },
    /// [`CostState::set_fractions`]: the previous fractions, partition
    /// sizes and re-scored completions.
    SetFractions {
        old_fracs: Vec<f64>,
        old_sizes: Vec<u64>,
        rescored: Vec<(usize, f64)>,
    },
}

/// Persistent incremental evaluation state over one strategy.
///
/// Holds the strategy's sub-collectives (plus, for AllReduce, the
/// reverse-broadcast twins priced in duplex with them), every per-link
/// and per-port stream load, and each group's predicted completion —
/// all in dense index-keyed `Vec`s. Mutations apply as deltas
/// ([`replace_sub`](Self::replace_sub),
/// [`set_fractions`](Self::set_fractions)) that re-score only affected
/// groups; rejected mutations roll back exactly
/// ([`rollback`](Self::rollback)). All produced costs are bit-identical
/// to a fresh [`CostModel::evaluate`] of [`strategy`](Self::strategy) —
/// enforced by a debug assertion after every delta.
#[derive(Debug)]
pub struct CostState<'a> {
    model: CostModel<'a>,
    dense: DenseTopo,
    primitive: Primitive,
    total: ByteSize,
    n_primary: usize,
    groups: Vec<Group>,
    /// Streams per edge summed over all groups (eq. 3 denominator).
    shared_load: Vec<f64>,
    /// Streams leaving / entering each NIC over network edges.
    egress_load: Vec<f64>,
    ingress_load: Vec<f64>,
    /// Partition sizes per primary sub (bytes).
    sizes: Vec<u64>,
    scratch: Scratch,
    undo: Vec<UndoOp>,
    full_evals: u64,
    delta_evals: u64,
}

impl<'a> CostState<'a> {
    /// Builds the state with one full evaluation of `strategy`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CostModel::evaluate`].
    pub fn new(model: CostModel<'a>, strategy: &Strategy, total: ByteSize) -> Self {
        let dense = DenseTopo::new(model.topo, model.profile);
        let edge_count = model.topo.edges().len();
        let node_count = dense.node_count;
        let mut state = CostState {
            model,
            dense,
            primitive: strategy.primitive,
            total,
            n_primary: strategy.subs.len(),
            groups: Vec::new(),
            shared_load: vec![0.0; edge_count],
            egress_load: vec![0.0; node_count],
            ingress_load: vec![0.0; node_count],
            sizes: Vec::new(),
            scratch: Scratch::new(node_count, edge_count),
            undo: Vec::new(),
            full_evals: 0,
            delta_evals: 0,
        };
        state.rebuild(strategy);
        state
    }

    /// Full (non-incremental) rebuild from `strategy`.
    fn rebuild(&mut self, strategy: &Strategy) {
        self.full_evals += 1;
        self.groups.clear();
        // Co-scheduled peers' streams seed the eq. 3 denominators; the
        // foreground strategy's own streams accumulate on top, and all
        // deltas only ever add/remove foreground streams, so the
        // background survives every mutation bit-exactly.
        match self.model.background {
            Some(bg) => {
                self.shared_load.copy_from_slice(&bg.shared);
                self.egress_load.copy_from_slice(&bg.egress);
                self.ingress_load.copy_from_slice(&bg.ingress);
            }
            None => {
                self.shared_load.fill(0.0);
                self.egress_load.fill(0.0);
                self.ingress_load.fill(0.0);
            }
        }
        // AllReduce executes the reduce graph and its reverse broadcast
        // *chunk-pipelined in parallel*: an interior node's NIC carries
        // both directions at once, so both stages must be priced under
        // one combined port load (a chain through a slow server looks
        // fine one-way and melts in duplex).
        for sub in &strategy.subs {
            self.groups.push(Group {
                sub: sub.clone(),
                prim: strategy.primitive,
                streams: Vec::new(),
                completion: 0.0,
            });
        }
        if strategy.primitive == Primitive::AllReduce {
            for sub in &strategy.subs {
                self.groups.push(Group {
                    sub: reversed_sub(sub, self.model.topo),
                    prim: Primitive::Broadcast,
                    streams: Vec::new(),
                    completion: 0.0,
                });
            }
        }
        for gi in 0..self.groups.len() {
            let mut streams = std::mem::take(&mut self.scratch.streams_buf);
            compute_streams(
                self.model.topo,
                &self.groups[gi].sub,
                self.groups[gi].prim,
                &mut streams,
            );
            for &(e, n) in &streams {
                self.shared_load[e.0] += n;
                let ec = &self.dense.edges[e.0];
                if ec.network {
                    self.egress_load[ec.from as usize] += n;
                    self.ingress_load[ec.to as usize] += n;
                }
            }
            self.scratch.streams_buf = std::mem::replace(&mut self.groups[gi].streams, streams);
        }
        let fractions: Vec<f64> = strategy.subs.iter().map(|s| s.fraction).collect();
        self.sizes = split_sizes(&fractions, self.total);
        for gi in 0..self.groups.len() {
            self.groups[gi].completion = self.score_group(gi);
        }
    }

    /// Predicted completion of the whole collective, in seconds (the
    /// annealer's objective value).
    pub fn completion_secs(&self) -> f64 {
        self.groups.iter().map(|g| g.completion).fold(0.0, f64::max)
    }

    /// The estimate in [`CostModel::evaluate`]'s shape. `per_sub`
    /// includes the reverse-broadcast twins for AllReduce, exactly as
    /// the full evaluation reports them.
    pub fn estimate(&self) -> CostEstimate {
        let per_sub: Vec<SimDuration> = self
            .groups
            .iter()
            .map(|g| SimDuration::from_secs(g.completion))
            .collect();
        let completion = per_sub
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        CostEstimate {
            completion,
            per_sub,
        }
    }

    /// The current strategy the state prices.
    pub fn strategy(&self) -> Strategy {
        Strategy {
            primitive: self.primitive,
            subs: self.groups[..self.n_primary]
                .iter()
                .map(|g| g.sub.clone())
                .collect(),
        }
    }

    /// The current sub-collective `m` (primary half only).
    pub fn sub(&self, m: usize) -> &SubCollective {
        &self.groups[m].sub
    }

    /// `(full, delta)` evaluation counts accumulated so far, resetting
    /// both to zero.
    pub fn take_eval_counts(&mut self) -> (u64, u64) {
        let counts = (self.full_evals, self.delta_evals);
        self.full_evals = 0;
        self.delta_evals = 0;
        counts
    }

    /// Replaces primary sub-collective `m` (same fraction), applies the
    /// stream-load deltas, re-scores only the groups whose priced edges
    /// or ports changed, and returns the new overall completion in
    /// seconds. Undoable via [`rollback`](Self::rollback) until
    /// [`commit`](Self::commit).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or `new_sub` carries a different
    /// fraction (fraction changes go through
    /// [`set_fractions`](Self::set_fractions)).
    pub fn replace_sub(&mut self, m: usize, new_sub: SubCollective) -> f64 {
        assert!(m < self.n_primary, "sub-collective {m} out of range");
        assert_eq!(
            new_sub.fraction.to_bits(),
            self.groups[m].sub.fraction.to_bits(),
            "replace_sub must preserve the fraction"
        );
        self.delta_evals += 1;
        let twin_idx = (self.primitive == Primitive::AllReduce).then(|| self.n_primary + m);

        let mut new_primary = Group {
            sub: new_sub,
            prim: self.primitive,
            streams: Vec::new(),
            completion: 0.0,
        };
        compute_streams(
            self.model.topo,
            &new_primary.sub,
            new_primary.prim,
            &mut new_primary.streams,
        );
        let mut new_twin = twin_idx.map(|_| {
            let mut g = Group {
                sub: reversed_sub(&new_primary.sub, self.model.topo),
                prim: Primitive::Broadcast,
                streams: Vec::new(),
                completion: 0.0,
            };
            compute_streams(self.model.topo, &g.sub, g.prim, &mut g.streams);
            g
        });

        // Net per-edge stream deltas across the replaced group(s).
        let g = self.scratch.next_gen();
        self.scratch.touched_edges.clear();
        {
            let acc = |e: EdgeId, d: f64, scratch: &mut Scratch| {
                let i = e.0;
                if scratch.edge_acc_gen[i] != g {
                    scratch.edge_acc_gen[i] = g;
                    scratch.edge_acc[i] = d;
                    scratch.touched_edges.push(i as u32);
                } else {
                    scratch.edge_acc[i] += d;
                }
            };
            for &(e, n) in &self.groups[m].streams {
                acc(e, -n, &mut self.scratch);
            }
            for &(e, n) in &new_primary.streams {
                acc(e, n, &mut self.scratch);
            }
            if let (Some(ti), Some(tw)) = (twin_idx, new_twin.as_ref()) {
                for &(e, n) in &self.groups[ti].streams {
                    acc(e, -n, &mut self.scratch);
                }
                for &(e, n) in &tw.streams {
                    acc(e, n, &mut self.scratch);
                }
            }
        }

        // Apply nonzero deltas; mark changed edges and accumulate net
        // port-load deltas (stream counts are integers, so adding and
        // later subtracting a delta restores every load bit-exactly).
        let mut edge_deltas = Vec::with_capacity(self.scratch.touched_edges.len());
        self.scratch.touched_eg.clear();
        self.scratch.touched_in.clear();
        for k in 0..self.scratch.touched_edges.len() {
            let ei = self.scratch.touched_edges[k] as usize;
            let d = self.scratch.edge_acc[ei];
            if d == 0.0 {
                continue;
            }
            self.shared_load[ei] += d;
            self.scratch.edge_hot_gen[ei] = g;
            edge_deltas.push((ei as u32, d));
            let ec = &self.dense.edges[ei];
            if ec.network {
                let (from, to) = (ec.from as usize, ec.to as usize);
                if self.scratch.eg_acc_gen[from] != g {
                    self.scratch.eg_acc_gen[from] = g;
                    self.scratch.eg_acc[from] = d;
                    self.scratch.touched_eg.push(ec.from);
                } else {
                    self.scratch.eg_acc[from] += d;
                }
                if self.scratch.in_acc_gen[to] != g {
                    self.scratch.in_acc_gen[to] = g;
                    self.scratch.in_acc[to] = d;
                    self.scratch.touched_in.push(ec.to);
                } else {
                    self.scratch.in_acc[to] += d;
                }
            }
        }
        for k in 0..self.scratch.touched_eg.len() {
            let ni = self.scratch.touched_eg[k] as usize;
            let d = self.scratch.eg_acc[ni];
            if d != 0.0 {
                self.egress_load[ni] += d;
                self.scratch.eg_hot_gen[ni] = g;
            }
        }
        for k in 0..self.scratch.touched_in.len() {
            let ni = self.scratch.touched_in[k] as usize;
            let d = self.scratch.in_acc[ni];
            if d != 0.0 {
                self.ingress_load[ni] += d;
                self.scratch.in_hot_gen[ni] = g;
            }
        }

        // Swap in the new groups.
        let old_primary = Box::new(std::mem::replace(&mut self.groups[m], new_primary));
        let old_twin = twin_idx.map(|ti| {
            Box::new(std::mem::replace(
                &mut self.groups[ti],
                new_twin.take().expect("twin built for AllReduce"),
            ))
        });

        // Re-score: the replaced group(s), plus any group that prices a
        // changed edge or a network edge whose endpoint port load
        // changed. Everything else keeps its completion — its inputs
        // are untouched, so a full evaluation would reproduce it
        // bit-for-bit. The replaced group and its twin are absent from
        // `rescored`: their pre-mutation completions travel inside
        // `old_primary`/`old_twin` and come back with the group swap on
        // rollback.
        let mut rescored = Vec::new();
        for gi in 0..self.groups.len() {
            let affected = gi == m
                || Some(gi) == twin_idx
                || self.groups[gi].streams.iter().any(|&(e, _)| {
                    if self.scratch.edge_hot_gen[e.0] == g {
                        return true;
                    }
                    let ec = &self.dense.edges[e.0];
                    ec.network
                        && (self.scratch.eg_hot_gen[ec.from as usize] == g
                            || self.scratch.in_hot_gen[ec.to as usize] == g)
                });
            if affected {
                let old = self.groups[gi].completion;
                self.groups[gi].completion = self.score_group(gi);
                if gi != m && Some(gi) != twin_idx {
                    rescored.push((gi, old));
                }
            }
        }

        self.undo.push(UndoOp::ReplaceSub {
            m,
            old_primary,
            old_twin,
            edge_deltas,
            rescored,
        });
        #[cfg(debug_assertions)]
        self.assert_matches_full();
        self.completion_secs()
    }

    /// Updates every primary fraction, recomputes the partition sizes,
    /// re-scores only the groups whose size changed, and returns the
    /// new overall completion in seconds. Undoable via
    /// [`rollback`](Self::rollback) until [`commit`](Self::commit).
    ///
    /// # Panics
    ///
    /// Panics if `fractions` does not have one entry per primary sub.
    pub fn set_fractions(&mut self, fractions: &[f64]) -> f64 {
        assert_eq!(fractions.len(), self.n_primary, "one fraction per sub");
        self.delta_evals += 1;
        let old_fracs: Vec<f64> = self.groups[..self.n_primary]
            .iter()
            .map(|g| g.sub.fraction)
            .collect();
        let old_sizes = std::mem::replace(&mut self.sizes, split_sizes(fractions, self.total));
        for (i, f) in fractions.iter().enumerate() {
            self.groups[i].sub.fraction = *f;
            if self.primitive == Primitive::AllReduce {
                self.groups[self.n_primary + i].sub.fraction = *f;
            }
        }
        // Fractions never touch stream loads; a group re-scores only if
        // its partition size actually moved.
        let mut rescored = Vec::new();
        for gi in 0..self.groups.len() {
            if self.sizes[gi % self.n_primary] != old_sizes[gi % self.n_primary] {
                let old = self.groups[gi].completion;
                self.groups[gi].completion = self.score_group(gi);
                rescored.push((gi, old));
            }
        }
        self.undo.push(UndoOp::SetFractions {
            old_fracs,
            old_sizes,
            rescored,
        });
        #[cfg(debug_assertions)]
        self.assert_matches_full();
        self.completion_secs()
    }

    /// Accepts every delta applied since the last commit; the undo log
    /// is discarded.
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// Reverts every delta applied since the last
    /// [`commit`](Self::commit), restoring loads, groups and
    /// completions bit-exactly.
    pub fn rollback(&mut self) {
        while let Some(op) = self.undo.pop() {
            match op {
                UndoOp::ReplaceSub {
                    m,
                    old_primary,
                    old_twin,
                    edge_deltas,
                    rescored,
                } => {
                    for &(ei, d) in &edge_deltas {
                        let ei = ei as usize;
                        self.shared_load[ei] -= d;
                        let ec = &self.dense.edges[ei];
                        if ec.network {
                            self.egress_load[ec.from as usize] -= d;
                            self.ingress_load[ec.to as usize] -= d;
                        }
                    }
                    self.groups[m] = *old_primary;
                    if let Some(tw) = old_twin {
                        self.groups[self.n_primary + m] = *tw;
                    }
                    for (gi, c) in rescored {
                        self.groups[gi].completion = c;
                    }
                }
                UndoOp::SetFractions {
                    old_fracs,
                    old_sizes,
                    rescored,
                } => {
                    for (i, f) in old_fracs.iter().enumerate() {
                        self.groups[i].sub.fraction = *f;
                        if self.primitive == Primitive::AllReduce {
                            self.groups[self.n_primary + i].sub.fraction = *f;
                        }
                    }
                    self.sizes = old_sizes;
                    for (gi, c) in rescored {
                        self.groups[gi].completion = c;
                    }
                }
            }
        }
    }

    /// Scores group `gi` against the current loads (eq. 2 fixpoint +
    /// eq. 5 pipelining), allocation-free via the scratch buffers.
    fn score_group(&mut self, gi: usize) -> f64 {
        let s_m = self.sizes[gi % self.n_primary];
        // Split borrows: the group is read-only, the scratch mutable.
        let (groups, scratch) = (&self.groups, &mut self.scratch);
        let group = &groups[gi];
        let sub = &group.sub;
        if sub.flows.is_empty() || s_m == 0 {
            return 0.0;
        }
        let s_m_bytes = ByteSize::from_bytes(s_m);
        let chunk = ByteSize::from_bytes(sub.chunk.as_u64().min(s_m.max(1)));
        let chunks = s_m_bytes.chunks(chunk) as f64;
        let chunk_f = chunk.as_f64();

        let g = scratch.next_gen();
        for (n, v) in &sub.aggregate {
            if *v {
                scratch.agg_gen[self.dense.node(*n)] = g;
            }
        }
        // Fixpoint iteration bound: distinct nodes + 2, as in the full
        // evaluation (trees converge in depth iterations).
        let mut distinct = 0usize;
        for f in &sub.flows {
            let si = self.dense.node(f.src);
            if scratch.visit_gen[si] != g {
                scratch.visit_gen[si] = g;
                distinct += 1;
            }
            for e in &f.route {
                let ti = self.dense.edges[e.0].to as usize;
                if scratch.visit_gen[ti] != g {
                    scratch.visit_gen[ti] = g;
                    distinct += 1;
                }
            }
        }
        let max_iters = distinct + 2;
        scratch.ensure_flows(sub.flows.len());

        // Fixpoint of eq. 2: per-flow arrival times, synchronized at
        // aggregating nodes. H grows monotonically; `sync` entries are
        // generation-stamped so an unstamped node reproduces the old
        // HashMap's absent-key behavior exactly.
        let mut converged = false;
        for _ in 0..max_iters {
            let mut changed = false;
            for (fi, flow) in sub.flows.iter().enumerate() {
                let mut t = 0.0_f64;
                let arr = &mut scratch.arrivals[fi];
                arr.clear();
                arr.push(0.0);
                let mut bottle = 0.0_f64;
                let mut here = self.dense.node(flow.src);
                for e in &flow.route {
                    let ec = &self.dense.edges[e.0];
                    // Departure from `here`: synchronized if it aggregates —
                    // including an aggregating *source* (a leader waits for
                    // its members before its merged stream departs).
                    let dep = if scratch.agg_gen[here] == g {
                        let s = if scratch.sync_gen[here] == g {
                            scratch.sync_val[here]
                        } else {
                            t
                        };
                        s.max(t)
                    } else {
                        t
                    };
                    let hop = edge_time(
                        ec,
                        *e,
                        chunk_f,
                        &self.shared_load,
                        &self.egress_load,
                        &self.ingress_load,
                    );
                    bottle = bottle.max(hop);
                    let arr_t = dep + hop;
                    let to = ec.to as usize;
                    if scratch.agg_gen[to] == g {
                        if scratch.sync_gen[to] != g {
                            scratch.sync_gen[to] = g;
                            scratch.sync_val[to] = 0.0;
                        }
                        if arr_t > scratch.sync_val[to] {
                            scratch.sync_val[to] = arr_t;
                            changed = true;
                        }
                    }
                    t = arr_t;
                    arr.push(t);
                    here = to;
                }
                scratch.bottles[fi] = bottle;
            }
            if !changed {
                converged = true;
                break;
            }
        }
        assert!(converged, "chunk-time recursion did not converge");

        // Eq. 5 per flow. We deviate from eq. 6's literal `h_j - h_i`
        // bottleneck (which charges first-chunk synchronization waits on
        // *every* chunk): in the warmed-up pipeline the executor
        // actually implements, only the slowest single-edge transfer
        // gates each additional chunk. The first chunk's full latency —
        // synchronization included — is still `h_dst`.
        let mut worst = 0.0_f64;
        for fi in 0..sub.flows.len() {
            let h_dst = *scratch.arrivals[fi]
                .last()
                .expect("non-empty route arrivals");
            let t_f = h_dst + chunks * scratch.bottles[fi];
            worst = worst.max(t_f);
        }
        worst
    }

    /// Bit-equality oracle: rebuilds a fresh state from the current
    /// strategy and compares every load and completion exactly.
    #[cfg(debug_assertions)]
    fn assert_matches_full(&self) {
        let fresh = CostState::new(self.model, &self.strategy(), self.total);
        assert_eq!(self.groups.len(), fresh.groups.len(), "group count");
        for (ei, (a, b)) in self.shared_load.iter().zip(&fresh.shared_load).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "edge {ei} load delta≠full");
        }
        for (gi, (a, b)) in self.groups.iter().zip(&fresh.groups).enumerate() {
            assert_eq!(a.streams, b.streams, "group {gi} streams delta≠full");
            assert_eq!(
                a.completion.to_bits(),
                b.completion.to_bits(),
                "group {gi} completion delta≠full: {} vs {}",
                a.completion,
                b.completion
            );
        }
    }
}

/// Chunk transfer time on one edge (eq. 2's `t_{i,j}`), with the shared
/// bandwidth of eq. 3 and physical-port contention. A `0.0` port load
/// reads as "no streams" (the dense twin of the former absent
/// `HashMap` key) and a `0.0` port bandwidth as "port unprofiled".
fn edge_time(
    ec: &EdgeCost,
    e: EdgeId,
    chunk_f: f64,
    shared_load: &[f64],
    egress_load: &[f64],
    ingress_load: &[f64],
) -> f64 {
    assert!(ec.profiled, "edge {e:?} used but not profiled");
    let load = shared_load[e.0].max(1.0);
    // A stream's rate: min of its single-stream ceiling and its fair
    // share of each physical port it crosses (tail egress, head
    // ingress) — per-byte time is the max of the inverses.
    let mut per_byte = ec.beta.max(ec.port_beta * load);
    if ec.network {
        let el = egress_load[ec.from as usize];
        let el = if el > 0.0 { el } else { load };
        let il = ingress_load[ec.to as usize];
        let il = if il > 0.0 { il } else { load };
        if ec.egress_bw > 0.0 {
            per_byte = per_byte.max(el / ec.egress_bw);
        }
        if ec.ingress_bw > 0.0 {
            per_byte = per_byte.max(il / ec.ingress_bw);
        }
    }
    ec.alpha + per_byte * chunk_f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Flow;
    use adapcc_profile::profiler::Profiler;
    use adapcc_simnet::cluster::{Cluster, InstanceId, Rank};
    use adapcc_topo::detect::Detector;
    use std::collections::BTreeMap;

    fn setup(n: usize) -> (Cluster, LogicalTopology, LinkProfile) {
        let c = Cluster::homogeneous_a100(n);
        let topo = Detector::new(&c, 1).run().logical_topology(&c);
        let profile = Profiler::new(&c, &topo, 1).without_noise().run().links;
        (c, topo, profile)
    }

    fn g(r: usize) -> LogicalNode {
        LogicalNode::Gpu(Rank(r))
    }

    fn star_reduce(topo: &LogicalTopology, sources: &[usize], root: usize) -> Strategy {
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let flows = sources
            .iter()
            .map(|&s| Flow {
                src: g(s),
                dst: g(root),
                route: vec![e(g(s), g(root))],
            })
            .collect();
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(root), true);
        Strategy {
            primitive: Primitive::Reduce,
            subs: vec![SubCollective {
                fraction: 1.0,
                chunk: ByteSize::from_mib(1),
                root: Some(Rank(root)),
                flows,
                aggregate,
            }],
        }
    }

    #[test]
    fn intra_star_cost_close_to_nvlink_time() {
        let (_c, topo, profile) = setup(1);
        let s = star_reduce(&topo, &[1, 2, 3], 0);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let est = model.evaluate(&s, total);
        // Three parallel NVLink flows into gpu0, each on its own link:
        // ~256 MiB / 100 GB/s ≈ 2.7 ms; pipelining roughly doubles the
        // paper-formula estimate (h_dst + all chunks).
        let secs = est.completion.as_secs();
        assert!(secs > 0.002 && secs < 0.008, "estimate {secs}");
    }

    #[test]
    fn aggregation_reduces_downstream_load() {
        let (_c, topo, profile) = setup(2);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let nic = |i: usize| LogicalNode::Nic(InstanceId(i));
        // Three flows hop gpu->leader(gpu0)->nic0->nic1->gpu4.
        let mk = |aggregate_at_leader: bool| {
            let mut flows = Vec::new();
            for s in [1usize, 2, 3] {
                flows.push(Flow {
                    src: g(s),
                    dst: g(4),
                    route: vec![
                        e(g(s), g(0)),
                        e(g(0), nic(0)),
                        e(nic(0), nic(1)),
                        e(nic(1), g(4)),
                    ],
                });
            }
            let mut aggregate = BTreeMap::new();
            aggregate.insert(g(4), true);
            if aggregate_at_leader {
                aggregate.insert(g(0), true);
            }
            Strategy {
                primitive: Primitive::Reduce,
                subs: vec![SubCollective {
                    fraction: 1.0,
                    chunk: ByteSize::from_mib(1),
                    root: Some(Rank(4)),
                    flows,
                    aggregate,
                }],
            }
        };
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(128);
        let merged = model.evaluate(&mk(true), total).completion;
        let forwarded = model.evaluate(&mk(false), total).completion;
        // Aggregating at the leader sends 1 stream over the NIC instead
        // of 3: ~3x less network volume.
        assert!(
            forwarded.as_secs() / merged.as_secs() > 2.0,
            "merged {merged} forwarded {forwarded}"
        );
    }

    #[test]
    fn stream_counting_matches_rules() {
        let (_c, topo, _p) = setup(1);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        // Two flows share edge g2->g0; one aggregates at g2 first.
        let flows = vec![
            Flow {
                src: g(1),
                dst: g(0),
                route: vec![e(g(1), g(2)), e(g(2), g(0))],
            },
            Flow {
                src: g(3),
                dst: g(0),
                route: vec![e(g(3), g(2)), e(g(2), g(0))],
            },
        ];
        let mut aggregate = BTreeMap::new();
        aggregate.insert(g(2), true);
        aggregate.insert(g(0), true);
        let sub = SubCollective {
            fraction: 1.0,
            chunk: ByteSize::from_mib(1),
            root: Some(Rank(0)),
            flows,
            aggregate,
        };
        let streams = edge_streams(&topo, &sub, Primitive::Reduce);
        assert_eq!(streams[&e(g(2), g(0))], 1.0, "merged at g2");
        assert_eq!(streams[&e(g(1), g(2))], 1.0);
        // Without aggregation at g2, the shared edge carries 2 streams.
        let mut sub2 = sub.clone();
        sub2.aggregate.remove(&g(2));
        let streams2 = edge_streams(&topo, &sub2, Primitive::Reduce);
        assert_eq!(streams2[&e(g(2), g(0))], 2.0);
        // Broadcast always groups.
        let streams3 = edge_streams(&topo, &sub2, Primitive::Broadcast);
        assert_eq!(streams3[&e(g(2), g(0))], 1.0);
        // AlltoAll counts each flow.
        let streams4 = edge_streams(&topo, &sub2, Primitive::AllToAll);
        assert_eq!(streams4[&e(g(2), g(0))], 2.0);
    }

    #[test]
    fn smaller_chunks_pipeline_better_until_latency_binds() {
        let (_c, topo, profile) = setup(2);
        let e = |a, b| topo.edge_between(a, b).expect("edge");
        let nic = |i: usize| LogicalNode::Nic(InstanceId(i));
        let mk = |chunk: ByteSize| {
            let flows = vec![Flow {
                src: g(0),
                dst: g(4),
                route: vec![e(g(0), nic(0)), e(nic(0), nic(1)), e(nic(1), g(4))],
            }];
            Strategy {
                primitive: Primitive::Reduce,
                subs: vec![SubCollective {
                    fraction: 1.0,
                    chunk,
                    root: Some(Rank(4)),
                    flows,
                    aggregate: BTreeMap::new(),
                }],
            }
        };
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let huge = model
            .evaluate(&mk(ByteSize::from_mib(256)), total)
            .completion;
        let mid = model.evaluate(&mk(ByteSize::from_mib(4)), total).completion;
        let tiny = model.evaluate(&mk(ByteSize::from_kib(1)), total).completion;
        // One giant chunk forfeits pipelining across the 3-hop path.
        assert!(mid < huge, "mid {mid} huge {huge}");
        // Chunks so small that per-chunk latency dominates lose again.
        assert!(mid < tiny, "mid {mid} tiny {tiny}");
    }

    #[test]
    fn parallel_subs_share_link_bandwidth() {
        let (_c, topo, profile) = setup(1);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(256);
        let one = star_reduce(&topo, &[1], 0);
        let mut two = one.clone();
        two.subs = vec![
            SubCollective {
                fraction: 0.5,
                ..one.subs[0].clone()
            },
            SubCollective {
                fraction: 0.5,
                ..one.subs[0].clone()
            },
        ];
        let t1 = model.evaluate(&one, total).completion;
        let t2 = model.evaluate(&two, total).completion;
        // Same edge, two streams at half size each: roughly the same
        // time (no free lunch on a single link).
        let ratio = t2.as_secs() / t1.as_secs();
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "not profiled")]
    fn unprofiled_edge_panics() {
        let (_c, topo, _) = setup(1);
        let empty = LinkProfile::new();
        let s = star_reduce(&topo, &[1], 0);
        let model = CostModel::new(&topo, &empty);
        let _ = model.evaluate(&s, ByteSize::from_mib(1));
    }

    #[test]
    fn state_replace_sub_matches_full_eval_and_rolls_back() {
        let (_c, topo, profile) = setup(2);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(128);
        let s = star_reduce(&topo, &[1, 2, 3], 0);
        let mut two = s.clone();
        two.subs = vec![
            SubCollective {
                fraction: 0.5,
                ..s.subs[0].clone()
            },
            SubCollective {
                fraction: 0.5,
                ..s.subs[0].clone()
            },
        ];
        let base = model.evaluate(&two, total);
        let mut state = model.state(&two, total);
        assert_eq!(
            state.completion_secs().to_bits(),
            base.completion.as_secs().to_bits()
        );
        // Replace sub 1 with a different chunk; the delta cost must
        // bit-equal a fresh full evaluation of the mutated strategy.
        let mut mutated_sub = two.subs[1].clone();
        mutated_sub.chunk = ByteSize::from_kib(256);
        let cost = state.replace_sub(1, mutated_sub.clone());
        let mut mutated = two.clone();
        mutated.subs[1] = mutated_sub;
        let full = model.evaluate(&mutated, total);
        assert_eq!(cost.to_bits(), full.completion.as_secs().to_bits());
        assert_eq!(state.strategy(), mutated);
        // Rolling back restores the original cost bit-exactly.
        state.rollback();
        assert_eq!(
            state.completion_secs().to_bits(),
            base.completion.as_secs().to_bits()
        );
        assert_eq!(state.strategy(), two);
        // Fraction deltas re-score through the partition change.
        let cost = state.set_fractions(&[0.25, 0.75]);
        let mut refrac = two.clone();
        refrac.subs[0].fraction = 0.25;
        refrac.subs[1].fraction = 0.75;
        let full = model.evaluate(&refrac, total);
        assert_eq!(cost.to_bits(), full.completion.as_secs().to_bits());
        state.commit();
        state.rollback(); // no-op after commit
        assert_eq!(state.strategy(), refrac);
    }

    #[test]
    fn state_counts_full_and_delta_evals() {
        let (_c, topo, profile) = setup(1);
        let model = CostModel::new(&topo, &profile);
        let total = ByteSize::from_mib(64);
        let s = star_reduce(&topo, &[1, 2], 0);
        let mut state = model.state(&s, total);
        let sub = state.sub(0).clone();
        state.replace_sub(0, sub);
        state.rollback();
        let (full, delta) = state.take_eval_counts();
        assert_eq!(full, 1);
        assert_eq!(delta, 1);
        let (full, delta) = state.take_eval_counts();
        assert_eq!((full, delta), (0, 0));
    }
}
